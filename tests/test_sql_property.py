"""Property-based tests of the SQL engine's core invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqlengine import Engine

_ids = st.lists(st.integers(min_value=1, max_value=10_000), unique=True, min_size=1, max_size=25)
_names = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=8)


def _fresh_session():
    engine = Engine()
    engine.create_database("db")
    session = engine.open_session("db")
    session.execute(
        "CREATE TABLE items (id INTEGER NOT NULL PRIMARY KEY, name VARCHAR, score INTEGER)"
    )
    return session


@settings(max_examples=40, deadline=None)
@given(_ids)
def test_insert_then_count_matches(ids):
    """COUNT(*) equals the number of successfully inserted rows."""
    session = _fresh_session()
    for row_id in ids:
        session.execute(
            "INSERT INTO items (id, name, score) VALUES ($id, 'n', $score)",
            params={"id": row_id, "score": row_id * 2},
        )
    assert session.execute("SELECT COUNT(*) FROM items").scalar() == len(ids)


@settings(max_examples=40, deadline=None)
@given(_ids)
def test_select_by_primary_key_finds_each_row(ids):
    session = _fresh_session()
    for row_id in ids:
        session.execute(
            "INSERT INTO items (id, name) VALUES ($id, $name)",
            params={"id": row_id, "name": f"item-{row_id}"},
        )
    for row_id in ids:
        rows = session.execute(
            "SELECT name FROM items WHERE id = $id", params={"id": row_id}
        ).rows
        assert rows == [(f"item-{row_id}",)]


@settings(max_examples=40, deadline=None)
@given(_ids, st.integers(min_value=0, max_value=10_000))
def test_delete_is_complement_of_select(ids, threshold):
    """Rows deleted by a predicate plus rows remaining equals total rows."""
    session = _fresh_session()
    for row_id in ids:
        session.execute(
            "INSERT INTO items (id, score) VALUES ($id, $score)",
            params={"id": row_id, "score": row_id},
        )
    deleted = session.execute(
        "DELETE FROM items WHERE score < $t", params={"t": threshold}
    ).rowcount
    remaining = session.execute("SELECT COUNT(*) FROM items").scalar()
    assert deleted + remaining == len(ids)
    assert remaining == sum(1 for row_id in ids if row_id >= threshold)


@settings(max_examples=40, deadline=None)
@given(_ids)
def test_transaction_rollback_restores_row_count(ids):
    """Any sequence of writes inside a transaction is fully undone by ROLLBACK."""
    session = _fresh_session()
    session.execute("INSERT INTO items (id, name) VALUES (99999, 'anchor')")
    before = session.execute("SELECT COUNT(*) FROM items").scalar()
    session.execute("BEGIN")
    for row_id in ids:
        if row_id == 99999:
            continue
        session.execute("INSERT INTO items (id) VALUES ($id)", params={"id": row_id})
    session.execute("UPDATE items SET name = 'changed' WHERE id = 99999")
    session.execute("ROLLBACK")
    assert session.execute("SELECT COUNT(*) FROM items").scalar() == before
    assert session.execute("SELECT name FROM items WHERE id = 99999").scalar() == "anchor"


@settings(max_examples=40, deadline=None)
@given(st.lists(_names, min_size=1, max_size=15))
def test_order_by_matches_python_sort(names):
    session = _fresh_session()
    for index, name in enumerate(names):
        session.execute(
            "INSERT INTO items (id, name) VALUES ($id, $name)",
            params={"id": index + 1, "name": name},
        )
    rows = session.execute("SELECT name FROM items ORDER BY name").rows
    assert [row[0] for row in rows] == sorted(names)
