"""Tests for the database server: handshake, auth, statements, extensions."""

import pytest

from repro.dbapi import OperationalError, ProgrammingError
from repro.dbapi.runtime import RuntimeDriver
from repro.dbserver import DatabaseServer, PasswordAuthenticator, ServerConfig, TokenAuthenticator
from repro.dbserver.auth import compute_token
from repro.dbserver.wire import PROTOCOL_VERSION
from repro.netsim import InMemoryNetwork
from repro.sqlengine import Engine


@pytest.fixture
def setup():
    network = InMemoryNetwork()
    engine = Engine(name="srv")
    engine.create_database("appdb")
    server = DatabaseServer(engine, network, "srv:5432", ServerConfig(name="srv")).start()
    yield network, engine, server
    server.stop()


class TestHandshake:
    def test_connect_and_execute(self, setup):
        network, _engine, _server = setup
        driver = RuntimeDriver()
        connection = driver.connect("pydb://srv:5432/appdb", network=network)
        cursor = connection.cursor()
        cursor.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        cursor.execute("INSERT INTO t (id) VALUES (1)")
        cursor.execute("SELECT COUNT(*) FROM t")
        assert cursor.fetchone() == (1,)
        connection.close()

    def test_unknown_database(self, setup):
        network, _engine, _server = setup
        driver = RuntimeDriver()
        with pytest.raises(OperationalError, match="unknown_database"):
            driver.connect("pydb://srv:5432/nope", network=network)

    def test_protocol_version_too_old(self, setup):
        network, _engine, _server = setup
        old_driver = RuntimeDriver(protocol_version=PROTOCOL_VERSION - 2)
        with pytest.raises(OperationalError, match="protocol"):
            old_driver.connect("pydb://srv:5432/appdb", network=network)

    def test_protocol_version_in_accepted_range(self, setup):
        network, _engine, _server = setup
        previous_generation = RuntimeDriver(protocol_version=PROTOCOL_VERSION - 1)
        connection = previous_generation.connect("pydb://srv:5432/appdb", network=network)
        assert not connection.closed
        connection.close()

    def test_server_unreachable(self, setup):
        network, _engine, _server = setup
        driver = RuntimeDriver()
        with pytest.raises(OperationalError):
            driver.connect("pydb://nowhere:5432/appdb", network=network)


class TestAuthentication:
    def test_password_auth_success_and_failure(self):
        network = InMemoryNetwork()
        engine = Engine(name="auth")
        engine.create_database("appdb")
        engine.create_user("alice", "secret")
        server = DatabaseServer(
            engine,
            network,
            "auth:5432",
            ServerConfig(name="auth", authenticators={"password": PasswordAuthenticator()}),
        ).start()
        driver = RuntimeDriver()
        connection = driver.connect("pydb://auth:5432/appdb", network=network, user="alice", password="secret")
        assert not connection.closed
        connection.close()
        with pytest.raises(OperationalError, match="auth_failed"):
            driver.connect("pydb://auth:5432/appdb", network=network, user="alice", password="bad")
        server.stop()

    def test_token_auth_requires_kerberos_extension(self):
        network = InMemoryNetwork()
        engine = Engine(name="kerb")
        engine.create_database("appdb")
        server = DatabaseServer(
            engine,
            network,
            "kerb:5432",
            ServerConfig(name="kerb", authenticators={"token": TokenAuthenticator("realm-secret")}),
        ).start()
        plain_driver = RuntimeDriver()
        # Plain driver only knows password auth, which the server does not offer.
        with pytest.raises(OperationalError, match="auth_method_unsupported"):
            plain_driver.connect("pydb://kerb:5432/appdb", network=network, user="bob")
        kerberos_driver = RuntimeDriver(extensions=["kerberos"])
        connection = kerberos_driver.connect(
            "pydb://kerb:5432/appdb", network=network, user="bob", realm_secret="realm-secret"
        )
        assert not connection.closed
        connection.close()
        wrong_realm = RuntimeDriver(extensions=["kerberos"])
        with pytest.raises(OperationalError, match="auth_failed"):
            wrong_realm.connect(
                "pydb://kerb:5432/appdb", network=network, user="bob", realm_secret="wrong"
            )
        server.stop()

    def test_compute_token_matches_authenticator(self):
        authenticator = TokenAuthenticator("s")
        assert authenticator.expected_token("u") == compute_token("s", "u")


class TestStatementsAndErrors:
    def test_sql_error_maps_to_programming_error(self, setup):
        network, _engine, _server = setup
        connection = RuntimeDriver().connect("pydb://srv:5432/appdb", network=network)
        cursor = connection.cursor()
        with pytest.raises(ProgrammingError):
            cursor.execute("SELECT * FROM missing_table")
        # The connection survives a statement error.
        cursor.execute("SELECT 1")
        assert cursor.fetchone() == (1,)
        connection.close()

    def test_ping(self, setup):
        network, _engine, _server = setup
        connection = RuntimeDriver().connect("pydb://srv:5432/appdb", network=network)
        assert connection.ping() is True
        connection.close()
        assert connection.ping() is False

    def test_active_session_tracking(self, setup):
        network, _engine, server = setup
        connection = RuntimeDriver().connect("pydb://srv:5432/appdb", network=network)
        cursor = connection.cursor()
        cursor.execute("SELECT 1")
        assert server.active_session_count() >= 1
        connection.close()

    def test_second_listener(self, setup):
        network, _engine, server = setup
        server.listen_also("srv-alt:5432")
        connection = RuntimeDriver().connect("pydb://srv-alt:5432/appdb", network=network)
        cursor = connection.cursor()
        cursor.execute("SELECT 1")
        assert cursor.fetchone() == (1,)
        connection.close()


class TestExtensions:
    def test_extension_dispatch_by_prefix(self, setup):
        network, _engine, server = setup
        seen = []

        def handler(channel, first_message):
            seen.append(first_message)
            channel.send({"type": "custom_ack"})

        server.register_extension("custom_", handler)
        channel = network.connect("srv:5432")
        channel.send({"type": "custom_hello", "x": 1})
        assert channel.recv(timeout=1.0) == {"type": "custom_ack"}
        assert seen[0]["x"] == 1
        channel.close()
