"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.clock import SimulatedClock
from repro.netsim import InMemoryNetwork
from repro.netsim.registry import clear_registry, register_network
from repro.sqlengine import Engine


@pytest.fixture
def clock() -> SimulatedClock:
    return SimulatedClock()


@pytest.fixture
def network() -> InMemoryNetwork:
    net = InMemoryNetwork()
    register_network("default", net)
    yield net
    clear_registry()


@pytest.fixture
def engine(clock: SimulatedClock) -> Engine:
    eng = Engine(name="testdb", clock=clock)
    eng.create_database("appdb")
    return eng


@pytest.fixture
def session(engine: Engine):
    return engine.open_session("appdb")


@pytest.fixture
def single_db_env():
    """A full single-database environment with an in-database Drivolution server."""
    from repro.experiments.environments import build_single_database

    env = build_single_database(lease_time_ms=1_000)
    yield env
    env.close()


@pytest.fixture
def cluster_env():
    """A 2x2 cluster with embedded Drivolution servers."""
    from repro.experiments.environments import build_cluster

    env = build_cluster(replicas=2, controllers=2, embedded_drivolution=True)
    yield env
    env.close()
