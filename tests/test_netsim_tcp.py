"""Integration tests for the TCP transport (real sockets on localhost)."""

import threading

import pytest

from repro.errors import TransportError
from repro.netsim import TcpNetwork
from repro.netsim.transport import ChannelServer


@pytest.fixture
def net():
    return TcpNetwork()


class TestTcpTransport:
    def test_roundtrip_with_bytes(self, net):
        listener = net.listen("127.0.0.1:0")
        received = {}

        def server_side():
            channel = listener.accept(timeout=5.0)
            received.update(channel.recv(timeout=5.0))
            channel.send({"ack": True})
            channel.close()

        thread = threading.Thread(target=server_side)
        thread.start()
        client = net.connect(listener.address, timeout=5.0)
        client.send({"blob": b"\x00\x01binary", "n": 42})
        assert client.recv(timeout=5.0) == {"ack": True}
        thread.join(timeout=5.0)
        listener.close()
        assert received == {"blob": b"\x00\x01binary", "n": 42}

    def test_ephemeral_port_reported(self, net):
        listener = net.listen("127.0.0.1:0")
        host, _, port = listener.address.rpartition(":")
        assert host == "127.0.0.1"
        assert int(port) > 0
        listener.close()

    def test_connect_refused(self, net):
        listener = net.listen("127.0.0.1:0")
        address = listener.address
        listener.close()
        with pytest.raises(TransportError):
            net.connect(address, timeout=0.5)

    def test_invalid_address(self, net):
        with pytest.raises(TransportError):
            net.connect("not-an-address", timeout=0.5)
        with pytest.raises(TransportError):
            net.listen("127.0.0.1:notaport")

    def test_channel_server_over_tcp(self, net):
        def handler(channel):
            message = channel.recv(timeout=5.0)
            channel.send({"echo": message.get("value")})

        listener = net.listen("127.0.0.1:0")
        server = ChannelServer(listener, handler, name="tcp-echo").start()
        try:
            client = net.connect(listener.address, timeout=5.0)
            client.send({"value": "over tcp"})
            assert client.recv(timeout=5.0) == {"echo": "over tcp"}
        finally:
            server.stop()

    def test_peer_close_detected(self, net):
        listener = net.listen("127.0.0.1:0")

        def server_side():
            channel = listener.accept(timeout=5.0)
            channel.close()

        thread = threading.Thread(target=server_side)
        thread.start()
        client = net.connect(listener.address, timeout=5.0)
        thread.join(timeout=5.0)
        with pytest.raises(TransportError):
            client.recv(timeout=1.0)
        listener.close()
