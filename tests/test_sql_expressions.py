"""Unit tests for expression evaluation (LIKE, IS NULL, BETWEEN, now(), ...)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqlengine.errors import ColumnNotFound, SqlExecutionError
from repro.sqlengine.expressions import EvalContext, like_match
from repro.sqlengine.parser import parse


def evaluate(expression_sql: str, row=None, params=None, clock=lambda: 1000.0):
    """Helper: evaluate the WHERE expression of a SELECT against one row."""
    statement = parse(f"SELECT * FROM t WHERE {expression_sql}")
    context = EvalContext(
        row={key.lower(): value for key, value in (row or {}).items()},
        params=params or {},
        clock=clock,
    )
    return statement.where.evaluate(context)


class TestComparisons:
    def test_equality(self):
        assert evaluate("a = 1", {"a": 1}) is True
        assert evaluate("a = 1", {"a": 2}) is False

    def test_inequalities(self):
        assert evaluate("a < 5 AND a >= 1", {"a": 3})
        assert not evaluate("a > 5", {"a": 3})
        assert evaluate("a <> 4", {"a": 3})

    def test_null_comparison_is_false(self):
        assert evaluate("a = 1", {"a": None}) is False
        assert evaluate("a <> 1", {"a": None}) is False

    def test_numeric_cross_type(self):
        assert evaluate("a = 1", {"a": 1.0})

    def test_string_number_comparison_coerced(self):
        assert evaluate("a = '1'", {"a": 1})

    def test_unknown_column(self):
        with pytest.raises(ColumnNotFound):
            evaluate("missing = 1", {"a": 1})


class TestLogical:
    def test_and_or_not(self):
        assert evaluate("a = 1 OR b = 2", {"a": 0, "b": 2})
        assert not evaluate("a = 1 AND b = 2", {"a": 0, "b": 2})
        assert evaluate("NOT (a = 1)", {"a": 0})

    def test_parentheses_grouping(self):
        row = {"platform": None, "api": "JDBC"}
        assert evaluate("(platform IS NULL OR platform LIKE 'linux%') AND api = 'JDBC'", row)


class TestLike:
    def test_percent_wildcard(self):
        assert evaluate("name LIKE 'JDBC%'", {"name": "JDBC3"})
        assert not evaluate("name LIKE 'ODBC%'", {"name": "JDBC3"})

    def test_underscore_wildcard(self):
        assert evaluate("name LIKE 'JRE 1._'", {"name": "JRE 1.5"})

    def test_case_insensitive(self):
        assert evaluate("name LIKE 'jdbc'", {"name": "JDBC"})

    def test_not_like(self):
        assert evaluate("name NOT LIKE 'ODBC%'", {"name": "JDBC"})

    def test_like_null_is_false(self):
        assert evaluate("name LIKE 'x'", {"name": None}) is False

    def test_like_with_regex_metacharacters(self):
        assert evaluate("name LIKE 'a.b(c)'", {"name": "a.b(c)"})
        assert not evaluate("name LIKE 'a.b(c)'", {"name": "aXb(c)"})


class TestNullPredicates:
    def test_is_null(self):
        assert evaluate("platform IS NULL", {"platform": None})
        assert not evaluate("platform IS NULL", {"platform": "linux"})

    def test_is_not_null(self):
        assert evaluate("platform IS NOT NULL", {"platform": "linux"})


class TestBetweenAndIn:
    def test_between_inclusive(self):
        assert evaluate("a BETWEEN 1 AND 3", {"a": 1})
        assert evaluate("a BETWEEN 1 AND 3", {"a": 3})
        assert not evaluate("a BETWEEN 1 AND 3", {"a": 4})

    def test_not_between(self):
        assert evaluate("a NOT BETWEEN 1 AND 3", {"a": 4})

    def test_between_with_null_bound_is_false(self):
        assert evaluate("a BETWEEN b AND c", {"a": 2, "b": None, "c": 3}) is False

    def test_in_list(self):
        assert evaluate("a IN (1, 2, 3)", {"a": 2})
        assert not evaluate("a IN (1, 2, 3)", {"a": 5})
        assert evaluate("a NOT IN (1, 2)", {"a": 5})


class TestFunctionsAndParams:
    def test_now_uses_context_clock(self):
        assert evaluate("now() BETWEEN 900 AND 1100", {})
        assert not evaluate("now() > 2000", {})

    def test_named_parameter(self):
        assert evaluate("api_name LIKE $api", {"api_name": "JDBC"}, params={"api": "jdbc"})

    def test_missing_parameter(self):
        with pytest.raises(SqlExecutionError):
            evaluate("a = $missing", {"a": 1})

    def test_lower_upper_length(self):
        assert evaluate("lower(name) = 'jdbc'", {"name": "JDBC"})
        assert evaluate("upper(name) = 'JDBC'", {"name": "jdbc"})
        assert evaluate("length(name) = 4", {"name": "JDBC"})

    def test_unknown_function(self):
        with pytest.raises(SqlExecutionError):
            evaluate("frobnicate(a) = 1", {"a": 1})

    def test_arithmetic(self):
        assert evaluate("a + 1 = 3", {"a": 2})
        assert evaluate("a - 1 = 1", {"a": 2})


class TestLikeMatchProperty:
    @settings(max_examples=100, deadline=None)
    @given(st.text(alphabet="abcXYZ123 _%", max_size=12))
    def test_any_string_matches_universal_pattern(self, value):
        assert like_match(value, "%")

    @settings(max_examples=100, deadline=None)
    @given(st.text(alphabet="abcdef", min_size=1, max_size=10))
    def test_exact_value_matches_itself(self, value):
        assert like_match(value, value)

    @settings(max_examples=100, deadline=None)
    @given(st.text(alphabet="abcdef", min_size=2, max_size=10))
    def test_prefix_pattern(self, value):
        assert like_match(value, value[:1] + "%")
