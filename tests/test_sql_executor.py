"""Integration-level tests of SQL execution through the engine session API."""

import pytest

from repro.sqlengine import ConstraintViolation, Engine, SqlExecutionError, TableNotFound
from repro.sqlengine.errors import TransactionError


@pytest.fixture
def db_session():
    engine = Engine(name="exec-test")
    engine.create_database("db")
    session = engine.open_session("db")
    session.execute(
        "CREATE TABLE drivers (driver_id INTEGER NOT NULL PRIMARY KEY, "
        "api_name VARCHAR NOT NULL, platform VARCHAR, code BLOB)"
    )
    return session


class TestInsertSelect:
    def test_insert_and_select_star(self, db_session):
        db_session.execute(
            "INSERT INTO drivers (driver_id, api_name, platform, code) "
            "VALUES (1, 'JDBC', 'linux', 'blob')"
        )
        result = db_session.execute("SELECT * FROM drivers")
        assert result.rowcount == 1
        assert result.columns == ["driver_id", "api_name", "platform", "code"]
        assert result.rows[0][1] == "JDBC"
        assert result.rows[0][3] == b"blob"

    def test_multi_row_insert(self, db_session):
        result = db_session.execute(
            "INSERT INTO drivers (driver_id, api_name) VALUES (1, 'JDBC'), (2, 'ODBC')"
        )
        assert result.rowcount == 2

    def test_projection_and_where_params(self, db_session):
        db_session.execute("INSERT INTO drivers (driver_id, api_name) VALUES (1, 'JDBC')")
        db_session.execute("INSERT INTO drivers (driver_id, api_name) VALUES (2, 'ODBC')")
        result = db_session.execute(
            "SELECT api_name FROM drivers WHERE driver_id = $id", params={"id": 2}
        )
        assert result.rows == [("ODBC",)]

    def test_positional_params(self, db_session):
        db_session.execute("INSERT INTO drivers (driver_id, api_name) VALUES (1, 'JDBC')")
        result = db_session.execute(
            "SELECT api_name FROM drivers WHERE driver_id = ?", positional=[1]
        )
        assert result.rows == [("JDBC",)]

    def test_order_by_and_limit(self, db_session):
        for index in range(5):
            db_session.execute(
                "INSERT INTO drivers (driver_id, api_name) VALUES ($id, 'API')",
                params={"id": index + 1},
            )
        result = db_session.execute("SELECT driver_id FROM drivers ORDER BY driver_id DESC LIMIT 2")
        assert result.rows == [(5,), (4,)]

    def test_order_by_nulls_last(self, db_session):
        db_session.execute("INSERT INTO drivers (driver_id, api_name, platform) VALUES (1, 'A', NULL)")
        db_session.execute("INSERT INTO drivers (driver_id, api_name, platform) VALUES (2, 'B', 'aix')")
        result = db_session.execute("SELECT driver_id FROM drivers ORDER BY platform")
        assert result.rows == [(2,), (1,)]

    def test_aggregates(self, db_session):
        for index in range(3):
            db_session.execute(
                "INSERT INTO drivers (driver_id, api_name) VALUES ($id, 'API')",
                params={"id": index + 1},
            )
        count = db_session.execute("SELECT COUNT(*) FROM drivers").scalar()
        max_id = db_session.execute("SELECT MAX(driver_id) AS m FROM drivers").scalar()
        min_id = db_session.execute("SELECT MIN(driver_id) FROM drivers").scalar()
        total = db_session.execute("SELECT SUM(driver_id) FROM drivers").scalar()
        assert (count, max_id, min_id, total) == (3, 3, 1, 6)

    def test_aggregate_on_empty_table(self, db_session):
        assert db_session.execute("SELECT COUNT(*) FROM drivers").scalar() == 0
        assert db_session.execute("SELECT MAX(driver_id) FROM drivers").scalar() is None

    def test_mixed_aggregate_rejected(self, db_session):
        with pytest.raises(SqlExecutionError):
            db_session.execute("SELECT COUNT(*), api_name FROM drivers")

    def test_select_without_from(self, db_session):
        assert db_session.execute("SELECT 41 + 1").scalar() == 42

    def test_as_dicts(self, db_session):
        db_session.execute("INSERT INTO drivers (driver_id, api_name) VALUES (1, 'JDBC')")
        rows = db_session.execute("SELECT driver_id, api_name FROM drivers").as_dicts()
        assert rows == [{"driver_id": 1, "api_name": "JDBC"}]


class TestUpdateDelete:
    def test_update_with_where(self, db_session):
        db_session.execute("INSERT INTO drivers (driver_id, api_name) VALUES (1, 'JDBC')")
        db_session.execute("INSERT INTO drivers (driver_id, api_name) VALUES (2, 'ODBC')")
        result = db_session.execute(
            "UPDATE drivers SET platform = 'linux' WHERE api_name = 'JDBC'"
        )
        assert result.rowcount == 1
        assert db_session.execute(
            "SELECT platform FROM drivers WHERE driver_id = 1"
        ).scalar() == "linux"

    def test_update_all_rows(self, db_session):
        db_session.execute("INSERT INTO drivers (driver_id, api_name) VALUES (1, 'A'), (2, 'B')")
        assert db_session.execute("UPDATE drivers SET platform = 'any'").rowcount == 2

    def test_delete(self, db_session):
        db_session.execute("INSERT INTO drivers (driver_id, api_name) VALUES (1, 'A'), (2, 'B')")
        assert db_session.execute("DELETE FROM drivers WHERE driver_id = 1").rowcount == 1
        assert db_session.execute("SELECT COUNT(*) FROM drivers").scalar() == 1


class TestConstraints:
    def test_not_null_violation(self, db_session):
        with pytest.raises(ConstraintViolation):
            db_session.execute("INSERT INTO drivers (driver_id) VALUES (1)")

    def test_primary_key_violation(self, db_session):
        db_session.execute("INSERT INTO drivers (driver_id, api_name) VALUES (1, 'A')")
        with pytest.raises(ConstraintViolation):
            db_session.execute("INSERT INTO drivers (driver_id, api_name) VALUES (1, 'B')")

    def test_foreign_key_enforced(self, db_session):
        db_session.execute(
            "CREATE TABLE permissions (pid INTEGER NOT NULL PRIMARY KEY, "
            "driver_id INTEGER NOT NULL REFERENCES drivers(driver_id))"
        )
        with pytest.raises(ConstraintViolation):
            db_session.execute("INSERT INTO permissions (pid, driver_id) VALUES (1, 99)")
        db_session.execute("INSERT INTO drivers (driver_id, api_name) VALUES (99, 'A')")
        db_session.execute("INSERT INTO permissions (pid, driver_id) VALUES (1, 99)")

    def test_duplicate_table(self, db_session):
        with pytest.raises(SqlExecutionError):
            db_session.execute("CREATE TABLE drivers (x INTEGER)")
        db_session.execute("CREATE TABLE IF NOT EXISTS drivers (x INTEGER)")

    def test_missing_table(self, db_session):
        with pytest.raises(TableNotFound):
            db_session.execute("SELECT * FROM nothing")
        with pytest.raises(TableNotFound):
            db_session.execute("DROP TABLE nothing")
        db_session.execute("DROP TABLE IF EXISTS nothing")


class TestTransactions:
    def test_rollback_undoes_insert_update_delete(self, db_session):
        db_session.execute("INSERT INTO drivers (driver_id, api_name) VALUES (1, 'A')")
        db_session.execute("BEGIN")
        db_session.execute("INSERT INTO drivers (driver_id, api_name) VALUES (2, 'B')")
        db_session.execute("UPDATE drivers SET platform = 'x' WHERE driver_id = 1")
        db_session.execute("DELETE FROM drivers WHERE driver_id = 1")
        db_session.execute("ROLLBACK")
        result = db_session.execute("SELECT driver_id, platform FROM drivers ORDER BY driver_id")
        assert result.rows == [(1, None)]

    def test_commit_persists(self, db_session):
        db_session.execute("BEGIN")
        db_session.execute("INSERT INTO drivers (driver_id, api_name) VALUES (1, 'A')")
        db_session.execute("COMMIT")
        assert db_session.execute("SELECT COUNT(*) FROM drivers").scalar() == 1

    def test_commit_without_begin(self, db_session):
        with pytest.raises(TransactionError):
            db_session.execute("COMMIT")

    def test_nested_begin_rejected(self, db_session):
        db_session.execute("BEGIN")
        with pytest.raises(TransactionError):
            db_session.execute("BEGIN")
        db_session.execute("ROLLBACK")

    def test_abort_rolls_back(self, db_session):
        db_session.execute("BEGIN")
        db_session.execute("INSERT INTO drivers (driver_id, api_name) VALUES (5, 'A')")
        assert db_session.in_transaction
        assert db_session.abort() is True
        assert not db_session.in_transaction
        assert db_session.execute("SELECT COUNT(*) FROM drivers").scalar() == 0

    def test_close_aborts_open_transaction(self, db_session):
        db_session.execute("BEGIN")
        db_session.execute("INSERT INTO drivers (driver_id, api_name) VALUES (5, 'A')")
        db_session.close()
        assert db_session.closed


class TestEngineCatalog:
    def test_information_schema_tables_view(self, db_session):
        rows = db_session.execute(
            "SELECT table_name FROM information_schema.tables"
        ).rows
        assert ("drivers",) in rows

    def test_engine_users(self):
        engine = Engine()
        engine.create_database("db")
        assert engine.authenticate(None, None)  # no users configured
        engine.create_user("alice", "secret")
        assert engine.authenticate("alice", "secret")
        assert not engine.authenticate("alice", "wrong")
        assert not engine.authenticate(None, "secret")

    def test_open_session_unknown_database(self):
        engine = Engine()
        with pytest.raises(SqlExecutionError):
            engine.open_session("missing")

    def test_drop_database(self):
        engine = Engine()
        engine.create_database("db")
        assert engine.drop_database("db")
        assert not engine.drop_database("db")
