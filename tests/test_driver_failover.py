"""Driver failover semantics: what ClusterConnection promises when a
controller dies, is busy replaying its recovery log, or is an HA
follower — including the write-storm crash test for docs/ha.md.

Faults are injected through tests/chaos.py so every test means the same
thing by "crash" (endpoint dies before state teardown, no final flush)
and "graceful stop" (flush first, then dark)."""

import threading

import pytest

import chaos
from repro.cluster.driver import ClusterDriverRuntime
from repro.dbapi import OperationalError, legacy_driver
from repro.experiments.environments import build_cluster


@pytest.fixture
def cluster_env():
    env = build_cluster(replicas=2, controllers=2)
    yield env
    env.close()


def _controller_by_id(env, controller_id):
    for controller in env.controllers:
        if controller.config.controller_id == controller_id:
            return controller
    raise AssertionError(f"no controller {controller_id!r}")


class TestTransparentFailover:
    def test_failover_outside_transaction_counts_one_reconnect(self, cluster_env):
        env = cluster_env
        driver = ClusterDriverRuntime(name="fo-driver")
        connection = driver.connect(env.client_url(), network=env.network)
        cursor = connection.cursor()
        cursor.execute("CREATE TABLE fo_t (id INTEGER PRIMARY KEY)")
        chaos.graceful_stop(env, _controller_by_id(env, connection.controller_id))
        cursor.execute("SELECT COUNT(*) FROM fo_t")
        assert cursor.fetchone() == (0,)
        assert connection.failovers == 1
        connection.close()

    def test_mid_transaction_controller_death_surfaces_error(self, cluster_env):
        # A sibling controller never saw the transaction's earlier
        # statements: silently retrying there would commit half a
        # transaction. The driver must surface the failure and close.
        env = cluster_env
        driver = ClusterDriverRuntime(name="tx-driver")
        connection = driver.connect(env.client_url(), network=env.network)
        cursor = connection.cursor()
        cursor.execute("CREATE TABLE tx_fo_t (id INTEGER PRIMARY KEY)")
        connection.begin()
        cursor.execute("INSERT INTO tx_fo_t (id) VALUES (1)")
        chaos.graceful_stop(env, _controller_by_id(env, connection.controller_id))
        with pytest.raises(OperationalError):
            cursor.execute("INSERT INTO tx_fo_t (id) VALUES (2)")
        assert connection.failovers == 0  # no silent retry happened
        assert connection.closed

    def test_all_controllers_dead_raises_without_counting_failovers(self, cluster_env):
        env = cluster_env
        driver = ClusterDriverRuntime(name="dead-driver")
        connection = driver.connect(env.client_url(), network=env.network)
        for controller in env.controllers:
            chaos.graceful_stop(env, controller)
        cursor = connection.cursor()
        with pytest.raises(OperationalError):
            cursor.execute("SELECT 1")
        # The reconnect never succeeded, so no failover was recorded.
        assert connection.failovers == 0
        connection.close()


class TestRecoveringControllerRetry:
    def test_write_bounces_to_sibling_while_primary_replays_log(self, cluster_env):
        env = cluster_env
        driver = ClusterDriverRuntime(name="rec-driver")
        connection = driver.connect(env.client_url(), network=env.network)
        cursor = connection.cursor()
        cursor.execute("CREATE TABLE rec_t (id INTEGER PRIMARY KEY)")
        primary = _controller_by_id(env, connection.controller_id)
        # Freeze the primary in "replaying its log" state (what a long
        # resync holds while owning the write path).
        with chaos.resync_freeze(primary):
            cursor.execute("INSERT INTO rec_t (id) VALUES (1)")
        assert connection.failovers == 1
        assert connection.controller_id != primary.config.controller_id
        # The abandoned channel to the (healthy, just recovering) primary
        # was closed: its server-side session must not leak.
        assert chaos.wait_until(
            lambda: primary.stats()["active_sessions"] == 0
        ), "recovering controller leaked the abandoned session"
        # Reads are still served locally by a recovering controller.
        other = ClusterDriverRuntime(name="rec-reader").connect(
            f"sequoia://{primary.address}/vdb", network=env.network
        )
        with chaos.resync_freeze(primary):
            read_cursor = other.cursor()
            read_cursor.execute("SELECT COUNT(*) FROM rec_t")
            assert read_cursor.fetchone() is not None
        other.close()
        connection.close()


class TestHAFailoverUnderWriteStorm:
    """Kill the HA primary mid-write-storm (write batching + group
    commit on, their defaults): drivers must converge on the promoted
    sibling with every acked write present exactly once on every
    replica — zero loss, zero duplicates (docs/ha.md)."""

    WRITERS = 4
    WRITES_EACH = 40

    def test_primary_crash_mid_storm_loses_no_acked_write(self):
        env = build_cluster(replicas=2, controllers=3, ha=True)
        try:
            self._run_storm(env)
        finally:
            env.close()

    def _run_storm(self, env):
        setup = ClusterDriverRuntime(name="storm-setup").connect(
            env.client_url(), network=env.network
        )
        setup.cursor().execute("CREATE TABLE storm_t (id INTEGER PRIMARY KEY)")
        setup.close()
        primary = next(c for c in env.controllers if c.ha_store.is_primary)
        acked = [[] for _ in range(self.WRITERS)]
        ambiguous = [[] for _ in range(self.WRITERS)]

        def writer(slot):
            conn = ClusterDriverRuntime(name=f"storm-{slot}").connect(
                env.client_url(), network=env.network
            )
            for n in range(self.WRITES_EACH):
                write_id = slot * 1000 + n
                try:
                    conn.cursor().execute(
                        f"INSERT INTO storm_t (id) VALUES ({write_id})"
                    )
                except Exception:
                    # Durability unknown (the crash window, or a retry
                    # that hit its own earlier duplicate): not acked.
                    ambiguous[slot].append(write_id)
                    if conn.closed:
                        conn = ClusterDriverRuntime(
                            name=f"storm-{slot}-re{n}"
                        ).connect(env.client_url(), network=env.network)
                else:
                    acked[slot].append(write_id)
            try:
                conn.close()
            except Exception:
                pass

        threads = [
            threading.Thread(target=writer, args=(slot,), name=f"storm-writer-{slot}")
            for slot in range(self.WRITERS)
        ]
        for thread in threads:
            thread.start()
        # Let the storm build, then crash the primary mid-flight.
        assert chaos.wait_until(
            lambda: sum(len(ids) for ids in acked) >= 30, timeout=30.0
        ), "storm never got going"
        chaos.crash_controller(env, primary)
        for thread in threads:
            thread.join(timeout=60.0)
        assert not any(thread.is_alive() for thread in threads)

        survivors = [c for c in env.controllers if c is not primary]
        new_primaries = [c for c in survivors if c.ha_store.is_primary]
        assert len(new_primaries) == 1, "storm must have elected exactly one sibling"
        new_primary = new_primaries[0]
        assert new_primary.ha_store.epoch > 1

        acked_ids = sorted(wid for ids in acked for wid in ids)
        assert len(acked_ids) > 30  # writes succeeded both before and after
        # Ground truth per physical replica: every acked write present
        # exactly once, on every replica.
        for replica_index in range(len(env.replica_engines)):
            conn = legacy_driver.connect(
                env.replica_url(replica_index), network=env.network
            )
            cursor = conn.cursor()
            cursor.execute("SELECT id FROM storm_t")
            present = [row[0] for row in cursor.fetchall()]
            conn.close()
            assert len(present) == len(set(present)), (
                f"replica {replica_index} holds duplicate rows"
            )
            lost = set(acked_ids) - set(present)
            assert not lost, f"replica {replica_index} lost acked writes: {sorted(lost)}"
        # Surviving logs converged on the same history...
        heads = {c.ha_store.last_index for c in survivors}
        assert len(heads) == 1
        # ...and the promotion seeded replay dedup: the promoted node's
        # backend views count the replicated entries as applied, so a
        # resync replay would skip (not double-apply) them.
        store = new_primary.ha_store
        backend = next(b for b in new_primary.backends() if b.enabled)
        for entry in store.entries_after(store.truncated_through)[-5:]:
            if entry.table_seqs:
                assert backend.has_applied_seqs(entry.table_seqs)
