"""Driver failover semantics: what ClusterConnection promises when a
controller dies or is busy replaying its recovery log."""

import pytest

from repro.cluster.driver import ClusterDriverRuntime
from repro.dbapi import OperationalError


@pytest.fixture
def cluster_env():
    from repro.experiments.environments import build_cluster

    env = build_cluster(replicas=2, controllers=2)
    yield env
    env.close()


def _controller_by_id(env, controller_id):
    for controller in env.controllers:
        if controller.config.controller_id == controller_id:
            return controller
    raise AssertionError(f"no controller {controller_id!r}")


def _kill_controller(env, controller):
    controller.stop()
    env.network.kill_endpoint(controller.address)


class TestTransparentFailover:
    def test_failover_outside_transaction_counts_one_reconnect(self, cluster_env):
        env = cluster_env
        driver = ClusterDriverRuntime(name="fo-driver")
        connection = driver.connect(env.client_url(), network=env.network)
        cursor = connection.cursor()
        cursor.execute("CREATE TABLE fo_t (id INTEGER PRIMARY KEY)")
        _kill_controller(env, _controller_by_id(env, connection.controller_id))
        cursor.execute("SELECT COUNT(*) FROM fo_t")
        assert cursor.fetchone() == (0,)
        assert connection.failovers == 1
        connection.close()

    def test_mid_transaction_controller_death_surfaces_error(self, cluster_env):
        # A sibling controller never saw the transaction's earlier
        # statements: silently retrying there would commit half a
        # transaction. The driver must surface the failure and close.
        env = cluster_env
        driver = ClusterDriverRuntime(name="tx-driver")
        connection = driver.connect(env.client_url(), network=env.network)
        cursor = connection.cursor()
        cursor.execute("CREATE TABLE tx_fo_t (id INTEGER PRIMARY KEY)")
        connection.begin()
        cursor.execute("INSERT INTO tx_fo_t (id) VALUES (1)")
        _kill_controller(env, _controller_by_id(env, connection.controller_id))
        with pytest.raises(OperationalError):
            cursor.execute("INSERT INTO tx_fo_t (id) VALUES (2)")
        assert connection.failovers == 0  # no silent retry happened
        assert connection.closed

    def test_all_controllers_dead_raises_without_counting_failovers(self, cluster_env):
        env = cluster_env
        driver = ClusterDriverRuntime(name="dead-driver")
        connection = driver.connect(env.client_url(), network=env.network)
        for controller in env.controllers:
            _kill_controller(env, controller)
        cursor = connection.cursor()
        with pytest.raises(OperationalError):
            cursor.execute("SELECT 1")
        # The reconnect never succeeded, so no failover was recorded.
        assert connection.failovers == 0
        connection.close()


class TestRecoveringControllerRetry:
    def test_write_bounces_to_sibling_while_primary_replays_log(self, cluster_env):
        env = cluster_env
        driver = ClusterDriverRuntime(name="rec-driver")
        connection = driver.connect(env.client_url(), network=env.network)
        cursor = connection.cursor()
        cursor.execute("CREATE TABLE rec_t (id INTEGER PRIMARY KEY)")
        primary = _controller_by_id(env, connection.controller_id)
        # Freeze the primary in "replaying its log" state (what a long
        # resync holds while owning the write path).
        primary.scheduler._resyncing = True
        try:
            cursor.execute("INSERT INTO rec_t (id) VALUES (1)")
        finally:
            primary.scheduler._resyncing = False
        assert connection.failovers == 1
        assert connection.controller_id != primary.config.controller_id
        # The abandoned channel to the (healthy, just recovering) primary
        # was closed: its server-side session must not leak.
        for _ in range(200):
            if primary.stats()["active_sessions"] == 0:
                break
            import time

            time.sleep(0.005)
        assert primary.stats()["active_sessions"] == 0
        # Reads are still served locally by a recovering controller.
        other = ClusterDriverRuntime(name="rec-reader").connect(
            f"sequoia://{primary.address}/vdb", network=env.network
        )
        primary.scheduler._resyncing = True
        try:
            read_cursor = other.cursor()
            read_cursor.execute("SELECT COUNT(*) FROM rec_t")
            assert read_cursor.fetchone() is not None
        finally:
            primary.scheduler._resyncing = False
        other.close()
        connection.close()
