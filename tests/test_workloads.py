"""Tests for the workload generator and metrics collection."""

import pytest

from repro.core.clock import SimulatedClock
from repro.dbapi import legacy_driver
from repro.dbapi.driver_factory import build_pydb_driver
from repro.workloads import ClientApplication, MetricsCollector, WorkloadSpec, percentile


class TestMetricsCollector:
    def test_summary_counts_and_windows(self):
        clock = SimulatedClock()
        metrics = MetricsCollector(clock=clock)
        metrics.record_success(latency=0.01, driver="v1")
        clock.advance(1.0)
        metrics.record_failure("OperationalError: boom", driver="v1")
        clock.advance(2.0)
        metrics.record_failure("OperationalError: boom again", driver="v1")
        clock.advance(1.0)
        metrics.record_success(latency=0.03, driver="v2")
        summary = metrics.summary()
        assert summary.total == 4
        assert summary.succeeded == 2
        assert summary.failed == 2
        assert summary.availability == 0.5
        assert summary.error_window_seconds == 2.0
        assert summary.drivers_seen == {"v1": 1, "v2": 1}
        assert summary.errors_by_type == {"OperationalError": 2}
        assert summary.mean_latency > 0
        assert len(metrics) == 4

    def test_empty_metrics(self):
        summary = MetricsCollector().summary()
        assert summary.total == 0
        assert summary.availability == 1.0
        assert summary.error_window_seconds == 0.0
        assert summary.latency_p50 == 0.0
        assert summary.latency_p99 == 0.0

    def test_percentile_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]  # 1..100
        assert percentile(values, 50) == 50.0
        assert percentile(values, 95) == 95.0
        assert percentile(values, 99) == 99.0
        assert percentile(values, 100) == 100.0
        assert percentile(values, 0) == 1.0
        assert percentile([], 95) == 0.0
        assert percentile([7.0], 50) == 7.0

    def test_summary_latency_percentiles(self):
        metrics = MetricsCollector(clock=SimulatedClock())
        for latency_ms in range(1, 21):
            metrics.record_success(latency=latency_ms / 1000.0)
        summary = metrics.summary()
        assert summary.latency_p50 == 0.010
        assert summary.latency_p95 == 0.019
        assert summary.latency_p99 == 0.020
        assert summary.latency_p50 <= summary.latency_p95 <= summary.latency_p99
        assert summary.latency_p99 <= summary.max_latency

    def test_zero_latency_successes_count_toward_percentiles(self):
        """Regression: the summary used ``latency > 0`` and silently
        dropped sub-clock-resolution (0.0) latencies from the percentile
        population, biasing every percentile and the mean upward on fast
        in-memory runs. A population of nine instant requests and one
        slow one must report p50 = 0, not p50 = the slow one."""
        metrics = MetricsCollector(clock=SimulatedClock())
        for _ in range(9):
            metrics.record_success(latency=0.0)
        metrics.record_success(latency=0.1)
        summary = metrics.summary()
        assert summary.latency_p50 == 0.0
        assert summary.latency_p99 == 0.1
        assert summary.mean_latency == pytest.approx(0.01)
        # Genuinely invalid (negative) latencies stay excluded.
        metrics.record_success(latency=-1.0)
        assert metrics.summary().latency_p50 == 0.0


class TestClientApplication:
    def test_workload_against_real_database(self, single_db_env):
        env = single_db_env

        def connect(url, **kwargs):
            return legacy_driver.connect(url, network=env.network, **kwargs)

        app = ClientApplication(
            "app",
            connect,
            env.url,
            spec=WorkloadSpec(table="wl_events", write_ratio=0.5),
            clock=env.clock,
        )
        app.ensure_schema()
        app.run_requests(20)
        summary = app.metrics.summary()
        assert summary.total == 20
        assert summary.failed == 0
        rows = env.open_sql_session().execute("SELECT COUNT(*) FROM wl_events").scalar()
        assert rows == 10  # write_ratio 0.5 of 20 requests
        assert app.current_driver_name() == "pydb-legacy"
        app.close()

    def test_failures_recorded_and_connection_recycled(self, single_db_env):
        env = single_db_env
        env.admin.install_driver(build_pydb_driver("d"), database=env.database_name)

        def connect(url, **kwargs):
            return legacy_driver.connect(url, network=env.network, **kwargs)

        app = ClientApplication(
            "flaky", connect, env.url, spec=WorkloadSpec(table="wl_fail"), clock=env.clock
        )
        app.ensure_schema()
        app.run_requests(2, tag="ok")
        env.network.kill_endpoint(env.db_address)
        app.drop_connection()
        app.run_requests(2, tag="down")
        env.network.revive_endpoint(env.db_address)
        app.run_requests(2, tag="recovered")
        summary = app.metrics.summary()
        failed_tags = {record.tag for record in app.metrics.failures()}
        assert failed_tags == {"down"}
        assert summary.failed == 2
        recovered = [r for r in app.metrics.records() if r.tag == "recovered"]
        assert all(record.ok for record in recovered)
        app.close()

    def test_transactional_workload(self, single_db_env):
        env = single_db_env

        def connect(url, **kwargs):
            return legacy_driver.connect(url, network=env.network, **kwargs)

        app = ClientApplication(
            "tx-app",
            connect,
            env.url,
            spec=WorkloadSpec(table="wl_tx", write_ratio=1.0, use_transactions=True),
            clock=env.clock,
        )
        app.ensure_schema()
        app.run_requests(5)
        assert app.metrics.summary().failed == 0
        assert env.open_sql_session().execute("SELECT COUNT(*) FROM wl_tx").scalar() == 5
        app.close()

    def test_background_traffic_thread(self, single_db_env):
        import time

        env = single_db_env

        def connect(url, **kwargs):
            return legacy_driver.connect(url, network=env.network, **kwargs)

        app = ClientApplication(
            "bg", connect, env.url, spec=WorkloadSpec(table="wl_bg"), clock=env.clock
        )
        app.ensure_schema()
        app.start(interval=0.005)
        time.sleep(0.15)
        app.stop()
        assert len(app.metrics) > 0
        app.close()
