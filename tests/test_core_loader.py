"""Tests for dynamic driver loading."""

import pytest

from repro.core import DriverLoader, DriverPackage, DriverSigner
from repro.core.loader import DriverLoadError
from repro.dbapi.driver_factory import build_pydb_driver, render_pydb_source

SIMPLE_SOURCE = """
DRIVER_NAME = "toy"
DRIVER_VERSION = (1, 2, 3)
API_NAME = "TOY-API"
PROTOCOL_VERSION = 9
EXTENSIONS = ["gis"]
PRECONFIGURED_URL = None

def connect(url, **options):
    return {"url": url, "options": options}
"""


class TestLoading:
    def test_load_and_call_connect(self):
        loader = DriverLoader()
        package = DriverPackage.from_source("toy", "TOY-API", SIMPLE_SOURCE)
        loaded = loader.load(package, driver_id=7, lease_id="lease-1")
        result = loaded.connect("pydb://x/db", user="u")
        assert result == {"url": "pydb://x/db", "options": {"user": "u"}}
        assert loaded.driver_id == 7
        assert loaded.lease_id == "lease-1"
        info = loaded.info()
        assert info["driver_name"] == "toy"
        assert info["driver_version"] == (1, 2, 3)
        assert info["protocol_version"] == 9
        assert info["extensions"] == ["gis"]

    def test_multiple_versions_coexist_in_isolated_namespaces(self):
        loader = DriverLoader()
        v1 = loader.load(DriverPackage.from_source("toy", "A", SIMPLE_SOURCE))
        v2_source = SIMPLE_SOURCE.replace("(1, 2, 3)", "(2, 0, 0)")
        v2 = loader.load(DriverPackage.from_source("toy", "A", v2_source))
        assert v1.module is not v2.module
        assert v1.info()["driver_version"] == (1, 2, 3)
        assert v2.info()["driver_version"] == (2, 0, 0)
        assert loader.load_count == 2
        assert len(loader.loaded_drivers()) == 2
        loader.unload(v1)
        assert len(loader.loaded_drivers()) == 1

    def test_missing_connect_rejected(self):
        loader = DriverLoader()
        package = DriverPackage.from_source("bad", "A", "X = 1\n")
        with pytest.raises(DriverLoadError, match="connect"):
            loader.load(package)

    def test_broken_source_rejected(self):
        loader = DriverLoader()
        package = DriverPackage.from_source("bad", "A", "def connect(:\n")
        with pytest.raises(DriverLoadError):
            loader.load(package)

    def test_generated_pydb_driver_loads(self):
        loader = DriverLoader()
        package = build_pydb_driver("pydb-gen", driver_version=(1, 0, 0))
        loaded = loader.load(package)
        assert callable(loaded.module.connect)
        assert loaded.info()["api_name"] == "PYDB-API"

    def test_rendered_source_contains_metadata(self):
        source = render_pydb_source("pydb-9", driver_version=(9, 8, 7), extensions=["gis"])
        assert "DRIVER_VERSION = (9, 8, 7)" in source
        assert "'gis'" in source


class TestSignatureEnforcement:
    def test_signed_package_accepted(self):
        signer = DriverSigner(b"secret")
        loader = DriverLoader(signer=signer, require_signature=True)
        package = DriverPackage.from_source("toy", "A", SIMPLE_SOURCE).signed_by(signer)
        assert loader.load(package).name == "toy"

    def test_unsigned_package_rejected_when_required(self):
        signer = DriverSigner(b"secret")
        loader = DriverLoader(signer=signer, require_signature=True)
        package = DriverPackage.from_source("toy", "A", SIMPLE_SOURCE)
        with pytest.raises(DriverLoadError, match="unsigned"):
            loader.load(package)

    def test_tampered_package_rejected(self):
        signer = DriverSigner(b"secret")
        loader = DriverLoader(signer=signer)
        package = DriverPackage.from_source("toy", "A", SIMPLE_SOURCE).signed_by(signer).tampered()
        with pytest.raises(DriverLoadError, match="signature"):
            loader.load(package)

    def test_require_signature_without_signer_invalid(self):
        with pytest.raises(DriverLoadError):
            DriverLoader(require_signature=True)
