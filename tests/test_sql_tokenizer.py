"""Unit tests for the SQL tokenizer."""

import pytest

from repro.sqlengine.errors import SqlParseError
from repro.sqlengine.tokenizer import tokenize


class TestTokenizer:
    def test_identifiers_and_keywords(self):
        tokens = tokenize("SELECT api_name FROM drivers")
        assert [token.kind for token in tokens] == ["IDENT", "IDENT", "IDENT", "IDENT"]
        assert tokens[0].value == "SELECT"

    def test_string_literal(self):
        tokens = tokenize("SELECT 'hello world'")
        assert tokens[1].kind == "STRING"
        assert tokens[1].value == "hello world"

    def test_string_literal_with_escaped_quote(self):
        tokens = tokenize("SELECT 'it''s'")
        assert tokens[1].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SqlParseError):
            tokenize("SELECT 'oops")

    def test_integer_and_float_literals(self):
        tokens = tokenize("SELECT 42, 3.5")
        values = [token.value for token in tokens if token.kind == "NUMBER"]
        assert values == [42, 3.5]

    def test_negative_number_after_comparison(self):
        tokens = tokenize("WHERE x = -5")
        numbers = [token for token in tokens if token.kind == "NUMBER"]
        assert numbers and numbers[0].value == -5

    def test_named_parameter(self):
        tokens = tokenize("WHERE api_name LIKE $client_api_name")
        params = [token for token in tokens if token.kind == "PARAM"]
        assert params[0].value == "client_api_name"

    def test_positional_parameter(self):
        tokens = tokenize("WHERE id = ?")
        assert any(token.kind == "PARAM" and token.value == "?" for token in tokens)

    def test_operators(self):
        tokens = tokenize("a <> b AND c >= 2")
        ops = [token.value for token in tokens if token.kind == "OP"]
        assert "<>" in ops and ">=" in ops

    def test_qualified_name_dot(self):
        tokens = tokenize("SELECT * FROM information_schema.drivers")
        assert any(token.kind == "OP" and token.value == "." for token in tokens)

    def test_comment_skipped(self):
        tokens = tokenize("SELECT 1 -- trailing comment\n")
        assert [token.kind for token in tokens] == ["IDENT", "NUMBER"]

    def test_unexpected_character(self):
        with pytest.raises(SqlParseError):
            tokenize("SELECT @foo")

    def test_empty_parameter_name(self):
        with pytest.raises(SqlParseError):
            tokenize("WHERE x = $ ")
