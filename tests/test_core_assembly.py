"""Tests for on-demand driver assembly (Section 5.4.1)."""

import pytest

from repro.core import DriverLoader
from repro.core.assembly import AssemblyError, DriverAssembler, ExtensionPackage
from repro.dbapi.driver_factory import pydb_assembler


class TestAssembler:
    def test_base_only(self):
        assembler = pydb_assembler(payload_size=512)
        package = assembler.assemble()
        loaded = DriverLoader().load(package)
        assert loaded.module.FEATURES == {}
        assert package.metadata["extensions"] == []

    def test_single_extension_adds_feature_and_bytes(self):
        assembler = pydb_assembler(payload_size=512)
        base = assembler.assemble()
        gis = assembler.assemble(extensions=["gis"])
        assert gis.size_bytes > base.size_bytes
        loaded = DriverLoader().load(gis)
        assert "gis" in loaded.module.FEATURES
        point = loaded.module.FEATURES["gis"]("POINT(1.5 2.5)")
        assert point == {"type": "Point", "coordinates": [1.5, 2.5]}
        assert "gis" in loaded.module.EXTENSIONS

    def test_kerberos_extension_computes_token(self):
        from repro.dbserver.auth import compute_token

        assembler = pydb_assembler(payload_size=128)
        loaded = DriverLoader().load(assembler.assemble(extensions=["kerberos"]))
        assert loaded.module.FEATURES["kerberos"]("realm", "alice") == compute_token("realm", "alice")

    def test_nls_extension_contains_messages(self):
        assembler = pydb_assembler(payload_size=128)
        loaded = DriverLoader().load(assembler.assemble(extensions=["nls-fr"]))
        assert loaded.module.FEATURES["nls-fr"]["timeout"] == "délai dépassé"

    def test_monolithic_is_largest(self):
        assembler = pydb_assembler(payload_size=512)
        monolithic = assembler.assemble_monolithic()
        for name in assembler.available_extensions():
            assert monolithic.size_bytes > assembler.assemble(extensions=[name]).size_bytes

    def test_unknown_extension_rejected(self):
        assembler = pydb_assembler(payload_size=128)
        with pytest.raises(AssemblyError):
            assembler.assemble(extensions=["quantum"])

    def test_resolve_missing_feature(self):
        assembler = pydb_assembler(payload_size=128)
        assert assembler.resolve_missing_feature("gis").name == "gis"
        assert assembler.resolve_missing_feature("Kerberos security").name == "kerberos"
        with pytest.raises(AssemblyError):
            assembler.resolve_missing_feature("teleportation")

    def test_custom_extension_registration(self):
        assembler = DriverAssembler(
            base_name="base",
            api_name="API",
            base_source="EXTENSIONS = []\nFEATURES = {}\n\ndef connect(url, **o):\n    return url\n",
        )
        assembler.register_extension(
            ExtensionPackage(name="audit", source_fragment="FEATURES['audit'] = True\n", payload=b"x" * 100)
        )
        package = assembler.assemble(extensions=["audit"])
        loaded = DriverLoader().load(package)
        assert loaded.module.FEATURES["audit"] is True
        assert assembler.extension("audit").size_bytes >= 100

    def test_assembled_name_reflects_extensions(self):
        assembler = pydb_assembler(payload_size=128)
        assert assembler.assemble(extensions=["gis", "nls-fr"]).name.endswith("+gis+nls-fr")
