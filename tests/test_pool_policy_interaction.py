"""The paper's connection-pool caveat (Section 3.4.2).

"If the client uses a connection pool, the first option [AFTER_CLOSE]
might not be a good choice since connection renewal is highly dependent on
connection pool settings and application load."

These tests reproduce that interaction: with AFTER_CLOSE, pooled
connections keep using the old driver indefinitely because the pool never
closes them; AFTER_COMMIT (the sensible default) drains them promptly.
"""

import pytest

from repro.core import BootloaderConfig
from repro.core.constants import ExpirationPolicy
from repro.dbapi import ConnectionPool
from repro.dbapi.driver_factory import build_pydb_driver


def _fleet_with_pool(env, policy, pool_size=3):
    """Install v1, create a bootloader whose connections live in a pool."""
    record = env.admin.install_driver(
        build_pydb_driver("pool-v1", driver_version=(1, 0, 0)),
        database=env.database_name,
        lease_time_ms=1_000,
        expiration_policy=policy,
    )
    bootloader = env.new_bootloader(BootloaderConfig())
    pool = ConnectionPool(lambda: bootloader.connect(env.url), min_size=pool_size, max_size=pool_size)
    return record, bootloader, pool


class TestPoolVersusExpirationPolicy:
    def test_after_close_leaves_pooled_connections_on_old_driver(self, single_db_env):
        env = single_db_env
        record, bootloader, pool = _fleet_with_pool(env, ExpirationPolicy.AFTER_CLOSE)
        env.admin.push_upgrade(
            build_pydb_driver("pool-v2", driver_version=(2, 0, 0)),
            old_record=record,
            database=env.database_name,
            lease_time_ms=1_000,
            expiration_policy=ExpirationPolicy.AFTER_CLOSE,
        )
        env.clock.advance(2.0)
        assert bootloader.check_for_update() == "upgraded"
        # The pool never closed its idle connections, so they still run the
        # old driver — exactly the paper's warning.
        stale = bootloader.stale_connections()
        assert len(stale) == 3
        assert all(conn.driver_info["name"] == "pool-v1" for conn in stale)
        # Only after explicitly invalidating the pool do old connections go away.
        pool.invalidate_idle()
        assert bootloader.stale_connections() == []
        fresh = pool.acquire()
        assert fresh.driver_info["name"] == "pool-v2"
        pool.release(fresh)
        pool.close()

    def test_after_commit_drains_idle_pooled_connections(self, single_db_env):
        env = single_db_env
        record, bootloader, pool = _fleet_with_pool(env, ExpirationPolicy.AFTER_COMMIT)
        env.admin.push_upgrade(
            build_pydb_driver("pool-v2", driver_version=(2, 0, 0)),
            old_record=record,
            database=env.database_name,
            lease_time_ms=1_000,
            expiration_policy=ExpirationPolicy.AFTER_COMMIT,
        )
        env.clock.advance(2.0)
        assert bootloader.check_for_update() == "upgraded"
        # Idle pooled connections were closed by the policy; the pool drops
        # them on next acquire and builds fresh ones with the new driver.
        assert bootloader.stale_connections() == []
        fresh = pool.acquire()
        assert fresh.driver_info["name"] == "pool-v2"
        pool.release(fresh)
        pool.close()

    def test_immediate_aborts_pooled_transaction(self, single_db_env):
        env = single_db_env
        record, bootloader, pool = _fleet_with_pool(env, ExpirationPolicy.IMMEDIATE, pool_size=2)
        session = env.open_sql_session()
        session.execute("CREATE TABLE pool_tx (id INTEGER PRIMARY KEY)")
        busy = pool.acquire()
        busy.begin()
        cursor = busy.cursor()
        cursor.execute("INSERT INTO pool_tx (id) VALUES (1)")
        env.admin.push_upgrade(
            build_pydb_driver("pool-v2", driver_version=(2, 0, 0)),
            old_record=record,
            database=env.database_name,
            lease_time_ms=1_000,
            expiration_policy=ExpirationPolicy.IMMEDIATE,
        )
        env.clock.advance(2.0)
        assert bootloader.check_for_update() == "upgraded"
        transition = bootloader.last_transition
        assert transition.aborted_transactions == 1
        assert busy.closed
        # The aborted transaction's insert is not visible.
        assert env.open_sql_session().execute("SELECT COUNT(*) FROM pool_tx").scalar() == 0
        pool.release(busy)
        pool.close()
