"""End-to-end integration over real TCP sockets.

Everything else in the suite uses the in-memory network; this module shows
the full Drivolution flow — database server, in-database Drivolution
server, bootloader download, dynamic load, upgrade — working over actual
localhost sockets.
"""

import pytest

from repro.core import Bootloader, BootloaderConfig, DrivolutionAdmin, DrivolutionServer, InDatabaseServerBinding
from repro.core.clock import SimulatedClock
from repro.dbapi.driver_factory import build_pydb_driver
from repro.dbserver import DatabaseServer, ServerConfig
from repro.netsim import TcpNetwork
from repro.sqlengine import Engine


@pytest.fixture
def tcp_env():
    clock = SimulatedClock()
    network = TcpNetwork()
    engine = Engine(name="tcpdb", clock=clock)
    engine.create_database("appdb")
    # Bind an ephemeral port first so we know the address to put in URLs.
    listener = network.listen("127.0.0.1:0")
    address = listener.address
    listener.close()
    db_server = DatabaseServer(engine, network, address, ServerConfig(name="tcpdb")).start()
    binding = InDatabaseServerBinding(engine, "appdb", clock=clock)
    drivolution = DrivolutionServer(binding, network=network, clock=clock, server_id="drivo-tcp")
    drivolution.attach_to_database_server(db_server)
    admin = DrivolutionAdmin([drivolution], default_lease_time_ms=1_000)
    yield clock, network, engine, db_server, admin, address
    db_server.stop()


class TestTcpEndToEnd:
    def test_bootstrap_and_upgrade_over_tcp(self, tcp_env):
        clock, network, engine, _server, admin, address = tcp_env
        url = f"pydb://{address}/appdb"
        record = admin.install_driver(
            build_pydb_driver("tcp-driver-1.0", driver_version=(1, 0, 0)),
            database="appdb",
            lease_time_ms=1_000,
        )
        bootloader = Bootloader(BootloaderConfig(), network=network, clock=clock)
        connection = bootloader.connect(url)
        cursor = connection.cursor()
        cursor.execute("CREATE TABLE tcp_t (id INTEGER PRIMARY KEY, v VARCHAR)")
        cursor.execute("INSERT INTO tcp_t (id, v) VALUES (1, 'over tcp')")
        cursor.execute("SELECT v FROM tcp_t WHERE id = 1")
        assert cursor.fetchone() == ("over tcp",)
        assert bootloader.driver_info()["driver_name"] == "tcp-driver-1.0"

        admin.push_upgrade(
            build_pydb_driver("tcp-driver-2.0", driver_version=(2, 0, 0)),
            old_record=record,
            database="appdb",
            lease_time_ms=1_000,
        )
        clock.advance(2.0)
        assert bootloader.check_for_update() == "upgraded"
        upgraded = bootloader.connect(url)
        assert upgraded.driver_info["name"] == "tcp-driver-2.0"
        cursor2 = upgraded.cursor()
        cursor2.execute("SELECT COUNT(*) FROM tcp_t")
        assert cursor2.fetchone() == (1,)
        upgraded.close()
        if not connection.closed:
            connection.close()

    def test_conventional_and_drivolution_clients_share_tcp_port(self, tcp_env):
        clock, network, engine, _server, admin, address = tcp_env
        url = f"pydb://{address}/appdb"
        admin.install_driver(build_pydb_driver("tcp-driver"), database="appdb")
        from repro.dbapi import legacy_driver

        conventional = legacy_driver.connect(url, network=network)
        cursor = conventional.cursor()
        cursor.execute("SELECT 1")
        assert cursor.fetchone() == (1,)
        bootloader = Bootloader(BootloaderConfig(), network=network, clock=clock)
        managed = bootloader.connect(url)
        cursor = managed.cursor()
        cursor.execute("SELECT 1")
        assert cursor.fetchone() == (1,)
        conventional.close()
        managed.close()
