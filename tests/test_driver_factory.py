"""Tests for the driver package factory and the network registry."""

import pytest

from repro.core import DriverLoader
from repro.core.constants import BinaryFormat
from repro.dbapi.driver_factory import (
    build_pydb_driver,
    build_sequoia_driver,
    driver_family,
    render_pydb_source,
    render_sequoia_source,
)
from repro.errors import TransportError
from repro.netsim import InMemoryNetwork, TcpNetwork
from repro.netsim.registry import clear_registry, get_network, register_network, unregister_network


class TestPydbPackages:
    def test_metadata_embedded_in_source(self):
        source = render_pydb_source(
            "pydb-7",
            driver_version=(7, 1, 2),
            protocol_version=3,
            extensions=["gis", "nls-fr"],
            preconfigured_url="pydb://fixed:5432/db",
            default_options={"application_name": "batch"},
        )
        assert "DRIVER_VERSION = (7, 1, 2)" in source
        assert "PROTOCOL_VERSION = 3" in source
        assert "'pydb://fixed:5432/db'" in source
        assert "application_name" in source

    def test_package_fields(self):
        package = build_pydb_driver(
            "pydb-1.2.3",
            driver_version=(1, 2, 3),
            platform="cpython-any",
            api_version=(2, 0),
            binary_format=BinaryFormat.PYSRC_ZLIB,
            extensions=["gis"],
        )
        assert package.api_name == "PYDB-API"
        assert package.driver_version == (1, 2, 3)
        assert package.platform == "cpython-any"
        assert package.api_version == (2, 0)
        assert package.binary_format == BinaryFormat.PYSRC_ZLIB
        assert package.metadata["extensions"] == ["gis"]
        assert "def connect" in package.decode_source()

    def test_loaded_package_exposes_runtime(self):
        loaded = DriverLoader().load(build_pydb_driver("pydb-x", extensions=["kerberos"]))
        runtime = loaded.module.driver_runtime()
        assert runtime.name == "pydb-x"
        assert runtime.supports("kerberos")

    def test_driver_family_versions(self):
        family = driver_family(3, base_name="pydb", start_version=(2, 0, 0))
        assert [package.driver_version for package in family] == [(2, 0, 0), (2, 1, 0), (2, 2, 0)]
        assert [package.name for package in family] == ["pydb-2.0.0", "pydb-2.1.0", "pydb-2.2.0"]


class TestSequoiaPackages:
    def test_metadata_embedded_in_source(self):
        source = render_sequoia_source("seq-2", driver_version=(2, 0, 0), protocol_version=2)
        assert "ClusterDriverRuntime" in source
        assert "DRIVER_VERSION = (2, 0, 0)" in source

    def test_package_loads(self):
        loaded = DriverLoader().load(build_sequoia_driver("seq-1", driver_version=(1, 0, 0)))
        assert loaded.info()["api_name"] == "SEQUOIA"
        assert callable(loaded.module.connect)


class TestNetworkRegistry:
    def teardown_method(self):
        clear_registry()

    def test_register_and_get(self):
        network = InMemoryNetwork()
        register_network("default", network)
        assert get_network("default") is network
        unregister_network("default")
        with pytest.raises(TransportError):
            get_network("default")

    def test_tcp_name_always_resolves(self):
        assert isinstance(get_network("tcp"), TcpNetwork)

    def test_unknown_name(self):
        with pytest.raises(TransportError):
            get_network("nonexistent")

    def test_clear_registry(self):
        register_network("a", InMemoryNetwork())
        clear_registry()
        with pytest.raises(TransportError):
            get_network("a")
