"""Unit tests for the conflict-aware lock manager."""

import threading
import time

import pytest

from repro.cluster.locks import LockManager


def _spawn(target):
    thread = threading.Thread(target=target)
    thread.start()
    return thread


class TestTableScope:
    def test_disjoint_tables_overlap(self):
        manager = LockManager()
        inside = threading.Barrier(2, timeout=5.0)

        def worker(table):
            with manager.tables({table}):
                inside.wait()  # both workers hold their lock at once

        workers = [_spawn(lambda t=t: worker(t)) for t in ("a", "b")]
        for worker_thread in workers:
            worker_thread.join(timeout=5.0)
        assert not any(w.is_alive() for w in workers)
        assert manager.stats()["table_acquisitions"] == 2
        assert manager.stats()["table_waits"] == 0

    def test_conflicting_tables_serialise(self):
        manager = LockManager()
        order = []
        held = threading.Event()
        release = threading.Event()

        def first():
            with manager.tables({"a", "b"}):
                held.set()
                release.wait(timeout=5.0)
                order.append("first")

        def second():
            held.wait(timeout=5.0)
            with manager.tables({"b", "c"}):
                order.append("second")

        threads = [_spawn(first), _spawn(second)]
        held.wait(timeout=5.0)
        time.sleep(0.02)  # give the second worker time to block on b
        assert order == []
        release.set()
        for thread in threads:
            thread.join(timeout=5.0)
        assert order == ["first", "second"]
        assert manager.stats()["table_waits"] == 1

    def test_empty_table_set_is_refused(self):
        with pytest.raises(ValueError):
            LockManager().acquire_tables(())

    def test_locks_released_on_error(self):
        manager = LockManager()
        with pytest.raises(RuntimeError):
            with manager.tables({"a"}):
                raise RuntimeError("boom")
        # The scope is free again.
        with manager.tables({"a"}):
            pass
        assert manager.stats()["tables_held"] == 0


class TestExclusiveScope:
    def test_exclusive_waits_for_table_scopes_to_drain(self):
        manager = LockManager()
        table_held = threading.Event()
        release_table = threading.Event()
        order = []

        def table_worker():
            with manager.tables({"a"}):
                table_held.set()
                release_table.wait(timeout=5.0)
                order.append("table")

        def exclusive_worker():
            table_held.wait(timeout=5.0)
            with manager.exclusive():
                order.append("exclusive")

        threads = [_spawn(table_worker), _spawn(exclusive_worker)]
        table_held.wait(timeout=5.0)
        time.sleep(0.02)
        assert order == []  # exclusive is blocked behind the table scope
        release_table.set()
        for thread in threads:
            thread.join(timeout=5.0)
        assert order == ["table", "exclusive"]
        assert manager.stats()["exclusive_waits"] == 1

    def test_waiting_exclusive_blocks_new_table_scopes(self):
        # No starvation: once an exclusive caller waits, fresh table
        # acquisitions queue behind it even for uncontended tables.
        manager = LockManager()
        first_held = threading.Event()
        release_first = threading.Event()
        order = []

        def first_table():
            with manager.tables({"a"}):
                first_held.set()
                release_first.wait(timeout=5.0)

        def exclusive_worker():
            with manager.exclusive():
                order.append("exclusive")

        def late_table():
            with manager.tables({"b"}):
                order.append("late-table")

        t1 = _spawn(first_table)
        first_held.wait(timeout=5.0)
        t2 = _spawn(exclusive_worker)
        time.sleep(0.02)  # let the exclusive worker start waiting
        t3 = _spawn(late_table)
        time.sleep(0.02)
        assert order == []  # the late table scope queued behind exclusive
        release_first.set()
        for thread in (t1, t2, t3):
            thread.join(timeout=5.0)
        assert order[0] == "exclusive"

    def test_exclusive_is_reentrant_per_thread(self):
        manager = LockManager()
        with manager.exclusive():
            with manager.exclusive():
                assert manager.stats()["exclusive_held"] is True
            assert manager.stats()["exclusive_held"] is True
        assert manager.stats()["exclusive_held"] is False

    def test_release_by_non_owner_is_refused(self):
        manager = LockManager()
        errors = []
        manager.acquire_exclusive()

        def rogue():
            try:
                manager.release_exclusive()
            except RuntimeError as exc:
                errors.append(exc)

        thread = _spawn(rogue)
        thread.join(timeout=5.0)
        manager.release_exclusive()
        assert len(errors) == 1


class TestScope:
    def test_scope_with_tables_takes_table_locks(self):
        manager = LockManager()
        with manager.scope({"a"}):
            stats = manager.stats()
            assert stats["tables_held"] == 1
            assert stats["exclusive_held"] is False

    def test_scope_with_none_or_empty_takes_exclusive(self):
        manager = LockManager()
        for scope in (None, frozenset()):
            with manager.scope(scope):
                stats = manager.stats()
                assert stats["exclusive_held"] is True
                assert stats["tables_held"] == 0

    def test_conflict_aware_off_forces_exclusive(self):
        manager = LockManager(conflict_aware=False)
        with manager.scope({"a"}):
            stats = manager.stats()
            assert stats["exclusive_held"] is True
            assert stats["tables_held"] == 0
        assert manager.stats()["table_acquisitions"] == 0
