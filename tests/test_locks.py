"""Unit tests for the conflict-aware lock manager."""

import threading

import pytest

import chaos
from repro.cluster.locks import LockManager, LockScope


def _spawn(target):
    thread = threading.Thread(target=target)
    thread.start()
    return thread


def _blocked(manager, scope=0, exclusive=0):
    """Wait (event-gated, no fixed sleep) until the expected number of
    workers are parked inside the manager — the live waiter gauges make
    "the other thread has started blocking" observable instead of
    guessed at with time.sleep."""
    assert chaos.wait_until(
        lambda: manager.stats()["scope_waiters"] >= scope
        and manager.stats()["exclusive_waiters"] >= exclusive
    ), f"workers never blocked (wanted scope={scope}, exclusive={exclusive})"


class TestTableScope:
    def test_disjoint_tables_overlap(self):
        manager = LockManager()
        inside = threading.Barrier(2, timeout=5.0)

        def worker(table):
            with manager.tables({table}):
                inside.wait()  # both workers hold their lock at once

        workers = [_spawn(lambda t=t: worker(t)) for t in ("a", "b")]
        for worker_thread in workers:
            worker_thread.join(timeout=5.0)
        assert not any(w.is_alive() for w in workers)
        assert manager.stats()["table_acquisitions"] == 2
        assert manager.stats()["table_waits"] == 0

    def test_conflicting_tables_serialise(self):
        manager = LockManager()
        order = []
        held = threading.Event()
        release = threading.Event()

        def first():
            with manager.tables({"a", "b"}):
                held.set()
                release.wait(timeout=5.0)
                order.append("first")

        def second():
            held.wait(timeout=5.0)
            with manager.tables({"b", "c"}):
                order.append("second")

        threads = [_spawn(first), _spawn(second)]
        held.wait(timeout=5.0)
        _blocked(manager, scope=1)
        assert order == []
        release.set()
        for thread in threads:
            thread.join(timeout=5.0)
        assert order == ["first", "second"]
        assert manager.stats()["table_waits"] == 1

    def test_empty_table_set_is_refused(self):
        with pytest.raises(ValueError):
            LockManager().acquire_tables(())

    def test_locks_released_on_error(self):
        manager = LockManager()
        with pytest.raises(RuntimeError):
            with manager.tables({"a"}):
                raise RuntimeError("boom")
        # The scope is free again.
        with manager.tables({"a"}):
            pass
        assert manager.stats()["tables_held"] == 0


class TestExclusiveScope:
    def test_exclusive_waits_for_table_scopes_to_drain(self):
        manager = LockManager()
        table_held = threading.Event()
        release_table = threading.Event()
        order = []

        def table_worker():
            with manager.tables({"a"}):
                table_held.set()
                release_table.wait(timeout=5.0)
                order.append("table")

        def exclusive_worker():
            table_held.wait(timeout=5.0)
            with manager.exclusive():
                order.append("exclusive")

        threads = [_spawn(table_worker), _spawn(exclusive_worker)]
        table_held.wait(timeout=5.0)
        _blocked(manager, exclusive=1)
        assert order == []  # exclusive is blocked behind the table scope
        release_table.set()
        for thread in threads:
            thread.join(timeout=5.0)
        assert order == ["table", "exclusive"]
        assert manager.stats()["exclusive_waits"] == 1

    def test_waiting_exclusive_blocks_new_table_scopes(self):
        # No starvation: once an exclusive caller waits, fresh table
        # acquisitions queue behind it even for uncontended tables.
        manager = LockManager()
        first_held = threading.Event()
        release_first = threading.Event()
        order = []

        def first_table():
            with manager.tables({"a"}):
                first_held.set()
                release_first.wait(timeout=5.0)

        def exclusive_worker():
            with manager.exclusive():
                order.append("exclusive")

        def late_table():
            with manager.tables({"b"}):
                order.append("late-table")

        t1 = _spawn(first_table)
        first_held.wait(timeout=5.0)
        t2 = _spawn(exclusive_worker)
        _blocked(manager, exclusive=1)
        t3 = _spawn(late_table)
        _blocked(manager, scope=1, exclusive=1)
        assert order == []  # the late table scope queued behind exclusive
        release_first.set()
        for thread in (t1, t2, t3):
            thread.join(timeout=5.0)
        assert order[0] == "exclusive"

    def test_exclusive_is_reentrant_per_thread(self):
        manager = LockManager()
        with manager.exclusive():
            with manager.exclusive():
                assert manager.stats()["exclusive_held"] is True
            assert manager.stats()["exclusive_held"] is True
        assert manager.stats()["exclusive_held"] is False

    def test_release_by_non_owner_is_refused(self):
        manager = LockManager()
        errors = []
        manager.acquire_exclusive()

        def rogue():
            try:
                manager.release_exclusive()
            except RuntimeError as exc:
                errors.append(exc)

        thread = _spawn(rogue)
        thread.join(timeout=5.0)
        manager.release_exclusive()
        assert len(errors) == 1


class TestKeyScope:
    def test_disjoint_keys_on_one_table_overlap(self):
        manager = LockManager()
        inside = threading.Barrier(2, timeout=5.0)

        def worker(key):
            with manager.scope(LockScope(keys=frozenset({("t", key)}))):
                inside.wait()  # both workers hold a key on t at once

        workers = [_spawn(lambda k=k: worker(k)) for k in (1, 2)]
        for worker_thread in workers:
            worker_thread.join(timeout=5.0)
        assert not any(w.is_alive() for w in workers)
        stats = manager.stats()
        assert stats["key_acquisitions"] == 2
        assert stats["key_waits"] == 0
        assert stats["table_acquisitions"] == 0

    def test_same_key_serialises(self):
        manager = LockManager()
        order = []
        held = threading.Event()
        release = threading.Event()
        scope = LockScope(keys=frozenset({("t", 7)}))

        def first():
            with manager.scope(scope):
                held.set()
                release.wait(timeout=5.0)
                order.append("first")

        def second():
            held.wait(timeout=5.0)
            with manager.scope(scope):
                order.append("second")

        threads = [_spawn(first), _spawn(second)]
        held.wait(timeout=5.0)
        _blocked(manager, scope=1)
        assert order == []
        release.set()
        for thread in threads:
            thread.join(timeout=5.0)
        assert order == ["first", "second"]
        assert manager.stats()["key_waits"] == 1

    def test_held_key_blocks_whole_table_scope(self):
        # table↔key conflicts must cut both ways: a DDL taking the whole
        # table has to wait for in-flight row writes.
        manager = LockManager()
        order = []
        held = threading.Event()
        release = threading.Event()

        def key_holder():
            with manager.scope(LockScope(keys=frozenset({("t", 1)}))):
                held.set()
                release.wait(timeout=5.0)
                order.append("key")

        def table_taker():
            held.wait(timeout=5.0)
            with manager.tables({"t"}):
                order.append("table")

        threads = [_spawn(key_holder), _spawn(table_taker)]
        held.wait(timeout=5.0)
        _blocked(manager, scope=1)
        assert order == []  # the table scope is blocked behind the key
        release.set()
        for thread in threads:
            thread.join(timeout=5.0)
        assert order == ["key", "table"]
        assert manager.stats()["table_waits"] == 1

    def test_held_table_blocks_key_scope(self):
        manager = LockManager()
        order = []
        held = threading.Event()
        release = threading.Event()

        def table_holder():
            with manager.tables({"t"}):
                held.set()
                release.wait(timeout=5.0)
                order.append("table")

        def key_taker():
            held.wait(timeout=5.0)
            with manager.scope(LockScope(keys=frozenset({("t", 1)}))):
                order.append("key")

        threads = [_spawn(table_holder), _spawn(key_taker)]
        held.wait(timeout=5.0)
        _blocked(manager, scope=1)
        assert order == []
        release.set()
        for thread in threads:
            thread.join(timeout=5.0)
        assert order == ["table", "key"]
        assert manager.stats()["key_waits"] == 1

    def test_key_on_other_table_unaffected_by_table_scope(self):
        manager = LockManager()
        inside = threading.Barrier(2, timeout=5.0)

        def table_worker():
            with manager.tables({"a"}):
                inside.wait()

        def key_worker():
            with manager.scope(LockScope(keys=frozenset({("b", 1)}))):
                inside.wait()

        workers = [_spawn(table_worker), _spawn(key_worker)]
        for worker_thread in workers:
            worker_thread.join(timeout=5.0)
        assert not any(w.is_alive() for w in workers)
        assert manager.stats()["key_waits"] == 0
        assert manager.stats()["table_waits"] == 0

    def test_exclusive_waits_for_key_scopes_to_drain(self):
        manager = LockManager()
        key_held = threading.Event()
        release_key = threading.Event()
        order = []

        def key_worker():
            with manager.scope(LockScope(keys=frozenset({("t", 1)}))):
                key_held.set()
                release_key.wait(timeout=5.0)
                order.append("key")

        def exclusive_worker():
            key_held.wait(timeout=5.0)
            with manager.exclusive():
                order.append("exclusive")

        threads = [_spawn(key_worker), _spawn(exclusive_worker)]
        key_held.wait(timeout=5.0)
        _blocked(manager, exclusive=1)
        assert order == []
        release_key.set()
        for thread in threads:
            thread.join(timeout=5.0)
        assert order == ["key", "exclusive"]

    def test_mixed_scope_takes_tables_and_keys_atomically(self):
        manager = LockManager()
        scope = LockScope(tables=frozenset({"a"}), keys=frozenset({("b", 5)}))
        with manager.scope(scope):
            stats = manager.stats()
            assert stats["tables_held"] == 1
            assert stats["keys_held"] == 1
            assert stats["key_tables_held"] == 1
        stats = manager.stats()
        assert stats["tables_held"] == 0
        assert stats["keys_held"] == 0
        assert stats["key_tables_held"] == 0

    def test_empty_scope_is_refused(self):
        with pytest.raises(ValueError):
            LockManager().acquire_scope(LockScope())


class TestExclusiveSelfDeadlock:
    """Regression: a thread already holding the exclusive mode used to
    deadlock itself by acquiring any narrower scope — the wait loop
    blocked on ``_exclusive_owner`` clearing, i.e. on itself. Recovery
    paths re-entering the scheduler hit exactly this."""

    def _assert_completes(self, body):
        done = threading.Event()
        failures = []

        def runner():
            try:
                body()
            except Exception as exc:  # noqa: BLE001 - surfaced below
                failures.append(exc)
            finally:
                done.set()

        thread = _spawn(runner)
        thread.join(timeout=5.0)
        assert done.is_set(), "acquisition deadlocked against own exclusive hold"
        assert failures == []

    def test_table_scope_under_own_exclusive_is_a_noop(self):
        manager = LockManager()

        def body():
            with manager.exclusive():
                with manager.tables({"a", "b"}):
                    # Nothing extra is held: exclusive covers it all.
                    assert manager.stats()["tables_held"] == 0
                assert manager.stats()["exclusive_held"] is True

        self._assert_completes(body)
        stats = manager.stats()
        assert stats["covered_by_exclusive"] == 1
        assert stats["exclusive_held"] is False
        assert stats["tables_held"] == 0

    def test_key_scope_under_own_exclusive_is_a_noop(self):
        manager = LockManager()

        def body():
            with manager.exclusive():
                with manager.scope(LockScope(keys=frozenset({("t", 1)}))):
                    assert manager.stats()["keys_held"] == 0

        self._assert_completes(body)
        assert manager.stats()["covered_by_exclusive"] == 1

    def test_acquire_tables_under_own_exclusive_returns_empty_hold(self):
        manager = LockManager()

        def body():
            manager.acquire_exclusive()
            try:
                held = manager.acquire_tables({"a"})
                # The empty hold releases as a no-op — the later
                # release_tables must not underflow any counter.
                assert held == frozenset()
                manager.release_tables(held)
            finally:
                manager.release_exclusive()

        self._assert_completes(body)
        stats = manager.stats()
        assert stats["active_table_ops"] == 0
        assert stats["covered_by_exclusive"] == 1

    def test_other_threads_still_blocked_while_exclusive_held(self):
        # The excusal is strictly per-owner: another thread's table scope
        # still queues behind the exclusive hold.
        manager = LockManager()
        in_exclusive = threading.Event()
        release = threading.Event()
        order = []

        def owner():
            with manager.exclusive():
                with manager.tables({"a"}):  # self: no-op, no deadlock
                    in_exclusive.set()
                    release.wait(timeout=5.0)
                    order.append("owner")

        def outsider():
            in_exclusive.wait(timeout=5.0)
            with manager.tables({"a"}):
                order.append("outsider")

        threads = [_spawn(owner), _spawn(outsider)]
        in_exclusive.wait(timeout=5.0)
        _blocked(manager, scope=1)
        assert order == []  # outsider waits; owner proceeds
        release.set()
        for thread in threads:
            thread.join(timeout=5.0)
        assert order == ["owner", "outsider"]


class TestScope:
    def test_scope_with_tables_takes_table_locks(self):
        manager = LockManager()
        with manager.scope({"a"}):
            stats = manager.stats()
            assert stats["tables_held"] == 1
            assert stats["exclusive_held"] is False

    def test_scope_with_none_or_empty_takes_exclusive(self):
        manager = LockManager()
        for scope in (None, frozenset()):
            with manager.scope(scope):
                stats = manager.stats()
                assert stats["exclusive_held"] is True
                assert stats["tables_held"] == 0

    def test_conflict_aware_off_forces_exclusive(self):
        manager = LockManager(conflict_aware=False)
        with manager.scope({"a"}):
            stats = manager.stats()
            assert stats["exclusive_held"] is True
            assert stats["tables_held"] == 0
        assert manager.stats()["table_acquisitions"] == 0
