"""Unit tests for the Drivolution protocol messages (Tables 3 and 4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import messages
from repro.core.messages import (
    DrivolutionDiscover,
    DrivolutionErrorMessage,
    DrivolutionOffer,
    DrivolutionRequest,
    ProtocolError,
)
from repro.netsim.framing import decode_message, encode_message


class TestRequest:
    def test_wire_roundtrip(self):
        request = DrivolutionRequest(
            database="appdb",
            api_name="PYDB-API",
            client_platform="cpython-any",
            user="alice",
            password="secret",
            api_version=(3, 0),
            preferred_binary_format="PYSRC",
            preferred_driver_version=(1, 2, 3),
            client_id="client-1",
            client_ip="10.0.0.1",
            current_lease_id="lease-9",
            requested_extensions=["gis"],
        )
        restored = DrivolutionRequest.from_wire(request.to_wire())
        assert restored == request

    def test_wire_roundtrip_with_defaults(self):
        request = DrivolutionRequest(database="db", api_name="A", client_platform="p")
        restored = DrivolutionRequest.from_wire(request.to_wire())
        assert restored.api_version is None
        assert restored.current_lease_id is None
        assert restored.requested_extensions == []

    def test_discover_has_its_own_type_tag(self):
        discover = DrivolutionDiscover(database="db", api_name="A", client_platform="p")
        wire = discover.to_wire()
        assert wire["type"] == messages.DISCOVER
        # A discover parses back as a request payload.
        assert DrivolutionRequest.from_wire(wire).database == "db"

    def test_wrong_type_rejected(self):
        with pytest.raises(ProtocolError):
            DrivolutionRequest.from_wire({"type": "something_else"})

    def test_survives_the_network_codec(self):
        request = DrivolutionRequest(database="db", api_name="A", client_platform="p")
        assert DrivolutionRequest.from_wire(decode_message(encode_message(request.to_wire()))) == request


class TestOfferAndError:
    def test_offer_roundtrip(self):
        offer = DrivolutionOffer(
            lease_id="lease-1",
            lease_time_ms=3_600_000,
            driver_id=4,
            driver_location="driver:4",
            binary_format="PYSRC",
            renew_policy=1,
            expiration_policy=2,
            driver_version=(2, 1, 0),
            driver_options={"application_name": "reporting"},
            includes_file=False,
            server_id="drivo-1",
        )
        restored = DrivolutionOffer.from_wire(offer.to_wire())
        assert restored == offer

    def test_offer_wrong_type(self):
        with pytest.raises(ProtocolError):
            DrivolutionOffer.from_wire({"type": messages.ERROR})

    def test_error_roundtrip(self):
        error = DrivolutionErrorMessage(code="no_driver", detail="no driver for ODBC on hp-ux")
        assert DrivolutionErrorMessage.from_wire(error.to_wire()) == error

    def test_error_wrong_type(self):
        with pytest.raises(ProtocolError):
            DrivolutionErrorMessage.from_wire({"type": messages.OFFER})


class TestFileAndControlMessages:
    def test_file_request_and_data(self):
        file_request = messages.make_file_request("driver:7", "lease-1")
        assert file_request["type"] == messages.FILE_REQUEST
        assert file_request["driver_location"] == "driver:7"
        file_data = messages.make_file_data({"name": "d", "binary_code": b"x"})
        assert file_data["type"] == messages.FILE_DATA
        assert file_data["package"]["binary_code"] == b"x"

    def test_release_subscribe_update(self):
        assert messages.make_release("lease-1", "client-1")["type"] == messages.RELEASE
        subscribe = messages.make_subscribe("client-1", "PYDB-API", "appdb")
        assert subscribe["type"] == messages.SUBSCRIBE
        update = messages.make_update_available("PYDB-API", "appdb")
        assert update["type"] == messages.UPDATE_AVAILABLE

    def test_all_message_types_share_the_extension_prefix(self):
        for message_type in (
            messages.REQUEST,
            messages.OFFER,
            messages.ERROR,
            messages.DISCOVER,
            messages.FILE_REQUEST,
            messages.FILE_DATA,
            messages.RELEASE,
            messages.SUBSCRIBE,
            messages.UPDATE_AVAILABLE,
        ):
            assert message_type.startswith(messages.MESSAGE_PREFIX)


@settings(max_examples=50, deadline=None)
@given(
    database=st.text(min_size=1, max_size=16),
    api_name=st.text(min_size=1, max_size=16),
    platform=st.text(min_size=1, max_size=16),
    lease_ms=st.integers(min_value=1, max_value=10**9),
    driver_id=st.integers(min_value=1, max_value=10**6),
)
def test_property_request_offer_roundtrip(database, api_name, platform, lease_ms, driver_id):
    """Requests and offers survive wire serialisation for arbitrary field values."""
    request = DrivolutionRequest(database=database, api_name=api_name, client_platform=platform)
    assert DrivolutionRequest.from_wire(decode_message(encode_message(request.to_wire()))) == request
    offer = DrivolutionOffer(
        lease_id="l",
        lease_time_ms=lease_ms,
        driver_id=driver_id,
        driver_location=f"driver:{driver_id}",
        binary_format="PYSRC",
        renew_policy=1,
        expiration_policy=0,
    )
    assert DrivolutionOffer.from_wire(decode_message(encode_message(offer.to_wire()))) == offer
