"""Controller HA: replicated recovery log, epochs, election, failover.

Covers the protocol in docs/ha.md at two levels: unit tests drive a
:class:`ReplicatedLogStore` directly (majority math, idempotent apply,
epoch fencing, divergence detection), and integration tests run real
3-controller clusters through the driver (replication on the write
path, not_primary bounces, checkpoint/compaction mirroring, failover,
the crash-between-append-and-ack window).

The convergence property test draws a seed via tests/chaos.py — any
failure prints (and attaches to the report) a ``REPRO_CHAOS_SEED`` to
replay the exact interleaving.
"""

import threading

import pytest

import chaos
from repro.cluster.driver import ClusterDriverRuntime
from repro.cluster.recovery.logstore import LogEntry, MemoryLogStore
from repro.cluster.recovery.replication import (
    ROLE_FOLLOWER,
    ROLE_PRIMARY,
    ReplicatedLogStore,
    ReplicationError,
)
from repro.cluster.wire import (
    ClusterMessageType,
    ERROR_NOT_PRIMARY,
    make_error,
    make_replicate,
    make_replicate_ok,
)
from repro.dbapi import OperationalError, ProgrammingError
from repro.experiments.environments import build_cluster


@pytest.fixture
def ha_env():
    env = build_cluster(replicas=2, controllers=3, ha=True)
    yield env
    env.close()


def _connect(env, url=None, name="ha-driver"):
    return ClusterDriverRuntime(name=name).connect(
        url or env.client_url(), network=env.network
    )


def _primary_of(env, alive=None):
    # A crashed primary's store still says "primary" (it never heard the
    # election) — pass the surviving controllers once one has died.
    candidates = env.controllers if alive is None else alive
    primaries = [
        c for c in candidates if c.ha_store is not None and c.ha_store.is_primary
    ]
    assert len(primaries) == 1, f"expected one primary, got {primaries}"
    return primaries[0]


def _chain(controller, floor=0):
    """The per-table ordering material of the retained log suffix —
    what every surviving peer must agree on byte for byte."""
    return [
        (e.index, e.sql, tuple(sorted(e.table_seqs.items())))
        for e in controller.ha_store.entries_after(floor)
    ]


# -- store-level unit tests ----------------------------------------------------


def _entry(index, table="t", seq=None, sql=None):
    return LogEntry(
        index=index,
        sql=sql or f"INSERT INTO {table} (id) VALUES ({index})",
        write_tables=(table,),
        table_seqs={table: index if seq is None else seq},
    )


def _store(node="b", peers=("a:1", "c:1"), **kwargs):
    return ReplicatedLogStore(
        MemoryLogStore(),
        network=None,
        node_id=node,
        self_address=f"{node}:1",
        peer_addresses=list(peers),
        **kwargs,
    )


class TestReplicatedLogStoreUnit:
    def test_majority_math(self):
        assert _store(peers=()).required_acks == 1
        # The 2-node degenerate case needs BOTH nodes — either death
        # halts writes rather than risking split-brain divergence.
        assert _store(peers=("a:1",)).required_acks == 2
        assert _store(peers=("a:1", "c:1")).required_acks == 2
        assert _store(peers=("a:1", "c:1", "d:1", "e:1")).required_acks == 3

    def test_initial_primary_is_smallest_address(self):
        a = _store(node="a", peers=("b:1", "c:1"))
        assert a.role == ROLE_PRIMARY and a.primary_hint is None
        b = _store(node="b", peers=("a:1", "c:1"))
        assert b.role == ROLE_FOLLOWER and b.primary_hint == "a:1"

    def test_apply_replicate_is_idempotent(self):
        b = _store()
        frame = make_replicate(
            "a", "a:1", 1, [_entry(1).to_wire(), _entry(2).to_wire()], 0
        )
        reply, applied = b.apply_replicate(frame)
        assert reply["type"] == ClusterMessageType.REPLICATE_OK
        assert reply["last_index"] == 2
        assert [e.index for e in applied] == [1, 2]
        # Resending the same frame (primary retry) appends nothing.
        reply, applied = b.apply_replicate(frame)
        assert reply["last_index"] == 2 and applied == []

    def test_gap_reported_for_backfill(self):
        b = _store()
        frame = make_replicate("a", "a:1", 1, [_entry(5).to_wire()], 0)
        reply, applied = b.apply_replicate(frame)
        assert reply["gap"] is True and applied == []
        assert reply["last_index"] == 0  # tells the primary where to resend from

    def test_snapshot_install_catches_up_a_behind_follower(self):
        # The whole local log (here: empty) sits below the primary's
        # compaction floor; the frame carries the checkpoint snapshot and
        # the full post-floor suffix, so the follower adopts the floor
        # instead of gapping forever.
        b = _store()
        frame = make_replicate(
            "a", "a:1", 1, [_entry(6).to_wire(), _entry(7).to_wire()], 5,
            checkpoints=[],
        )
        reply, applied = b.apply_replicate(frame)
        assert reply["type"] == ClusterMessageType.REPLICATE_OK
        assert not reply.get("gap")
        assert reply["last_index"] == 7
        assert [e.index for e in applied] == [6, 7]
        assert b.truncated_through == 5
        assert b.snapshot_installs == 1

    def test_hole_past_floor_still_gaps_despite_checkpoints(self):
        # entries start past floor+1: a true hole the snapshot does not
        # cover — must stay a gap, never a silent splice.
        b = _store()
        frame = make_replicate(
            "a", "a:1", 1, [_entry(7).to_wire()], 5, checkpoints=[]
        )
        reply, applied = b.apply_replicate(frame)
        assert reply["gap"] is True and applied == []

    def test_behind_peer_is_never_counted_toward_quorum(self):
        # A peer that still reports gap=True after the backfill retry
        # does not hold the entries; acking it would let a "majority"
        # hold fewer copies than promised.
        a = _store(node="a", peers=("b:1",))
        a.append(_entry(1))
        link = a.peer_link("b:1")
        link.request = lambda frame: make_replicate_ok("b", 1, 0, gap=True)
        with pytest.raises(ReplicationError):
            a.replicate(force=True)
        assert a.quorum_failures == 1
        assert link.needs_reseed
        assert a.ha_stats()["peers"]["b:1"]["needs_reseed"] is True
        # Once the peer takes the entries, the reseed flag clears.
        link.request = lambda frame: make_replicate_ok("b", 1, 1)
        assert a.replicate(force=True) is True
        assert not link.needs_reseed

    def test_stale_epoch_refused_newer_epoch_adopted(self):
        b = _store()
        assert b.epoch == 1
        reply, applied = b.apply_replicate(
            make_replicate("c", "c:1", 3, [_entry(1).to_wire()], 0)
        )
        assert reply["type"] == ClusterMessageType.REPLICATE_OK
        assert b.epoch == 3 and b.epoch_adoptions == 1
        assert b.primary_hint == "c:1"
        # The deposed primary's epoch-1 appends now bounce with our epoch.
        reply, applied = b.apply_replicate(
            make_replicate("a", "a:1", 1, [_entry(2).to_wire()], 0)
        )
        assert reply["type"] == ClusterMessageType.ERROR
        assert reply["code"] == "stale_epoch" and reply["epoch"] == 3
        assert applied == []

    def test_same_epoch_append_refused_while_primary(self):
        a = _store(node="a", peers=("b:1", "c:1"))
        assert a.is_primary
        reply, _ = a.apply_replicate(
            make_replicate("b", "b:1", 1, [_entry(1).to_wire()], 0)
        )
        assert reply["code"] == "stale_epoch"  # same-epoch split-brain guard

    def test_promotion_fences_with_fresh_epoch(self):
        b = _store()
        assert b.promote() == 2
        assert b.is_primary and b.promotions == 1 and b.primary_hint is None
        # Promoting while already primary still bumps the epoch.
        assert b.promote() == 3
        assert b.promotions == 1

    def test_promotion_folds_observed_epochs(self):
        # A candidate whose own epoch lagged (missed announce frames)
        # must bump past the highest epoch its election probes reported,
        # never promote behind one already persisted in the cluster.
        b = _store()
        assert b.promote(floor_epoch=7) == 8
        assert b.promote(floor_epoch=3) == 9  # own epoch already higher

    def test_divergent_overlap_is_refused_not_spliced(self):
        b = _store()
        b.apply_replicate(make_replicate("a", "a:1", 1, [_entry(1).to_wire()], 0))
        rewritten = _entry(1, sql="INSERT INTO t (id) VALUES (999)")
        frame = make_replicate(
            "a", "a:1", 2, [rewritten.to_wire(), _entry(2).to_wire()], 0
        )
        reply, applied = b.apply_replicate(frame)
        assert reply["code"] == "diverged_log" and applied == []
        assert b.last_index == 1  # nothing was spliced over local history

    def test_compaction_floor_mirrors(self):
        b = _store()
        entries = [_entry(i).to_wire() for i in range(1, 5)]
        b.apply_replicate(make_replicate("a", "a:1", 1, entries, 0))
        reply, _ = b.apply_replicate(make_replicate("a", "a:1", 1, [], 3))
        assert reply["type"] == ClusterMessageType.REPLICATE_OK
        assert b.truncated_through == 3
        assert [e.index for e in b.entries_after(0)] == [4]

    def test_replicate_refused_on_follower(self):
        b = _store()
        with pytest.raises(ReplicationError):
            b.replicate(force=True)


# -- cluster-level replication -------------------------------------------------


class TestControllerHAReplication:
    def test_initial_roles_are_deterministic(self, ha_env):
        c1, c2, c3 = ha_env.controllers
        assert [c.ha_store.role for c in (c1, c2, c3)] == [
            ROLE_PRIMARY,
            ROLE_FOLLOWER,
            ROLE_FOLLOWER,
        ]
        for follower in (c2, c3):
            assert follower.ha_store.primary_hint == c1.address
        stats = c1.stats()["ha"]
        assert stats["cluster_size"] == 3 and stats["required_acks"] == 2
        assert stats["epoch"] == 1

    def test_writes_replicate_to_every_follower(self, ha_env):
        conn = _connect(ha_env)
        cursor = conn.cursor()
        cursor.execute("CREATE TABLE rep_t (id INTEGER PRIMARY KEY)")
        for i in range(5):
            cursor.execute(f"INSERT INTO rep_t (id) VALUES ({i})")
        conn.close()
        primary = _primary_of(ha_env)
        head = primary.ha_store.last_index
        assert head >= 6  # CREATE + 5 inserts
        for controller in ha_env.controllers:
            assert controller.ha_store.last_index == head
            assert _chain(controller) == _chain(primary)
        ha = primary.stats()["ha"]
        assert ha["rounds"] >= 1
        for peer_stats in ha["peers"].values():
            assert peer_stats["acked_index"] == head and peer_stats["reachable"]

    def test_follower_serves_reads_but_bounces_writes(self, ha_env):
        setup = _connect(ha_env)
        setup.cursor().execute("CREATE TABLE ro_t (id INTEGER PRIMARY KEY)")
        setup.close()
        follower = ha_env.controllers[1]
        conn = _connect(ha_env, url=f"sequoia://{follower.address}/vdb")
        cursor = conn.cursor()
        # Reads never bounce: a follower serves them from local backends.
        cursor.execute("SELECT COUNT(*) FROM ro_t")
        assert cursor.fetchone() == (0,)
        # Writes bounce with not_primary; with no other host to chase the
        # hint to, the driver's bounded retries exhaust and surface it.
        with pytest.raises(OperationalError):
            cursor.execute("INSERT INTO ro_t (id) VALUES (1)")
        assert follower.ha_store.role == ROLE_FOLLOWER  # live primary => no coup
        assert conn.not_primary_bounces >= 1
        conn.close()

    def test_bounce_hint_redirects_driver_to_primary(self, ha_env):
        c1, c2, _ = ha_env.controllers
        conn = _connect(ha_env, url=f"sequoia://{c2.address},{c1.address}/vdb")
        cursor = conn.cursor()
        cursor.execute("CREATE TABLE hint_t (id INTEGER PRIMARY KEY)")
        cursor.execute("INSERT INTO hint_t (id) VALUES (1)")
        # Wherever the round-robin connect landed, the not_primary hint
        # steered the writes to the real primary.
        assert conn.controller_id == c1.config.controller_id
        assert c1.ha_store.last_index >= 2
        conn.close()

    def test_bounce_without_address_keeps_learned_hint(self, ha_env):
        # Mid-election a follower may bounce without knowing the primary;
        # that must not erase routing state the driver already learned.
        conn = _connect(ha_env)
        primary_address = ha_env.controllers[0].address
        conn._primary_hint = primary_address
        with pytest.raises(OperationalError):
            conn._interpret_reply(make_error(ERROR_NOT_PRIMARY, "mid-election"))
        assert conn._primary_hint == primary_address
        conn.close()

    def test_group_commit_amortizes_replication_rounds(self, ha_env):
        conn = _connect(ha_env)
        cursor = conn.cursor()
        cursor.execute("CREATE TABLE gc_t (id INTEGER PRIMARY KEY)")
        primary = _primary_of(ha_env)
        before = primary.ha_store.ha_stats()
        conn.begin()
        for i in range(5):
            cursor.execute(f"INSERT INTO gc_t (id) VALUES ({i})")
        conn.commit()
        after = primary.ha_store.ha_stats()
        # One commit group = one network round; entries_shipped counts
        # per peer (5 entries x 2 followers).
        assert after["rounds"] - before["rounds"] == 1
        assert after["entries_shipped"] - before["entries_shipped"] == 10
        conn.close()

    def test_checkpoint_registry_replicates(self, ha_env):
        primary = _primary_of(ha_env)
        primary.recovery_log.checkpoint("cp-ha")
        conn = _connect(ha_env)
        conn.cursor().execute("CREATE TABLE cp_t (id INTEGER PRIMARY KEY)")
        conn.close()
        for follower in ha_env.controllers[1:]:
            assert "cp-ha" in follower.recovery_log.checkpoints

    def test_compaction_floor_propagates(self, ha_env):
        conn = _connect(ha_env)
        cursor = conn.cursor()
        cursor.execute("CREATE TABLE fl_t (id INTEGER PRIMARY KEY)")
        for i in range(4):
            cursor.execute(f"INSERT INTO fl_t (id) VALUES ({i})")
        primary = _primary_of(ha_env)
        assert primary.recovery_log.compact() > 0
        # The floor rides the next round (here: the next write's flush).
        cursor.execute("INSERT INTO fl_t (id) VALUES (99)")
        conn.close()
        floor = primary.ha_store.truncated_through
        assert floor >= 5
        for follower in ha_env.controllers[1:]:
            assert follower.ha_store.truncated_through == floor
            assert _chain(follower, floor) == _chain(primary, floor)

    def test_partitioned_link_below_quorum_fails_the_write(self, ha_env):
        conn = _connect(ha_env)
        cursor = conn.cursor()
        cursor.execute("CREATE TABLE pq_t (id INTEGER PRIMARY KEY)")
        primary = _primary_of(ha_env)
        peers = primary.ha_store.peer_addresses()
        with chaos.partitioned_replication_link(primary, peers[0]):
            # One of two peers cut: 2/3 acks (self + one) still a majority.
            cursor.execute("INSERT INTO pq_t (id) VALUES (1)")
            with chaos.partitioned_replication_link(primary, peers[1]):
                # Both cut: 1/3 acks, quorum fails, durability unknown.
                with pytest.raises(ProgrammingError):
                    cursor.execute("INSERT INTO pq_t (id) VALUES (2)")
        assert primary.ha_store.quorum_failures >= 1
        # Links healed: the next write replicates and catches peers up.
        cursor.execute("INSERT INTO pq_t (id) VALUES (3)")
        head = primary.ha_store.last_index
        for follower in ha_env.controllers[1:]:
            assert follower.ha_store.last_index == head
        conn.close()


# -- failover ------------------------------------------------------------------


class TestControllerHAFailover:
    def test_primary_crash_elects_follower_and_keeps_writes(self, ha_env):
        env = ha_env
        conn = _connect(env)
        cursor = conn.cursor()
        cursor.execute("CREATE TABLE fo_t (id INTEGER PRIMARY KEY)")
        for i in range(3):
            cursor.execute(f"INSERT INTO fo_t (id) VALUES ({i})")
        old_primary = _primary_of(env)
        chaos.crash_controller(env, old_primary)
        # The next write discovers the death, fails over, and the bounced
        # follower runs the election inline.
        cursor.execute("INSERT INTO fo_t (id) VALUES (100)")
        survivors = [c for c in env.controllers if c is not old_primary]
        new_primary = _primary_of(env, survivors)
        # Equal last_index at crash time => (last_index, node_id)
        # tie-break picks the largest node id.
        assert new_primary.config.controller_id == "controller3"
        assert new_primary.ha_store.epoch == 2
        cursor.execute("SELECT COUNT(*) FROM fo_t")
        assert cursor.fetchone() == (4,)  # zero committed writes lost
        head = new_primary.ha_store.last_index
        for controller in survivors:
            assert controller.ha_store.last_index == head
            assert _chain(controller) == _chain(new_primary)
        assert conn.failovers >= 1
        conn.close()

    def test_deposed_primary_is_fenced_by_stale_epoch(self, ha_env):
        env = ha_env
        c1, c2, c3 = env.controllers
        setup = _connect(env)
        setup.cursor().execute("CREATE TABLE st_t (id INTEGER PRIMARY KEY)")
        setup.close()
        # Promote c2 while its link to c1 is cut, so c1 never hears the
        # announcement and still believes it is the epoch-1 primary.
        with chaos.partitioned_replication_link(c2, c1.address):
            assert c2.promote() == 2
        assert c3.ha_store.epoch == 2 and c3.ha_store.role == ROLE_FOLLOWER
        assert c1.ha_store.is_primary and c1.ha_store.epoch == 1
        # c1 accepts the write locally, but its replication round meets
        # stale_epoch refusals at both up-to-date peers: no majority, the
        # write fails (durability unknown), and c1 deposes itself.
        conn = _connect(env, url=f"sequoia://{c1.address}/vdb")
        with pytest.raises(ProgrammingError):
            conn.cursor().execute("INSERT INTO st_t (id) VALUES (1)")
        assert c1.ha_store.role == ROLE_FOLLOWER
        assert c1.ha_store.epoch == 2
        assert c1.ha_store.depositions == 1
        conn.close()
        # Writes through the cluster URL land on c2 (bounces carry its
        # address as the hint) and replicate normally again.
        conn = _connect(env)
        cursor = conn.cursor()
        cursor.execute("INSERT INTO st_t (id) VALUES (2)")
        assert conn.controller_id == c2.config.controller_id
        conn.close()

    def test_crash_between_append_and_ack_loses_nothing(self, ha_env):
        env = ha_env
        conn = _connect(env)
        cursor = conn.cursor()
        cursor.execute("CREATE TABLE ck_t (id INTEGER PRIMARY KEY)")
        primary = _primary_of(env)
        head_before = primary.ha_store.last_index
        client_error = []

        def write():
            try:
                conn.cursor().execute("INSERT INTO ck_t (id) VALUES (1)")
            except Exception as exc:  # durability-unknown window: any of
                client_error.append(exc)  # lost-channel/duplicate-key is fine

        with chaos.crash_after_next_replication(env, primary) as fired:
            writer = threading.Thread(target=write)
            writer.start()
            assert chaos.wait_until(fired, timeout=10.0)
        writer.join(timeout=10.0)
        assert not writer.is_alive()
        # The entry reached a majority before the primary died: both
        # followers hold it even though the client may never have heard.
        for follower in [c for c in env.controllers if c is not primary]:
            assert follower.ha_store.last_index == head_before + 1
            sqls = [e.sql for e in follower.ha_store.entries_after(head_before)]
            assert any("ck_t" in sql for sql in sqls)
        # A fresh write promotes a survivor; the committed row is there
        # exactly once — not lost, not double-applied by the promotion.
        cursor.execute("INSERT INTO ck_t (id) VALUES (2)")
        cursor.execute("SELECT COUNT(*) FROM ck_t WHERE id = 1")
        assert cursor.fetchone() == (1,)
        survivors = [c for c in env.controllers if c is not primary]
        assert _primary_of(env, survivors) in survivors
        conn.close()


# -- seeded convergence property (replay with REPRO_CHAOS_SEED=<seed>) ---------


class TestHAConvergenceProperty:
    def test_random_interleaving_converges_on_survivors(self, ha_env):
        env = ha_env
        rng, seed = chaos.seeded_rng()
        conn = _connect(env)
        cursor = conn.cursor()
        tables = ["conv_a", "conv_b", "conv_c"]
        for table in tables:
            cursor.execute(f"CREATE TABLE {table} (id INTEGER PRIMARY KEY)")
        alive = list(env.controllers)
        next_id = [0]
        crash_at = rng.randrange(8, 25)

        def insert(cur, table):
            next_id[0] += 1
            cur.execute(f"INSERT INTO {table} (id) VALUES ({next_id[0]})")

        for op_index in range(32):
            if op_index == crash_at:
                victim = _primary_of(env, alive)
                alive.remove(victim)
                chaos.crash_controller(env, victim)
                continue
            roll = rng.random()
            try:
                if roll < 0.55:
                    insert(cursor, rng.choice(tables))
                elif roll < 0.80:
                    conn.begin()
                    for _ in range(rng.randrange(2, 5)):
                        insert(cursor, rng.choice(tables))
                    conn.commit()
                else:
                    primaries = [c for c in alive if c.ha_store.is_primary]
                    if primaries:
                        primaries[0].recovery_log.compact()
            except (OperationalError, ProgrammingError):
                # The op that discovers the crash can fail (mid-transaction
                # deaths close the connection; durability-unknown windows
                # surface); reconnect and keep the interleaving going.
                if conn.closed:
                    conn = _connect(env, name=f"ha-conv-{op_index}")
                    cursor = conn.cursor()
        # A final write forces one more replication round so floors and
        # heads settle, then every survivor must agree exactly.
        insert(cursor, tables[0])
        conn.close()
        survivors = [c for c in env.controllers if c in alive]
        assert len(survivors) == 2, f"seed {seed}: expected one crash"
        new_primary = _primary_of(env, survivors)
        floor = max(c.ha_store.truncated_through for c in survivors)
        heads = {c.ha_store.last_index for c in survivors}
        assert len(heads) == 1, f"seed {seed}: diverging heads {heads}"
        reference = _chain(new_primary, floor)
        for controller in survivors:
            assert _chain(controller, floor) == reference, (
                f"seed {seed}: {controller.config.controller_id} diverges"
            )
        # Per-table sequence chains are gapless and strictly ordered.
        per_table = {}
        for _, _, seqs in reference:
            for table, seq in seqs:
                per_table.setdefault(table, []).append(seq)
        for table, seqs in per_table.items():
            assert seqs == sorted(seqs), f"seed {seed}: {table} out of order"
            assert len(set(seqs)) == len(seqs), f"seed {seed}: {table} reuses seqs"
