"""Unit tests for renew/expiration policy machinery and constants."""

import pytest

from repro.core.constants import ExpirationPolicy, RenewPolicy, TransferMethod
from repro.core.policies import apply_expiration_policy


class FakeConnection:
    """Stand-in for a ManagedConnection with controllable transaction state."""

    def __init__(self, connection_id: str, in_transaction: bool = False):
        self.connection_id = connection_id
        self.in_transaction = in_transaction
        self.closed = False
        self._close_after_commit = False
        self.stale = False

    def force_close(self):
        self.closed = True

    def close_after_commit(self):
        self._close_after_commit = True

    def mark_stale(self):
        self.stale = True

    def commit(self):
        self.in_transaction = False
        if self._close_after_commit:
            self.closed = True


class TestConstants:
    def test_paper_integer_encodings(self):
        assert int(RenewPolicy.RENEW) == 0
        assert int(RenewPolicy.UPGRADE) == 1
        assert int(RenewPolicy.REVOKE) == 2
        assert int(ExpirationPolicy.AFTER_CLOSE) == 0
        assert int(ExpirationPolicy.AFTER_COMMIT) == 1
        assert int(ExpirationPolicy.IMMEDIATE) == 2
        assert int(TransferMethod.ANY) == -1

    def test_from_value_accepts_names_ints_and_enums(self):
        assert RenewPolicy.from_value("upgrade") == RenewPolicy.UPGRADE
        assert RenewPolicy.from_value(2) == RenewPolicy.REVOKE
        assert RenewPolicy.from_value(RenewPolicy.RENEW) == RenewPolicy.RENEW
        assert ExpirationPolicy.from_value("immediate") == ExpirationPolicy.IMMEDIATE
        assert ExpirationPolicy.from_value(0) == ExpirationPolicy.AFTER_CLOSE
        with pytest.raises(ValueError):
            ExpirationPolicy.from_value(9)


class TestApplyExpirationPolicy:
    def _connections(self):
        return [
            FakeConnection("idle-1"),
            FakeConnection("idle-2"),
            FakeConnection("tx-1", in_transaction=True),
        ]

    def test_immediate_closes_everything_and_counts_aborts(self):
        connections = self._connections()
        report = apply_expiration_policy(connections, ExpirationPolicy.IMMEDIATE)
        assert report.closed_immediately == 3
        assert report.aborted_transactions == 1
        assert all(connection.closed for connection in connections)
        assert report.still_open == 0

    def test_after_commit_defers_only_transactions(self):
        connections = self._connections()
        report = apply_expiration_policy(connections, ExpirationPolicy.AFTER_COMMIT)
        assert report.closed_immediately == 2
        assert report.deferred_to_commit == 1
        assert report.aborted_transactions == 0
        tx = connections[2]
        assert not tx.closed
        tx.commit()
        assert tx.closed

    def test_after_close_leaves_everything_to_the_application(self):
        connections = self._connections()
        report = apply_expiration_policy(connections, ExpirationPolicy.AFTER_CLOSE)
        assert report.closed_immediately == 0
        assert report.deferred_to_close == 3
        assert all(not connection.closed for connection in connections)
        assert all(connection.stale for connection in connections)

    def test_already_closed_connections_are_counted_separately(self):
        connection = FakeConnection("gone")
        connection.closed = True
        report = apply_expiration_policy([connection], ExpirationPolicy.IMMEDIATE)
        assert report.already_closed == 1
        assert report.closed_immediately == 0

    def test_empty_connection_set(self):
        report = apply_expiration_policy([], ExpirationPolicy.IMMEDIATE)
        assert report.total_connections == 0
