"""Unit tests for the scheduling subsystem: classifier, load-balancing
policies, query cache and write broadcaster."""

import pytest

from repro.cluster.backend import Backend, BackendState
from repro.cluster.broadcaster import WriteBroadcaster
from repro.cluster.classifier import (
    StatementKind,
    classify,
    is_transaction_control,
    is_write_statement,
)
from repro.cluster.loadbalancer import (
    LeastPendingPolicy,
    RoundRobinPolicy,
    WeightedPolicy,
    available_policies,
    create_policy,
)
from repro.cluster.querycache import QueryCache
from repro.cluster.recovery import RecoveryLog
from repro.cluster.scheduler import RequestScheduler, SchedulerError
from repro.errors import DriverError


class _FakeCursor:
    def __init__(self, connection):
        self._connection = connection

    def execute(self, sql, params=None):
        if self._connection.fail_with is not None:
            raise self._connection.fail_with
        self._connection.executed.append((sql, dict(params or {})))

    @property
    def description(self):
        return [("value", None, None, None, None, None, None)]

    def fetchall(self):
        return [(self._connection.read_value,)]

    rowcount = 1

    def close(self):
        pass


class _FakeConnection:
    """In-memory backend connection recording executed statements."""

    def __init__(self, read_value=1):
        self.executed = []
        self.read_value = read_value
        self.fail_with = None
        self.closed = False
        self.driver_info = {"name": "fake"}

    def cursor(self):
        return _FakeCursor(self)

    def close(self):
        self.closed = True


def _backend(name, read_value=1, weight=1.0):
    connection = _FakeConnection(read_value=read_value)
    backend = Backend(name, lambda: connection, weight=weight)
    backend.test_connection = connection
    return backend


class TestClassifier:
    def test_with_select_is_read_with_tables(self):
        statement = classify("WITH recent AS (SELECT id FROM orders) SELECT * FROM recent")
        assert statement.kind is StatementKind.READ
        assert statement.read_tables == frozenset({"orders"})
        assert not is_write_statement("WITH recent AS (SELECT id FROM orders) SELECT * FROM recent")

    def test_parenthesized_select_is_read(self):
        assert not is_write_statement("(SELECT 1)")
        assert classify("(SELECT a FROM t)").read_tables == frozenset({"t"})

    def test_explain_is_read(self):
        statement = classify("EXPLAIN SELECT * FROM big_table")
        assert statement.is_read
        assert statement.read_tables == frozenset({"big_table"})

    def test_explain_over_a_write_is_still_read_only(self):
        # EXPLAIN only describes the plan: it must never be broadcast,
        # logged for resync, or cached — whatever statement it wraps.
        for sql in (
            "EXPLAIN INSERT INTO t (id) VALUES (1)",
            "EXPLAIN UPDATE t SET a = 1",
            "EXPLAIN DELETE FROM t",
        ):
            statement = classify(sql)
            assert statement.is_read, sql
            assert statement.write_tables == frozenset(), sql
            assert statement.cacheable is False, sql
            assert not is_write_statement(sql)

    def test_write_statements_and_tables(self):
        insert = classify("INSERT INTO orders (id) VALUES ($id)")
        assert insert.is_write and insert.write_tables == frozenset({"orders"})
        update = classify("UPDATE users SET name = 'x' WHERE id = 1")
        assert update.write_tables == frozenset({"users"})
        delete = classify("DELETE FROM audit WHERE id IN (SELECT id FROM expired)")
        assert delete.write_tables == frozenset({"audit"})
        assert delete.read_tables == frozenset({"expired"})
        create = classify("CREATE TABLE IF NOT EXISTS evt (id INTEGER PRIMARY KEY)")
        assert create.write_tables == frozenset({"evt"})
        drop = classify("DROP TABLE IF EXISTS evt")
        assert drop.write_tables == frozenset({"evt"})

    def test_insert_select_reads_source_writes_target(self):
        statement = classify("INSERT INTO archive (id) SELECT id FROM live")
        assert statement.write_tables == frozenset({"archive"})
        assert statement.read_tables == frozenset({"live"})

    def test_transaction_control(self):
        for sql in ("BEGIN", "COMMIT", "ROLLBACK", "START TRANSACTION"):
            statement = classify(sql)
            assert statement.is_transaction_control
            assert is_transaction_control(sql)
            # Transaction control still broadcasts (not a read).
            assert is_write_statement(sql)

    def test_schema_qualified_tables(self):
        statement = classify("SELECT * FROM information_schema.drivers")
        assert statement.read_tables == frozenset({"information_schema.drivers"})

    def test_quoted_identifiers_are_canonicalised(self):
        # "Users", users and public.users must produce one key: placement
        # routing and cache invalidation key off these names.
        assert classify('SELECT * FROM "Users"').read_tables == frozenset({"users"})
        assert classify('UPDATE "Users" SET a = 1').write_tables == frozenset({"users"})
        assert classify('DELETE FROM "Order Lines"').write_tables == frozenset({"order lines"})

    def test_default_schema_qualifier_is_stripped(self):
        assert classify("SELECT * FROM public.users").read_tables == frozenset({"users"})
        assert classify('INSERT INTO Public."Users" (id) VALUES (1)').write_tables == frozenset(
            {"users"}
        )
        # Non-default schemas stay qualified — distinct namespaces.
        assert classify("SELECT * FROM sales.orders").read_tables == frozenset(
            {"sales.orders"}
        )

    def test_quoted_cte_name_not_reported_as_table(self):
        statement = classify('WITH "Recent" AS (SELECT id FROM orders) SELECT * FROM "Recent"')
        assert statement.read_tables == frozenset({"orders"})

    def test_quoted_identifier_matching_a_keyword_is_not_a_keyword(self):
        # "from"/"join" here are column names; treating them as the FROM/
        # JOIN keywords would extract phantom tables (and miss the real
        # one), so cache invalidation and placement routing would key off
        # the wrong names.
        statement = classify('SELECT "from" FROM t')
        assert statement.read_tables == frozenset({"t"})
        statement = classify('SELECT a, "join" FROM t')
        assert statement.read_tables == frozenset({"t"})
        # As a table name after a real FROM it is still just a name.
        statement = classify('SELECT * FROM "from"')
        assert statement.read_tables == frozenset({"from"})
        # A statement *led* by a quoted identifier has no command keyword.
        assert classify('"select" something').command == ""

    def test_nondeterministic_select_not_cacheable(self):
        assert classify("SELECT id FROM t WHERE ts < now()").cacheable is False
        assert classify("SELECT id FROM t").cacheable is True

    def test_bare_current_timestamp_not_cacheable(self):
        # The sqlengine evaluates these from the wall clock, parenthesized
        # or not; a cached result would freeze time forever.
        assert classify("SELECT CURRENT_TIMESTAMP").cacheable is False
        assert classify("SELECT CURRENT_DATE").cacheable is False
        assert classify("SELECT current_date() FROM t").cacheable is False

    def test_unparseable_statement_falls_back_to_write(self):
        statement = classify("VACUUM %% not-sql @!")
        assert not statement.is_read
        assert statement.write_tables == frozenset()

    def test_empty_statement_is_not_a_write(self):
        assert not is_write_statement("")
        assert not is_write_statement("   ")

    def test_cte_name_not_reported_as_table(self):
        statement = classify(
            "WITH a AS (SELECT x FROM t1), b AS (SELECT y FROM t2) SELECT * FROM a"
        )
        assert statement.read_tables == frozenset({"t1", "t2"})

    # -- key-predicate extraction (feeds the scheduler's key-level locks) --

    def test_update_literal_pk_equality_extracted(self):
        statement = classify("UPDATE users SET name = 'x' WHERE id = 7")
        assert statement.where_equalities == (("id", ("value", 7)),)
        assert statement.set_columns == frozenset({"name"})

    def test_update_assigning_the_filtered_column_still_reports_both(self):
        # The scheduler must see id in set_columns so it falls back to a
        # table lock: the row moves from key 7 to key 9.
        statement = classify("UPDATE users SET id = 9 WHERE id = 7")
        assert statement.where_equalities == (("id", ("value", 7)),)
        assert statement.set_columns == frozenset({"id"})

    def test_delete_named_param_equality_extracted(self):
        statement = classify("DELETE FROM t WHERE pk = $p AND ts < 5")
        assert statement.where_equalities == (("pk", ("param", "p")),)

    def test_positional_param_is_never_resolvable(self):
        # ? placeholders carry no name — the scheduler cannot look the
        # value up in the params dict, so this stays ("param", "?").
        statement = classify("UPDATE t SET v = 1 WHERE id = ?")
        assert statement.where_equalities == (("id", ("param", "?")),)

    def test_top_level_or_abandons_extraction(self):
        # a=1 OR b=2 bounds nothing: no conjunct narrows the row set.
        assert classify("DELETE FROM t WHERE a = 1 OR b = 2").where_equalities == ()

    def test_parenthesized_or_inside_a_conjunct_is_fine(self):
        # id = -5 AND (...) still bounds the rows to id = -5; negative
        # literals must come through as values, not opaque expressions.
        statement = classify("DELETE FROM t WHERE id = -5 AND (x = 1 OR y = 2)")
        assert statement.where_equalities == (("id", ("value", -5)),)

    def test_range_predicate_extracts_nothing(self):
        assert classify("UPDATE t SET v = 1 WHERE id > 3").where_equalities == ()

    def test_qualified_and_quoted_columns_are_canonicalised(self):
        statement = classify('UPDATE t SET v = 1 WHERE t."Id" = 3')
        assert statement.where_equalities == (("id", ("value", 3)),)

    def test_insert_shape_with_column_list(self):
        statement = classify("INSERT INTO t (id, v) VALUES (3, 'x')")
        assert statement.insert_columns == ("id", "v")
        assert statement.insert_values == (("value", 3), ("value", "x"))

    def test_insert_shape_without_column_list(self):
        # No column list: values are positional, matched to the PK by its
        # catalog ordinal.
        statement = classify("INSERT INTO t VALUES (3, 'x')")
        assert statement.insert_columns is None
        assert statement.insert_values == (("value", 3), ("value", "x"))

    def test_multi_row_insert_has_no_values(self):
        # Two rows ⇒ two keys; the scheduler must take the table lock.
        statement = classify("INSERT INTO t (id) VALUES (1), (2)")
        assert statement.insert_columns == ("id",)
        assert statement.insert_values is None

    def test_insert_select_has_no_values(self):
        assert classify("INSERT INTO a (id) SELECT id FROM b").insert_values is None

    def test_expression_values_are_opaque(self):
        statement = classify("INSERT INTO t (id, v) VALUES (1 + 2, 'x')")
        assert statement.insert_values is not None
        assert statement.insert_values[0] == ("opaque", None)

    def test_where_terminators_end_the_region(self):
        # The ORDER BY column equality-lookalike must not leak into the
        # extracted predicates.
        statement = classify("DELETE FROM t WHERE id = 4 ORDER BY ts LIMIT 1")
        assert statement.where_equalities == (("id", ("value", 4)),)


class TestLoadBalancerPolicies:
    def test_round_robin_uniform(self):
        backends = [_backend(f"b{i}") for i in range(3)]
        policy = RoundRobinPolicy()
        counts = {backend.name: 0 for backend in backends}
        for _ in range(30):
            counts[policy.choose(backends).name] += 1
        assert set(counts.values()) == {10}

    def test_round_robin_stable_under_membership_changes(self):
        backends = [_backend(f"b{i}") for i in range(3)]
        policy = RoundRobinPolicy()
        for _ in range(9):
            policy.choose(backends)
        # One backend leaves: the remaining two still split reads evenly.
        reduced = backends[:2]
        counts = {backend.name: 0 for backend in reduced}
        for _ in range(10):
            counts[policy.choose(reduced).name] += 1
        assert sorted(counts.values()) == [5, 5]
        # It comes back: the rotation covers all three again, evenly.
        counts = {backend.name: 0 for backend in backends}
        for _ in range(9):
            counts[policy.choose(backends).name] += 1
        assert set(counts.values()) == {3}

    def test_least_pending_prefers_idle_backend(self):
        busy, idle = _backend("busy"), _backend("idle")
        busy.begin_request()
        busy.begin_request()
        idle.begin_request()
        policy = LeastPendingPolicy()
        assert policy.choose([busy, idle]).name == "idle"
        idle.finish_request()
        busy.finish_request()
        busy.finish_request()
        # Ties break round-robin instead of always picking the first.
        chosen = {policy.choose([busy, idle]).name for _ in range(2)}
        assert chosen == {"busy", "idle"}

    def test_least_pending_ties_fair_under_placement_filtering(self):
        # Regression: one shared tie-break cursor aliased across
        # differently-sized tie sets. A strict interleave of a 2-way and
        # a 3-way tie stepped the cursor by 2 between 2-way calls, so the
        # 2-way ties always saw the same parity and one of those backends
        # never served a read despite hosting the table.
        backends = [_backend(f"b{i}") for i in range(3)]
        pair_hosts = {"b0", "b1"}  # the 2-way tie: a table hosted on b0+b1
        policy = LeastPendingPolicy()
        counts = {"b0": 0, "b1": 0}
        for _ in range(10):
            chosen = policy.choose(
                backends, candidate_filter=lambda b: b.name in pair_hosts
            )
            counts[chosen.name] += 1
            policy.choose(backends)  # interleaved 3-way tie (all idle)
        assert counts == {"b0": 5, "b1": 5}

    def test_least_pending_filtered_ties_rotate(self):
        backends = [_backend(f"b{i}") for i in range(4)]
        hosts = {"b1", "b3"}
        policy = LeastPendingPolicy()
        chosen = {
            policy.choose(backends, candidate_filter=lambda b: b.name in hosts).name
            for _ in range(2)
        }
        assert chosen == hosts

    def test_weighted_respects_weights(self):
        heavy = _backend("heavy", weight=3.0)
        light = _backend("light", weight=1.0)
        policy = WeightedPolicy()
        counts = {"heavy": 0, "light": 0}
        for _ in range(40):
            counts[policy.choose([heavy, light]).name] += 1
        assert counts["heavy"] == 30
        assert counts["light"] == 10

    def test_weighted_explicit_weights_override_backend_weight(self):
        a, b = _backend("a"), _backend("b")
        policy = WeightedPolicy(weights={"a": 1.0, "b": 0.0})
        assert all(policy.choose([a, b]).name == "a" for _ in range(5))

    def test_create_policy_factory(self):
        assert create_policy("round_robin").name == "round_robin"
        assert create_policy("least_pending").name == "least_pending"
        assert create_policy("weighted", weights={"x": 2}).name == "weighted"
        assert available_policies() == ["least_pending", "round_robin", "weighted"]
        with pytest.raises(DriverError):
            create_policy("no_such_policy")


class TestQueryCache:
    RESULT = (["n"], [(1,)], 1)

    def test_hit_and_miss(self):
        cache = QueryCache()
        assert cache.get("SELECT 1", {}) is None
        cache.put("SELECT 1", {}, {"t"}, self.RESULT)
        assert cache.get("SELECT 1", {}) == (["n"], [(1,)], 1)
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_params_are_part_of_the_key(self):
        cache = QueryCache()
        cache.put("SELECT * FROM t WHERE id = $id", {"id": 1}, {"t"}, self.RESULT)
        assert cache.get("SELECT * FROM t WHERE id = $id", {"id": 2}) is None
        assert cache.get("SELECT * FROM t WHERE id = $id", {"id": 1}) is not None

    def test_invalidation_is_table_accurate(self):
        cache = QueryCache()
        cache.put("SELECT * FROM a", {}, {"a"}, self.RESULT)
        cache.put("SELECT * FROM b", {}, {"b"}, self.RESULT)
        evicted = cache.invalidate_tables({"a"})
        assert evicted == 1
        # The write to table a must not evict the SELECT reading only b.
        assert cache.get("SELECT * FROM a", {}) is None
        assert cache.get("SELECT * FROM b", {}) is not None

    def test_unknown_write_tables_flush_everything(self):
        cache = QueryCache()
        cache.put("SELECT * FROM a", {}, {"a"}, self.RESULT)
        cache.put("SELECT * FROM b", {}, {"b"}, self.RESULT)
        assert cache.invalidate_tables(set()) == 2
        assert len(cache) == 0

    def test_lru_eviction(self):
        cache = QueryCache(max_entries=2)
        cache.put("q1", {}, {"t"}, self.RESULT)
        cache.put("q2", {}, {"t"}, self.RESULT)
        cache.get("q1", {})  # refresh q1 so q2 is the eviction victim
        cache.put("q3", {}, {"t"}, self.RESULT)
        assert cache.get("q1", {}) is not None
        assert cache.get("q2", {}) is None
        assert cache.stats()["evictions"] == 1

    def test_stale_put_rejected_after_invalidation(self):
        cache = QueryCache()
        stamp = cache.stamp()
        cache.invalidate_tables({"t"})
        # A read that started before the write may not store its result.
        assert cache.put("SELECT * FROM t", {}, {"t"}, self.RESULT, stamp=stamp) is False
        assert cache.get("SELECT * FROM t", {}) is None
        # A read started after the invalidation may.
        assert cache.put("SELECT * FROM t", {}, {"t"}, self.RESULT, stamp=cache.stamp())

    def test_unhashable_params_degrade_to_normal_caching(self):
        cache = QueryCache()
        # List-valued params arrive straight off the wire; they must not
        # raise, and equal values must still hit.
        assert cache.get("SELECT * FROM t WHERE id IN $ids", {"ids": [1, 2]}) is None
        cache.put("SELECT * FROM t WHERE id IN $ids", {"ids": [1, 2]}, {"t"}, self.RESULT)
        assert cache.get("SELECT * FROM t WHERE id IN $ids", {"ids": [1, 2]}) is not None
        assert cache.get("SELECT * FROM t WHERE id IN $ids", {"ids": [1, 3]}) is None

    def test_stale_put_rejected_after_full_flush(self):
        cache = QueryCache()
        stamp = cache.stamp()
        cache.invalidate_tables(set())
        assert cache.put("SELECT 1", {}, set(), self.RESULT, stamp=stamp) is False

    def test_mutating_a_returned_row_does_not_poison_the_cache(self):
        # Regression: get() returned a fresh outer list of the *same* row
        # objects the cache held, so a caller mutating a row corrupted
        # every later hit. Rows come off the engine as lists here.
        cache = QueryCache()
        cache.put("SELECT * FROM t", {}, {"t"}, (["id", "v"], [[1, "a"]], 1))
        columns, rows, rowcount = cache.get("SELECT * FROM t", {})
        # Frozen rows cannot be mutated in place at all...
        assert rows == [(1, "a")]
        with pytest.raises((TypeError, AttributeError)):
            rows[0][1] = "MUTATED"
        # ...and growing the returned outer list touches nothing cached.
        rows.append(("junk",))
        columns.append("junk")
        cached = cache.get("SELECT * FROM t", {})
        assert cached == (["id", "v"], [(1, "a")], 1)

    def test_mutating_the_callers_rows_after_put_does_not_corrupt(self):
        # put() must snapshot too: the caller still holds the row objects
        # it handed over and may reuse or mutate them afterwards.
        cache = QueryCache()
        row = [1, "a"]
        cache.put("SELECT * FROM t", {}, {"t"}, (["id", "v"], [row], 1))
        row[1] = "MUTATED"
        assert cache.get("SELECT * FROM t", {}) == (["id", "v"], [(1, "a")], 1)


class TestWriteBroadcaster:
    def test_parallel_broadcast_aggregates_failures(self):
        good, bad = _backend("good"), _backend("bad")
        bad.test_connection.fail_with = DriverError("replica down")
        broadcaster = WriteBroadcaster(parallel=True)
        try:
            outcome = broadcaster.broadcast([good, bad], "INSERT INTO t VALUES (1)")
        finally:
            broadcaster.close()
        assert outcome.result is not None
        assert [o.backend.name for o in outcome.succeeded] == ["good"]
        assert [o.backend.name for o in outcome.failed] == ["bad"]
        assert "replica down" in outcome.failure_messages()[0]

    def test_broadcast_after_close_runs_sequentially_without_leaking(self):
        backends = [_backend("a"), _backend("b")]
        broadcaster = WriteBroadcaster(parallel=True)
        broadcaster.close()
        # An in-flight write after shutdown still completes, but must not
        # resurrect the thread pool.
        outcome = broadcaster.broadcast(backends, "INSERT INTO t VALUES (1)")
        assert len(outcome.succeeded) == 2
        assert broadcaster._executor is None
        broadcaster.reopen()
        outcome = broadcaster.broadcast(backends, "INSERT INTO t VALUES (2)")
        assert len(outcome.succeeded) == 2
        assert broadcaster._executor is not None
        broadcaster.close()

    def test_unexpected_exception_is_an_outcome_not_a_crash(self):
        # Regression: _run_one only caught DriverError, so a RuntimeError
        # (driver bug, broken connection object) re-raised out of
        # future.result() in broadcast() and dropped every sibling
        # outcome — the scheduler never learned which backends had
        # already applied the write.
        good, buggy = _backend("good"), _backend("buggy")
        buggy.test_connection.fail_with = RuntimeError("driver bug mid-execute")
        broadcaster = WriteBroadcaster(parallel=True)
        try:
            outcome = broadcaster.broadcast([good, buggy], "INSERT INTO t VALUES (1)")
        finally:
            broadcaster.close()
        # The sibling's success survives, and the failure is attributed.
        assert [o.backend.name for o in outcome.succeeded] == ["good"]
        assert [o.backend.name for o in outcome.failed] == ["buggy"]
        assert isinstance(outcome.failed[0].error, RuntimeError)
        assert outcome.result is not None
        # The pending counter unwound despite the exception.
        assert buggy.pending == 0

    def test_scheduler_fails_backend_raising_unexpected_exception(self):
        # End to end: a non-DriverError is a replica fault (it is not one
        # of the statement faults), so the backend leaves the rotation
        # instead of silently diverging.
        good, buggy = _backend("good"), _backend("buggy")
        buggy.test_connection.fail_with = RuntimeError("driver bug mid-execute")
        log = RecoveryLog()
        scheduler = RequestScheduler([good, buggy], log)
        columns, rows, rowcount = scheduler.execute("INSERT INTO t (id) VALUES (1)")
        assert rowcount == 1
        assert good.enabled
        assert buggy.state is BackendState.FAILED
        assert log.last_index == 1
        scheduler.close()

    def test_first_backend_result_is_primary(self):
        first, second = _backend("first", read_value=10), _backend("second", read_value=20)
        broadcaster = WriteBroadcaster(parallel=True)
        try:
            outcome = broadcaster.broadcast([first, second], "SELECT value FROM t")
        finally:
            broadcaster.close()
        assert outcome.result == (["value"], [(10,)], 1)


class TestSchedulerRouting:
    def _scheduler(self, backends, **kwargs):
        return RequestScheduler(backends, RecoveryLog(), **kwargs)

    def test_read_only_statements_not_logged_for_resync(self):
        backends = [_backend("b1"), _backend("b2")]
        log = RecoveryLog()
        scheduler = RequestScheduler(backends, log)
        scheduler.execute("WITH c AS (SELECT value FROM t) SELECT * FROM c")
        scheduler.execute("EXPLAIN SELECT * FROM t")
        scheduler.execute("(SELECT 1)")
        assert log.last_index == 0
        # Reads went to exactly one backend each.
        total = sum(backend.statements_executed for backend in backends)
        assert total == 3
        scheduler.execute("INSERT INTO t (id) VALUES (1)")
        assert log.last_index == 1
        scheduler.close()

    def test_transaction_control_broadcast_but_not_logged(self):
        backends = [_backend("b1"), _backend("b2")]
        log = RecoveryLog()
        scheduler = RequestScheduler(backends, log)
        scheduler.execute("BEGIN")
        scheduler.execute("COMMIT")
        assert log.last_index == 0
        assert all(backend.statements_executed == 2 for backend in backends)
        scheduler.close()

    def test_failed_backends_excluded_from_reads(self):
        healthy, failed = _backend("healthy"), _backend("failed")
        failed.mark_failed()
        scheduler = self._scheduler([healthy, failed])
        for _ in range(4):
            scheduler.execute("SELECT value FROM t")
        assert healthy.statements_executed == 4
        assert failed.statements_executed == 0
        assert failed.state is BackendState.FAILED
        scheduler.close()

    def test_no_enabled_backends_raises(self):
        backend = _backend("b1")
        backend.disable(0)
        scheduler = self._scheduler([backend])
        with pytest.raises(SchedulerError):
            scheduler.execute("SELECT 1")
        scheduler.close()

    def test_cached_read_skips_backends_until_invalidated(self):
        backend = _backend("b1")
        cache = QueryCache()
        scheduler = self._scheduler([backend], query_cache=cache)
        scheduler.execute("SELECT value FROM t")
        scheduler.execute("SELECT value FROM t")
        scheduler.execute("SELECT value FROM t")
        assert backend.statements_executed == 1
        assert cache.stats()["hits"] == 2
        # A write to an unrelated table keeps the entry (only the write ran).
        scheduler.execute("INSERT INTO other (id) VALUES (1)")
        scheduler.execute("SELECT value FROM t")
        assert backend.statements_executed == 2
        # ...a write to t evicts it, so the next read goes back to a backend.
        scheduler.execute("INSERT INTO t (id) VALUES (2)")
        scheduler.execute("SELECT value FROM t")
        assert backend.statements_executed == 4
        scheduler.close()

    def test_rollback_evicts_reads_cached_during_the_transaction(self):
        backend = _backend("b1")
        cache = QueryCache()
        scheduler = self._scheduler([backend], query_cache=cache)
        scheduler.execute("BEGIN")
        scheduler.execute("INSERT INTO t (id) VALUES (99)", in_transaction=True)
        # A concurrent autocommit read observes (and caches) the
        # uncommitted state — its stamp is fresher than the write's
        # invalidations, so the entry is accepted.
        scheduler.execute("SELECT COUNT(*) FROM t")
        assert cache.get("SELECT COUNT(*) FROM t", {}) is not None
        # ROLLBACK reverts the backends; the dirty entry must go too.
        scheduler.execute("ROLLBACK", in_transaction=True)
        assert cache.get("SELECT COUNT(*) FROM t", {}) is None
        # Unrelated cached reads survive the flush.
        scheduler.execute("SELECT COUNT(*) FROM other")
        scheduler.execute("BEGIN")
        scheduler.execute("INSERT INTO t (id) VALUES (100)", in_transaction=True)
        scheduler.execute("COMMIT", in_transaction=True)
        assert cache.get("SELECT COUNT(*) FROM other", {}) is not None
        scheduler.close()

    def test_unrelated_sessions_commit_does_not_erase_dirty_tracking(self):
        backend = _backend("b1")
        cache = QueryCache()
        scheduler = self._scheduler([backend], query_cache=cache)
        # Session A opens a transaction and writes t.
        scheduler.execute("BEGIN")
        scheduler.execute("INSERT INTO t (id) VALUES (1)", in_transaction=True)
        # Session B runs a complete unrelated transaction meanwhile.
        scheduler.execute("BEGIN")
        scheduler.execute("INSERT INTO other (id) VALUES (1)", in_transaction=True)
        scheduler.execute("COMMIT", in_transaction=True)
        # An autocommit read caches t's (still uncommitted) state.
        scheduler.execute("SELECT COUNT(*) FROM t")
        assert cache.get("SELECT COUNT(*) FROM t", {}) is not None
        # A's ROLLBACK must still evict it: B's COMMIT may not have
        # cleared the dirty tracking while A's transaction was open.
        scheduler.execute("ROLLBACK", in_transaction=True)
        assert cache.get("SELECT COUNT(*) FROM t", {}) is None
        scheduler.close()

    def test_in_transaction_reads_bypass_cache_and_broadcast(self):
        backends = [_backend("b1"), _backend("b2")]
        cache = QueryCache()
        scheduler = self._scheduler(backends, query_cache=cache)
        scheduler.execute("SELECT value FROM t", in_transaction=True)
        assert all(backend.statements_executed == 1 for backend in backends)
        assert len(cache) == 0
        scheduler.close()

    def test_write_failure_on_one_backend_marks_it_failed(self):
        good, bad = _backend("good"), _backend("bad")
        bad.test_connection.fail_with = DriverError("disk on fire")
        log = RecoveryLog()
        scheduler = RequestScheduler([good, bad], log)
        columns, rows, rowcount = scheduler.execute("INSERT INTO t (id) VALUES (1)")
        assert rowcount == 1
        assert bad.state is BackendState.FAILED
        assert good.checkpoint_index == log.last_index == 1
        scheduler.close()

    def test_sql_error_does_not_mark_backends_failed(self):
        from repro.dbapi.exceptions import ProgrammingError

        backends = [_backend("b1"), _backend("b2")]
        for backend in backends:
            backend.test_connection.fail_with = ProgrammingError("duplicate primary key")
        scheduler = self._scheduler(backends)
        # The statement is at fault, not the replicas: the client gets the
        # error but the cluster stays fully enabled.
        with pytest.raises(SchedulerError):
            scheduler.execute("INSERT INTO t (id) VALUES (1)")
        assert all(backend.enabled for backend in backends)
        # The connection survives too: dropping it would roll back any
        # open server-side transaction out from under other sessions.
        assert all(not backend.test_connection.closed for backend in backends)
        for backend in backends:
            backend.test_connection.fail_with = None
        columns, rows, rowcount = scheduler.execute("INSERT INTO t (id) VALUES (2)")
        assert rowcount == 1
        scheduler.close()

    def test_rolled_back_writes_never_enter_the_recovery_log(self):
        backends = [_backend("b1"), _backend("b2")]
        log = RecoveryLog()
        scheduler = RequestScheduler(backends, log)
        scheduler.execute("BEGIN")
        scheduler.execute("INSERT INTO t (id) VALUES (1)", in_transaction=True)
        # Not logged yet: the transaction may still roll back.
        assert log.last_index == 0
        scheduler.execute("ROLLBACK", in_transaction=True)
        assert log.last_index == 0
        # A committed transaction's writes land in the log in order.
        scheduler.execute("BEGIN")
        scheduler.execute("INSERT INTO t (id) VALUES (2)", in_transaction=True)
        scheduler.execute("INSERT INTO t (id) VALUES (3)", in_transaction=True)
        scheduler.execute("COMMIT", in_transaction=True)
        assert [entry.sql for entry in log.entries_after(0)] == [
            "INSERT INTO t (id) VALUES (2)",
            "INSERT INTO t (id) VALUES (3)",
        ]
        assert all(backend.checkpoint_index == 2 for backend in backends)
        scheduler.close()

    def test_autocommit_write_during_open_transaction_is_deferred_too(self):
        # The engine runs one transaction cluster-wide on the shared
        # backend connections, so a write from *another* session executes
        # inside the open transaction and rolls back with it — it must not
        # reach the recovery log unless that transaction commits.
        backends = [_backend("b1")]
        log = RecoveryLog()
        scheduler = RequestScheduler(backends, log)
        scheduler.execute("BEGIN")
        scheduler.execute("INSERT INTO t (id) VALUES (1)", in_transaction=True)
        scheduler.execute("INSERT INTO t (id) VALUES (99)")  # other session
        assert log.last_index == 0
        scheduler.execute("ROLLBACK", in_transaction=True)
        assert log.last_index == 0
        scheduler.execute("BEGIN")
        scheduler.execute("INSERT INTO t (id) VALUES (2)", in_transaction=True)
        scheduler.execute("INSERT INTO t (id) VALUES (98)")  # other session
        scheduler.execute("COMMIT", in_transaction=True)
        assert log.last_index == 2
        scheduler.close()

    def test_rejected_commit_variant_keeps_transaction_buffer(self):
        from repro.dbapi.exceptions import ProgrammingError

        backend = _backend("b1")
        log = RecoveryLog()
        scheduler = RequestScheduler([backend], log)
        scheduler.execute("BEGIN")
        scheduler.execute("INSERT INTO t (id) VALUES (1)", in_transaction=True)
        # The engine rejects the COMMIT variant as bad SQL: the transaction
        # is still open server-side, so the buffer and accounting survive.
        backend.test_connection.fail_with = ProgrammingError("unexpected trailing token")
        with pytest.raises(SchedulerError):
            scheduler.execute("COMMIT WORK", in_transaction=True)
        backend.test_connection.fail_with = None
        assert scheduler._open_transactions == 1
        assert log.last_index == 0
        scheduler.execute("COMMIT", in_transaction=True)
        assert log.last_index == 1
        assert scheduler._open_transactions == 0
        scheduler.close()

    def test_stale_in_transaction_flag_does_not_trap_writes_in_buffer(self):
        # Another session's rogue COMMIT closed the transaction; the
        # owner's in_transaction flag is now stale. Its next write is
        # autocommitted by the engine, so it must reach the log
        # immediately — the scheduler's own accounting wins over the flag.
        backend = _backend("b1")
        log = RecoveryLog()
        scheduler = RequestScheduler([backend], log)
        scheduler.execute("BEGIN")
        scheduler.execute("COMMIT")  # rogue session, no in_transaction flag
        assert scheduler._open_transactions == 0
        scheduler.execute("INSERT INTO t (id) VALUES (1)", in_transaction=True)
        assert log.last_index == 1
        scheduler.close()

    def test_flagless_begin_commit_does_not_pin_accounting(self):
        # Callers driving the scheduler directly may not thread the
        # in_transaction flag; the scheduler's own accounting must still
        # close the transaction on COMMIT.
        backend = _backend("b1")
        log = RecoveryLog()
        scheduler = RequestScheduler([backend], log)
        scheduler.execute("BEGIN")
        scheduler.execute("COMMIT")
        assert scheduler._open_transactions == 0
        scheduler.execute("INSERT INTO t (id) VALUES (1)")
        assert log.last_index == 1
        scheduler.close()

    def test_begin_with_stale_flag_still_counted(self):
        # A rogue COMMIT closed session A's transaction; A's next BEGIN
        # arrives with a stale in_transaction=True flag but the engine
        # accepts it — it must be counted, or A's subsequent writes would
        # be logged immediately and survive A's ROLLBACK in the log.
        backend = _backend("b1")
        log = RecoveryLog()
        scheduler = RequestScheduler([backend], log)
        scheduler.execute("BEGIN")
        scheduler.execute("COMMIT")  # rogue session
        scheduler.execute("BEGIN", in_transaction=True)  # stale flag
        assert scheduler._open_transactions == 1
        scheduler.execute("INSERT INTO t (id) VALUES (1)", in_transaction=True)
        assert log.last_index == 0  # buffered, not logged
        scheduler.execute("ROLLBACK", in_transaction=True)
        assert log.last_index == 0
        assert scheduler._open_transactions == 0
        scheduler.close()

    def test_mixed_fault_commit_keeps_buffer_until_a_replica_commits(self):
        from repro.dbapi.exceptions import OperationalError, ProgrammingError

        alive, dying = _backend("alive"), _backend("dying")
        log = RecoveryLog()
        scheduler = RequestScheduler([alive, dying], log)
        scheduler.execute("BEGIN")
        scheduler.execute("INSERT INTO t (id) VALUES (1)", in_transaction=True)
        # COMMIT is rejected as bad SQL on the live replica and dies with a
        # connection fault on the other: the transaction is still open on
        # the live one, so the buffer and accounting must survive.
        alive.test_connection.fail_with = ProgrammingError("rejected")
        dying.test_connection.fail_with = OperationalError("connection lost")
        with pytest.raises(SchedulerError):
            scheduler.execute("COMMIT", in_transaction=True)
        assert alive.enabled
        assert dying.state is BackendState.FAILED
        assert scheduler._open_transactions == 1
        assert log.last_index == 0
        # The retried COMMIT succeeds on the live replica: the buffered
        # write finally reaches the log, ready for the failed replica's
        # resync.
        alive.test_connection.fail_with = None
        scheduler.execute("COMMIT", in_transaction=True)
        assert scheduler._open_transactions == 0
        assert log.last_index == 1
        scheduler.close()

    def test_backend_failing_mid_transaction_resyncs_committed_writes(self):
        good, flaky = _backend("good"), _backend("flaky")
        log = RecoveryLog()
        scheduler = RequestScheduler([good, flaky], log)
        scheduler.execute("BEGIN")
        flaky.test_connection.fail_with = DriverError("connection lost")
        scheduler.execute("INSERT INTO t (id) VALUES (1)", in_transaction=True)
        assert flaky.state is BackendState.FAILED
        flaky.test_connection.fail_with = None
        scheduler.execute("COMMIT", in_transaction=True)
        # The failed replica's checkpoint predates the transaction, so a
        # resync replays exactly the committed write it missed.
        entries = log.entries_after(flaky.checkpoint_index)
        assert [entry.sql for entry in entries] == ["INSERT INTO t (id) VALUES (1)"]
        assert flaky.resync(entries) == 1
        assert flaky.enabled
        scheduler.close()

    def test_partial_statement_fault_marks_diverged_backend_failed(self):
        from repro.dbapi.exceptions import IntegrityError

        good, diverged = _backend("good"), _backend("diverged")
        diverged.test_connection.fail_with = IntegrityError("duplicate primary key")
        scheduler = self._scheduler([good, diverged])
        # One replica accepted the write, the other refused it: the
        # refusing replica is now missing a committed row and must leave
        # the read rotation (statement faults only exonerate the backend
        # when every replica agrees).
        columns, rows, rowcount = scheduler.execute("INSERT INTO t (id) VALUES (1)")
        assert rowcount == 1
        assert good.enabled
        assert diverged.state is BackendState.FAILED
        scheduler.close()

    def test_write_failing_everywhere_raises(self):
        bad = _backend("bad")
        bad.test_connection.fail_with = DriverError("nope")
        scheduler = self._scheduler([bad])
        with pytest.raises(SchedulerError):
            scheduler.execute("INSERT INTO t (id) VALUES (1)")
        scheduler.close()

    def test_write_rejected_everywhere_not_logged_for_resync(self):
        from repro.dbapi.exceptions import IntegrityError

        backends = [_backend("b1"), _backend("b2")]
        log = RecoveryLog()
        scheduler = RequestScheduler(backends, log)
        scheduler.execute("INSERT INTO t (id) VALUES (1)")
        for backend in backends:
            backend.test_connection.fail_with = IntegrityError("duplicate primary key")
        # Every replica rejected it: the statement must not enter the
        # recovery log, or resync would replay it (failing again) and
        # wedge the recovering backend forever.
        with pytest.raises(SchedulerError):
            scheduler.execute("INSERT INTO t (id) VALUES (1)")
        assert log.last_index == 1
        for backend in backends:
            backend.test_connection.fail_with = None
        backends[0].disable(log.last_index)
        scheduler.execute("INSERT INTO t (id) VALUES (2)")
        replayed = backends[0].resync(log.entries_after(backends[0].checkpoint_index))
        assert replayed == 1
        assert backends[0].enabled
        scheduler.close()

    def test_stats_shape(self):
        backend = _backend("b1")
        scheduler = self._scheduler([backend], query_cache=QueryCache())
        scheduler.execute("SELECT value FROM t")
        stats = scheduler.stats()
        assert stats["read_policy"] == "round_robin"
        assert stats["parallel_writes"] is True
        assert stats["query_cache"]["misses"] == 1
        assert stats["backends"][0]["name"] == "b1"
        assert stats["backends"][0]["pending"] == 0
        scheduler.close()


class TestKeyLevelLocking:
    """Lock-scope selection: which statements get a (table, key) scope
    and which fall back up the ladder to a table lock. Uses the
    ``primary_keys`` override (the fake backends expose no catalog)."""

    def _scheduler(self, backends=None, **kwargs):
        kwargs.setdefault("primary_keys", {"t": ("id", "INTEGER")})
        return RequestScheduler(
            backends if backends is not None else [_backend("b1")],
            RecoveryLog(),
            **kwargs,
        )

    def _lock_counts(self, scheduler):
        stats = scheduler.stats()["locks"]
        return stats["key_acquisitions"], stats["table_acquisitions"]

    def test_single_row_pk_insert_takes_a_key_lock(self):
        scheduler = self._scheduler()
        scheduler.execute("INSERT INTO t (id, v) VALUES (1, 'x')")
        assert self._lock_counts(scheduler) == (1, 0)
        scheduler.close()

    def test_pk_equality_update_and_delete_take_key_locks(self):
        scheduler = self._scheduler()
        scheduler.execute("UPDATE t SET v = 'y' WHERE id = 7")
        scheduler.execute("DELETE FROM t WHERE id = 7 AND v = 'y'")
        assert self._lock_counts(scheduler) == (2, 0)
        scheduler.close()

    def test_named_param_key_resolved_from_params(self):
        scheduler = self._scheduler()
        scheduler.execute("UPDATE t SET v = 'z' WHERE id = $row", {"row": 3})
        assert self._lock_counts(scheduler) == (1, 0)
        scheduler.close()

    def test_missing_param_falls_back_to_table(self):
        # $row is not in the params dict: the key value is unknowable at
        # scheduling time, so the write must take the whole table.
        scheduler = self._scheduler()
        scheduler.execute("UPDATE t SET v = 'z' WHERE id = $row", {"other": 3})
        assert self._lock_counts(scheduler) == (0, 1)
        scheduler.close()

    def test_range_predicate_falls_back_to_table(self):
        scheduler = self._scheduler()
        scheduler.execute("DELETE FROM t WHERE id > 5")
        assert self._lock_counts(scheduler) == (0, 1)
        scheduler.close()

    def test_multi_row_insert_falls_back_to_table(self):
        scheduler = self._scheduler()
        scheduler.execute("INSERT INTO t (id) VALUES (1), (2)")
        assert self._lock_counts(scheduler) == (0, 1)
        scheduler.close()

    def test_update_assigning_the_pk_falls_back_to_table(self):
        # The row moves from key 7 to key 9: one key cannot cover both.
        scheduler = self._scheduler()
        scheduler.execute("UPDATE t SET id = 9 WHERE id = 7")
        assert self._lock_counts(scheduler) == (0, 1)
        scheduler.close()

    def test_insert_without_pk_value_falls_back_to_table(self):
        scheduler = self._scheduler()
        scheduler.execute("INSERT INTO t (v) VALUES ('x')")
        assert self._lock_counts(scheduler) == (0, 1)
        scheduler.close()

    def test_unknown_table_falls_back_to_table(self):
        # No override and no usable catalog on the fake backend: the PK
        # is unresolvable, so the write takes the table lock (and never
        # errors out on the failed catalog probe).
        scheduler = self._scheduler()
        scheduler.execute("INSERT INTO nopk (id) VALUES (1)")
        assert self._lock_counts(scheduler) == (0, 1)
        scheduler.close()

    def test_key_level_locking_off_takes_table_locks(self):
        scheduler = self._scheduler(key_level_locking=False)
        scheduler.execute("INSERT INTO t (id) VALUES (1)")
        assert self._lock_counts(scheduler) == (0, 1)
        assert scheduler.stats()["key_level_locking"] is False
        scheduler.close()

    def test_string_pk_coerces_numbers_like_the_engine(self):
        # The engine compares VARCHAR columns against numbers via str();
        # the lock key must follow or two spellings of one row would get
        # two different keys and run concurrently.
        scheduler = self._scheduler(primary_keys={"s": ("code", "VARCHAR")})
        scheduler.execute("DELETE FROM s WHERE code = 'a1'")
        scheduler.execute("DELETE FROM s WHERE code = 7")  # key "7"
        assert self._lock_counts(scheduler) == (2, 0)
        scheduler.close()

    def test_integer_pk_rejects_unparseable_strings(self):
        scheduler = self._scheduler()
        scheduler.execute("DELETE FROM t WHERE id = 'not-a-number'")
        assert self._lock_counts(scheduler) == (0, 1)
        scheduler.close()

    def test_ddl_takes_the_table_scope_and_invalidates_the_pk_cache(self):
        scheduler = self._scheduler(primary_keys={})
        scheduler.execute("INSERT INTO plain (id) VALUES (1)")  # caches None
        assert scheduler.stats()["primary_keys_cached"] == 1
        scheduler.execute("ALTER TABLE plain ADD COLUMN v VARCHAR")
        # The DDL dropped the cached resolution: the schema may now
        # declare a different key.
        assert scheduler.stats()["primary_keys_cached"] == 0
        scheduler.close()

    def test_stats_surface_key_fields(self):
        scheduler = self._scheduler()
        scheduler.execute("INSERT INTO t (id) VALUES (1)")
        stats = scheduler.stats()
        assert stats["key_level_locking"] is True
        locks = stats["locks"]
        for field in ("key_acquisitions", "key_waits", "keys_held", "covered_by_exclusive"):
            assert field in locks
        assert locks["keys_held"] == 0  # nothing in flight after return
        scheduler.close()
