"""Concurrent clients against one controller: write ordering and no lost
updates under the parallel write broadcaster."""

import threading

import pytest

from repro.cluster.driver import ClusterDriverRuntime
from repro.experiments.environments import build_cluster


@pytest.fixture
def parallel_cluster():
    env = build_cluster(
        replicas=2,
        controllers=1,
        controller_options={"parallel_writes": True, "query_cache_enabled": True},
    )
    yield env
    env.close()


def _run_clients(env, worker, clients):
    """Run ``worker(connection, client_index)`` on one thread per client."""
    errors = []

    def body(client_index):
        runtime = ClusterDriverRuntime(name=f"concurrent-{client_index}")
        connection = runtime.connect(env.client_url(), network=env.network)
        try:
            worker(connection, client_index)
        except Exception as exc:  # noqa: BLE001 - surfaced via the errors list
            errors.append(exc)
        finally:
            connection.close()

    threads = [
        threading.Thread(target=body, args=(client_index,), name=f"client-{client_index}")
        for client_index in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30.0)
    assert not any(thread.is_alive() for thread in threads)
    assert errors == []


class TestConcurrentWrites:
    CLIENTS = 4
    WRITES_PER_CLIENT = 15

    def test_no_lost_updates_and_log_matches(self, parallel_cluster):
        env = parallel_cluster
        controller = env.controllers[0]
        controller.scheduler.execute(
            "CREATE TABLE conc_t (id INTEGER NOT NULL PRIMARY KEY, client VARCHAR)"
        )
        base_log = controller.recovery_log.last_index

        def worker(connection, client_index):
            cursor = connection.cursor()
            for write_index in range(self.WRITES_PER_CLIENT):
                row_id = client_index * 1000 + write_index
                cursor.execute(
                    "INSERT INTO conc_t (id, client) VALUES ($id, $client)",
                    {"id": row_id, "client": f"c{client_index}"},
                )
            cursor.close()

        _run_clients(env, worker, self.CLIENTS)
        expected = self.CLIENTS * self.WRITES_PER_CLIENT

        # Every write is in the recovery log exactly once.
        entries = controller.recovery_log.entries_after(base_log)
        assert len(entries) == expected

        # Per-client ordering is preserved in the log (each client issued
        # its ids in increasing order over one session).
        per_client = {}
        for entry in entries:
            per_client.setdefault(entry.params["client"], []).append(entry.params["id"])
        assert set(per_client) == {f"c{i}" for i in range(self.CLIENTS)}
        for ids in per_client.values():
            assert ids == sorted(ids)

        # No lost updates: every replica holds every row.
        for engine in env.replica_engines:
            count = engine.open_session(env.database_name).execute(
                "SELECT COUNT(*) FROM conc_t"
            ).scalar()
            assert count == expected

    def test_read_modify_write_counter_is_not_lost(self, parallel_cluster):
        env = parallel_cluster
        controller = env.controllers[0]
        controller.scheduler.execute(
            "CREATE TABLE counter_t (id INTEGER NOT NULL PRIMARY KEY, v INTEGER)"
        )
        controller.scheduler.execute("INSERT INTO counter_t (id, v) VALUES (1, 0)")
        increments = 10

        def worker(connection, client_index):
            cursor = connection.cursor()
            for _ in range(increments):
                cursor.execute("UPDATE counter_t SET v = v + 1 WHERE id = 1")
            cursor.close()

        _run_clients(env, worker, self.CLIENTS)
        expected = self.CLIENTS * increments
        # The serialised write path applied every increment on every replica.
        for engine in env.replica_engines:
            value = engine.open_session(env.database_name).execute(
                "SELECT v FROM counter_t WHERE id = 1"
            ).scalar()
            assert value == expected

    def test_writes_racing_disable_enable_cycles_never_diverge(self, parallel_cluster):
        # Regression: the write path used to snapshot the backend set
        # before taking the write lock, so a write that waited out a
        # resync skipped the just-enabled backend — one silently lost
        # row per cycle.
        import time

        env = parallel_cluster
        controller = env.controllers[0]
        controller.scheduler.execute("CREATE TABLE race_t (id INTEGER PRIMARY KEY)")
        stop = threading.Event()
        errors = []

        def writer():
            runtime = ClusterDriverRuntime(name="race-writer")
            connection = runtime.connect(env.client_url(), network=env.network)
            cursor = connection.cursor()
            row_id = 0
            try:
                while not stop.is_set():
                    cursor.execute(
                        "INSERT INTO race_t (id) VALUES ($id)", {"id": row_id}
                    )
                    row_id += 1
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)
            finally:
                connection.close()

        thread = threading.Thread(target=writer)
        thread.start()
        for _ in range(6):
            controller.disable_backend("db1")
            time.sleep(0.003)
            controller.enable_backend("db1")
            time.sleep(0.003)
        stop.set()
        thread.join(timeout=10.0)
        assert errors == []
        log_writes = controller.recovery_log.last_index - 1  # minus CREATE
        counts = [
            engine.open_session(env.database_name).execute(
                "SELECT COUNT(*) FROM race_t"
            ).scalar()
            for engine in env.replica_engines
        ]
        assert counts[0] == counts[1] == log_writes

    def test_concurrent_reads_with_cache_stay_consistent(self, parallel_cluster):
        env = parallel_cluster
        controller = env.controllers[0]
        controller.scheduler.execute(
            "CREATE TABLE mixed_t (id INTEGER NOT NULL PRIMARY KEY)"
        )
        rows = 5
        for row_id in range(rows):
            controller.scheduler.execute(
                "INSERT INTO mixed_t (id) VALUES ($id)", {"id": row_id}
            )

        def worker(connection, client_index):
            cursor = connection.cursor()
            for _ in range(20):
                cursor.execute("SELECT COUNT(*) FROM mixed_t")
                assert cursor.fetchone() == (rows,)
            cursor.close()

        _run_clients(env, worker, self.CLIENTS)
        cache_stats = controller.scheduler.query_cache.stats()
        assert cache_stats["hits"] > 0
