"""Concurrent clients against one controller: write ordering and no lost
updates under the parallel write broadcaster and the conflict-aware
lock manager (disjoint-table writes overlap; conflicting ones, and
everything touched by a resync, still serialise)."""

import threading
import time

import pytest

from repro.cluster.driver import ClusterDriverRuntime
from repro.cluster.scheduler import SchedulerError
from repro.experiments.environments import build_cluster


@pytest.fixture
def parallel_cluster():
    env = build_cluster(
        replicas=2,
        controllers=1,
        controller_options={"parallel_writes": True, "query_cache_enabled": True},
    )
    yield env
    env.close()


def _run_clients(env, worker, clients):
    """Run ``worker(connection, client_index)`` on one thread per client."""
    errors = []

    def body(client_index):
        runtime = ClusterDriverRuntime(name=f"concurrent-{client_index}")
        connection = runtime.connect(env.client_url(), network=env.network)
        try:
            worker(connection, client_index)
        except Exception as exc:  # noqa: BLE001 - surfaced via the errors list
            errors.append(exc)
        finally:
            connection.close()

    threads = [
        threading.Thread(target=body, args=(client_index,), name=f"client-{client_index}")
        for client_index in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30.0)
    assert not any(thread.is_alive() for thread in threads)
    assert errors == []


class TestConcurrentWrites:
    CLIENTS = 4
    WRITES_PER_CLIENT = 15

    def test_no_lost_updates_and_log_matches(self, parallel_cluster):
        env = parallel_cluster
        controller = env.controllers[0]
        controller.scheduler.execute(
            "CREATE TABLE conc_t (id INTEGER NOT NULL PRIMARY KEY, client VARCHAR)"
        )
        base_log = controller.recovery_log.last_index

        def worker(connection, client_index):
            cursor = connection.cursor()
            for write_index in range(self.WRITES_PER_CLIENT):
                row_id = client_index * 1000 + write_index
                cursor.execute(
                    "INSERT INTO conc_t (id, client) VALUES ($id, $client)",
                    {"id": row_id, "client": f"c{client_index}"},
                )
            cursor.close()

        _run_clients(env, worker, self.CLIENTS)
        expected = self.CLIENTS * self.WRITES_PER_CLIENT

        # Every write is in the recovery log exactly once.
        entries = controller.recovery_log.entries_after(base_log)
        assert len(entries) == expected

        # Per-client ordering is preserved in the log (each client issued
        # its ids in increasing order over one session).
        per_client = {}
        for entry in entries:
            per_client.setdefault(entry.params["client"], []).append(entry.params["id"])
        assert set(per_client) == {f"c{i}" for i in range(self.CLIENTS)}
        for ids in per_client.values():
            assert ids == sorted(ids)

        # No lost updates: every replica holds every row.
        for engine in env.replica_engines:
            count = engine.open_session(env.database_name).execute(
                "SELECT COUNT(*) FROM conc_t"
            ).scalar()
            assert count == expected

    def test_read_modify_write_counter_is_not_lost(self, parallel_cluster):
        env = parallel_cluster
        controller = env.controllers[0]
        controller.scheduler.execute(
            "CREATE TABLE counter_t (id INTEGER NOT NULL PRIMARY KEY, v INTEGER)"
        )
        controller.scheduler.execute("INSERT INTO counter_t (id, v) VALUES (1, 0)")
        increments = 10

        def worker(connection, client_index):
            cursor = connection.cursor()
            for _ in range(increments):
                cursor.execute("UPDATE counter_t SET v = v + 1 WHERE id = 1")
            cursor.close()

        _run_clients(env, worker, self.CLIENTS)
        expected = self.CLIENTS * increments
        # The serialised write path applied every increment on every replica.
        for engine in env.replica_engines:
            value = engine.open_session(env.database_name).execute(
                "SELECT v FROM counter_t WHERE id = 1"
            ).scalar()
            assert value == expected

    def test_writes_racing_disable_enable_cycles_never_diverge(self, parallel_cluster):
        # Regression: the write path used to snapshot the backend set
        # before taking the write lock, so a write that waited out a
        # resync skipped the just-enabled backend — one silently lost
        # row per cycle.
        import time

        env = parallel_cluster
        controller = env.controllers[0]
        controller.scheduler.execute("CREATE TABLE race_t (id INTEGER PRIMARY KEY)")
        stop = threading.Event()
        errors = []

        def writer():
            runtime = ClusterDriverRuntime(name="race-writer")
            connection = runtime.connect(env.client_url(), network=env.network)
            cursor = connection.cursor()
            row_id = 0
            try:
                while not stop.is_set():
                    cursor.execute(
                        "INSERT INTO race_t (id) VALUES ($id)", {"id": row_id}
                    )
                    row_id += 1
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)
            finally:
                connection.close()

        thread = threading.Thread(target=writer)
        thread.start()
        for _ in range(6):
            controller.disable_backend("db1")
            time.sleep(0.003)
            controller.enable_backend("db1")
            time.sleep(0.003)
        stop.set()
        thread.join(timeout=10.0)
        assert errors == []
        log_writes = controller.recovery_log.last_index - 1  # minus CREATE
        counts = [
            engine.open_session(env.database_name).execute(
                "SELECT COUNT(*) FROM race_t"
            ).scalar()
            for engine in env.replica_engines
        ]
        assert counts[0] == counts[1] == log_writes

    def test_disjoint_table_writers_lose_nothing_and_keep_per_table_order(
        self, parallel_cluster
    ):
        # The conflict-aware lock manager runs these four writers in
        # parallel (each owns its table); parallelism must not cost a
        # single row, and every replica must apply each table's writes
        # in that table's log order.
        env = parallel_cluster
        controller = env.controllers[0]
        for client_index in range(self.CLIENTS):
            controller.scheduler.execute(
                f"CREATE TABLE disj_t{client_index} "
                "(id INTEGER NOT NULL PRIMARY KEY, v INTEGER)"
            )
        base_log = controller.recovery_log.last_index

        def worker(connection, client_index):
            cursor = connection.cursor()
            for write_index in range(self.WRITES_PER_CLIENT):
                cursor.execute(
                    f"INSERT INTO disj_t{client_index} (id, v) VALUES ($id, $v)",
                    {"id": write_index, "v": write_index * 10},
                )
            cursor.close()

        _run_clients(env, worker, self.CLIENTS)

        # Every write logged exactly once, with strictly increasing
        # per-table sequence numbers in log-index order — the per-table
        # ordering model the resync replay depends on.
        entries = controller.recovery_log.entries_after(base_log)
        assert len(entries) == self.CLIENTS * self.WRITES_PER_CLIENT
        per_table = {}
        for entry in entries:
            assert entry.write_tables  # classifier extracted the target
            for table, seq in entry.table_seqs.items():
                per_table.setdefault(table, []).append(seq)
        assert set(per_table) == {f"disj_t{i}" for i in range(self.CLIENTS)}
        for seqs in per_table.values():
            assert seqs == sorted(seqs)
            assert len(seqs) == len(set(seqs))

        # No lost updates, on any replica, for any table.
        for engine in env.replica_engines:
            session = engine.open_session(env.database_name)
            for client_index in range(self.CLIENTS):
                rows = sorted(
                    session.execute(f"SELECT id, v FROM disj_t{client_index}").rows
                )
                assert rows == [
                    (i, i * 10) for i in range(self.WRITES_PER_CLIENT)
                ]

        # The writers really took narrow scopes, not the exclusive mode:
        # these single-row PK inserts all qualify for key-level locks.
        lock_stats = controller.scheduler.lock_manager.stats()
        assert lock_stats["key_acquisitions"] >= self.CLIENTS * self.WRITES_PER_CLIENT
        assert lock_stats["tables_held"] == 0
        assert lock_stats["keys_held"] == 0
        assert lock_stats["exclusive_held"] is False

    def test_same_table_disjoint_key_writers_lose_nothing(self, parallel_cluster):
        # One step narrower than the disjoint-table test: all writers
        # hammer ONE table, each updating only its own row. Key-level
        # locks let them overlap; no update may be lost on any replica,
        # and the recovery log's per-table sequences stay monotone even
        # though per-backend *execution* order can differ (disjoint
        # single-row writes commute).
        env = parallel_cluster
        controller = env.controllers[0]
        controller.scheduler.execute(
            "CREATE TABLE hot_t (id INTEGER NOT NULL PRIMARY KEY, v INTEGER)"
        )
        for client_index in range(self.CLIENTS):
            controller.scheduler.execute(
                "INSERT INTO hot_t (id, v) VALUES ($id, -1)", {"id": client_index}
            )
        base_log = controller.recovery_log.last_index
        key_base = controller.scheduler.lock_manager.stats()["key_acquisitions"]

        def worker(connection, client_index):
            cursor = connection.cursor()
            for write_index in range(self.WRITES_PER_CLIENT):
                cursor.execute(
                    "UPDATE hot_t SET v = $v WHERE id = $id",
                    {"v": write_index, "id": client_index},
                )
            cursor.close()

        _run_clients(env, worker, self.CLIENTS)

        # Every write logged exactly once, hot_t's sequences strictly
        # increasing in log-index order.
        entries = controller.recovery_log.entries_after(base_log)
        assert len(entries) == self.CLIENTS * self.WRITES_PER_CLIENT
        seqs = [entry.table_seqs["hot_t"] for entry in entries]
        assert seqs == sorted(seqs)
        assert len(seqs) == len(set(seqs))

        # No lost updates: each writer's final value landed on every
        # replica (each row has exactly one writer, writing in order).
        for engine in env.replica_engines:
            rows = sorted(
                engine.open_session(env.database_name)
                .execute("SELECT id, v FROM hot_t")
                .rows
            )
            assert rows == [
                (i, self.WRITES_PER_CLIENT - 1) for i in range(self.CLIENTS)
            ]

        # The writers really took key scopes, and nothing leaked.
        lock_stats = controller.scheduler.lock_manager.stats()
        assert (
            lock_stats["key_acquisitions"] - key_base
            >= self.CLIENTS * self.WRITES_PER_CLIENT
        )
        assert lock_stats["keys_held"] == 0
        assert lock_stats["tables_held"] == 0
        assert lock_stats["exclusive_held"] is False

    def test_key_writers_racing_table_scope_writes_converge(self, parallel_cluster):
        # Keyed single-row UPDATEs race range UPDATEs on the same table.
        # The range predicate is unextractable, so those writes fall back
        # to the whole-table lock — which must conflict with every key in
        # BOTH directions, or the replicas would interleave the range
        # write differently and diverge.
        env = parallel_cluster
        controller = env.controllers[0]
        controller.scheduler.execute(
            "CREATE TABLE mix_t (id INTEGER NOT NULL PRIMARY KEY, v INTEGER, w INTEGER)"
        )
        for row in range(self.CLIENTS):
            controller.scheduler.execute(
                "INSERT INTO mix_t (id, v, w) VALUES ($id, -1, 0)", {"id": row}
            )
        sweeps = 8

        def worker(connection, client_index):
            cursor = connection.cursor()
            if client_index == 0:
                # The table-scope writer: a range update over every row.
                for _ in range(sweeps):
                    cursor.execute("UPDATE mix_t SET w = w + 1 WHERE id >= 0")
            else:
                for write_index in range(self.WRITES_PER_CLIENT):
                    cursor.execute(
                        "UPDATE mix_t SET v = $v WHERE id = $id",
                        {"v": write_index, "id": client_index},
                    )
            cursor.close()

        _run_clients(env, worker, self.CLIENTS)

        # Both granularities were exercised on the one table.
        lock_stats = controller.scheduler.lock_manager.stats()
        assert lock_stats["key_acquisitions"] > 0
        assert lock_stats["table_acquisitions"] > 0

        # Every replica identical: the keyed rows hold their writer's
        # last value, and every row saw all the range sweeps.
        for engine in env.replica_engines:
            rows = sorted(
                engine.open_session(env.database_name)
                .execute("SELECT id, v, w FROM mix_t")
                .rows
            )
            assert [row[0] for row in rows] == list(range(self.CLIENTS))
            for row_id, v, w in rows:
                assert w == sweeps
                if row_id != 0:
                    assert v == self.WRITES_PER_CLIENT - 1

    def test_resync_racing_disjoint_writers_converges(self, parallel_cluster):
        # A resync takes the exclusive lock mid-workload: it must drain
        # the in-flight table scopes, replay, re-enable, and hand the
        # write path back — with both replicas byte-identical at the end.
        env = parallel_cluster
        controller = env.controllers[0]
        writers = 3
        for writer_index in range(writers):
            controller.scheduler.execute(
                f"CREATE TABLE race_w{writer_index} (id INTEGER NOT NULL PRIMARY KEY)"
            )
        stop = threading.Event()
        errors = []
        counters = [0] * writers

        def writer(writer_index):
            runtime = ClusterDriverRuntime(name=f"race-writer-{writer_index}")
            connection = runtime.connect(env.client_url(), network=env.network)
            cursor = connection.cursor()
            try:
                while not stop.is_set():
                    cursor.execute(
                        f"INSERT INTO race_w{writer_index} (id) VALUES ($id)",
                        {"id": counters[writer_index]},
                    )
                    counters[writer_index] += 1
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)
            finally:
                connection.close()

        threads = [
            threading.Thread(target=writer, args=(index,)) for index in range(writers)
        ]
        for thread in threads:
            thread.start()
        for _ in range(6):
            controller.disable_backend("db1")
            time.sleep(0.003)
            controller.enable_backend("db1")
            time.sleep(0.003)
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)
        assert not any(thread.is_alive() for thread in threads)
        assert errors == []

        # Each writer's table holds exactly its issued rows on every
        # replica — the just-resynced one included.
        for writer_index in range(writers):
            counts = {
                engine.name: engine.open_session(env.database_name)
                .execute(f"SELECT COUNT(*) FROM race_w{writer_index}")
                .scalar()
                for engine in env.replica_engines
            }
            assert len(set(counts.values())) == 1, counts
            assert set(counts.values()) == {counters[writer_index]}

    def test_enable_refusal_names_session_and_tables(self, parallel_cluster):
        # Operator-triage bugfix: the mid-transaction refusal must say
        # *which* session holds the transaction open and what it wrote,
        # not just that "a transaction is open".
        env = parallel_cluster
        controller = env.controllers[0]
        scheduler = controller.scheduler
        scheduler.execute("CREATE TABLE tx_t (id INTEGER NOT NULL PRIMARY KEY)")
        controller.disable_backend("db1")
        scheduler.execute("BEGIN", session_id="session-abc123")
        try:
            scheduler.execute(
                "INSERT INTO tx_t (id) VALUES (1)",
                in_transaction=True,
                session_id="session-abc123",
            )
            with pytest.raises(SchedulerError) as refusal:
                controller.enable_backend("db1")
            message = str(refusal.value)
            assert "session-abc123" in message
            assert "tx_t" in message
        finally:
            scheduler.execute("ROLLBACK", in_transaction=True, session_id="session-abc123")
        controller.enable_backend("db1")

    def test_concurrent_reads_with_cache_stay_consistent(self, parallel_cluster):
        env = parallel_cluster
        controller = env.controllers[0]
        controller.scheduler.execute(
            "CREATE TABLE mixed_t (id INTEGER NOT NULL PRIMARY KEY)"
        )
        rows = 5
        for row_id in range(rows):
            controller.scheduler.execute(
                "INSERT INTO mixed_t (id) VALUES ($id)", {"id": row_id}
            )

        def worker(connection, client_index):
            cursor = connection.cursor()
            for _ in range(20):
                cursor.execute("SELECT COUNT(*) FROM mixed_t")
                assert cursor.fetchone() == (rows,)
            cursor.close()

        _run_clients(env, worker, self.CLIENTS)
        cache_stats = controller.scheduler.query_cache.stats()
        assert cache_stats["hits"] > 0
