"""Tests for the Drivolution schema, registry, match-making and leases."""

import pytest

from repro.core import (
    DriverPermission,
    ExpirationPolicy,
    LeaseManager,
    Matchmaker,
    MatchRequest,
    RenewPolicy,
    install_drivolution_schema,
)
from repro.core.clock import SimulatedClock
from repro.core.lease import LeaseError
from repro.core.matchmaker import NoMatchingDriver
from repro.core.registry import DriverRegistry, RegistryError, SessionBackend
from repro.dbapi.driver_factory import build_pydb_driver
from repro.sqlengine import Engine


@pytest.fixture
def clock():
    return SimulatedClock()


@pytest.fixture
def registry(clock):
    engine = Engine(clock=clock)
    engine.create_database("db")
    session = engine.open_session("db")
    reg = DriverRegistry(SessionBackend(session), clock=clock)
    reg.install_schema()
    return reg


class TestSchema:
    def test_tables_created(self, registry, clock):
        engine = Engine(clock=clock)
        engine.create_database("db")
        session = engine.open_session("db")
        install_drivolution_schema(session.execute)
        names = session.execute("SELECT table_name FROM information_schema.tables").rows
        flat = {row[0] for row in names}
        assert {"drivers", "driver_permission", "leases"} <= flat
        # Idempotent.
        install_drivolution_schema(session.execute)


class TestDriverCrud:
    def test_install_get_list_remove(self, registry):
        package = build_pydb_driver("pydb-1.0.0", driver_version=(1, 0, 0), platform="cpython-any")
        driver_id = registry.install_driver(package)
        assert driver_id == 1
        restored = registry.get_driver(driver_id)
        assert restored.name == "pydb-1.0.0"
        assert restored.driver_version == (1, 0, 0)
        assert restored.platform == "cpython-any"
        assert restored.decode_source() == package.decode_source()
        assert [name for _id, name in ((i, p.name) for i, p in registry.list_drivers())] == ["pydb-1.0.0"]
        assert registry.remove_driver(driver_id)
        with pytest.raises(RegistryError):
            registry.get_driver(driver_id)

    def test_driver_ids_auto_increment(self, registry):
        first = registry.install_driver(build_pydb_driver("a"))
        second = registry.install_driver(build_pydb_driver("b"))
        assert second == first + 1

    def test_permission_requires_existing_driver(self, registry):
        from repro.sqlengine import ConstraintViolation

        with pytest.raises(ConstraintViolation):
            registry.grant_permission(DriverPermission(driver_id=42))


class TestPaperQueries:
    def test_query_drivers_preference_and_fallback(self, registry):
        registry.install_driver(
            build_pydb_driver("linux-driver", platform="linux-x86_64", driver_version=(1, 0, 0))
        )
        registry.install_driver(build_pydb_driver("any-driver", platform=None, driver_version=(2, 0, 0)))
        rows = registry.query_drivers("PYDB-API", client_platform="linux-x86_64")
        names = [row["driver_name"] for row in rows]
        assert set(names) == {"linux-driver", "any-driver"}
        # A platform with no specific driver still matches the NULL-platform one.
        rows = registry.query_drivers("PYDB-API", client_platform="windows-i586")
        assert [row["driver_name"] for row in rows] == ["any-driver"]
        # Unknown API: preference and fallback both empty.
        assert registry.query_drivers("ODBC", with_preferences=False) == []

    def test_query_permissions_filters(self, registry, clock):
        driver_id = registry.install_driver(build_pydb_driver("d"))
        registry.grant_permission(
            DriverPermission(driver_id=driver_id, database="appdb", user="alice")
        )
        assert registry.query_permissions("appdb", "alice", None)
        assert not registry.query_permissions("otherdb", "alice", None)
        assert not registry.query_permissions("appdb", "bob", None)
        # NULL columns match anything.
        registry.grant_permission(DriverPermission(driver_id=driver_id))
        assert registry.query_permissions("anything", "anyone", "10.0.0.1")

    def test_permission_date_window(self, registry, clock):
        driver_id = registry.install_driver(build_pydb_driver("d"))
        now = clock()
        registry.grant_permission(
            DriverPermission(driver_id=driver_id, start_date=now + 100, end_date=now + 200)
        )
        assert not registry.query_permissions(None, None, None)
        clock.advance(150)
        assert registry.query_permissions(None, None, None)
        clock.advance(100)
        assert not registry.query_permissions(None, None, None)

    def test_revoke_permissions_for_driver(self, registry, clock):
        driver_id = registry.install_driver(build_pydb_driver("d"))
        registry.grant_permission(DriverPermission(driver_id=driver_id))
        assert registry.query_permissions(None, None, None)
        registry.revoke_permissions_for_driver(driver_id)
        assert not registry.query_permissions(None, None, None)


class TestMatchmaker:
    def test_latest_permission_wins(self, registry, clock):
        old_id = registry.install_driver(build_pydb_driver("old", driver_version=(1, 0, 0)))
        new_id = registry.install_driver(build_pydb_driver("new", driver_version=(2, 0, 0)))
        registry.grant_permission(DriverPermission(driver_id=old_id, database="appdb"))
        registry.grant_permission(DriverPermission(driver_id=new_id, database="appdb"))
        matchmaker = Matchmaker(registry, clock=clock)
        result = matchmaker.match(MatchRequest(database="appdb", api_name="PYDB-API", client_platform="cpython-any"))
        assert result.driver_id == new_id

    def test_no_driver_at_all(self, registry, clock):
        matchmaker = Matchmaker(registry, clock=clock)
        with pytest.raises(NoMatchingDriver):
            matchmaker.match(MatchRequest(database="appdb", api_name="PYDB-API", client_platform="x"))

    def test_distribution_table_governs_when_present(self, registry, clock):
        driver_id = registry.install_driver(build_pydb_driver("d"))
        registry.grant_permission(DriverPermission(driver_id=driver_id, database="appdb"))
        matchmaker = Matchmaker(registry, clock=clock)
        # Another database is not covered by any permission: refused even
        # though the drivers table has a compatible driver.
        with pytest.raises(NoMatchingDriver):
            matchmaker.match(MatchRequest(database="otherdb", api_name="PYDB-API", client_platform="x"))

    def test_unknown_database_rejected(self, registry, clock):
        registry.install_driver(build_pydb_driver("d"))
        matchmaker = Matchmaker(registry, known_databases=lambda: ["appdb"], clock=clock)
        with pytest.raises(NoMatchingDriver, match="invalid database"):
            matchmaker.match(MatchRequest(database="ghost", api_name="PYDB-API", client_platform="x"))

    def test_policies_come_from_permission(self, registry, clock):
        driver_id = registry.install_driver(build_pydb_driver("d"))
        registry.grant_permission(
            DriverPermission(
                driver_id=driver_id,
                database="appdb",
                lease_time_in_ms=12_345,
                renew_policy=RenewPolicy.UPGRADE,
                expiration_policy=ExpirationPolicy.IMMEDIATE,
            )
        )
        matchmaker = Matchmaker(registry, clock=clock)
        result = matchmaker.match(MatchRequest(database="appdb", api_name="PYDB-API", client_platform="x"))
        assert result.lease_time_ms == 12_345
        assert result.renew_policy == RenewPolicy.UPGRADE
        assert result.expiration_policy == ExpirationPolicy.IMMEDIATE

    def test_binary_format_preference(self, registry, clock):
        from repro.core.constants import BinaryFormat

        registry.install_driver(build_pydb_driver("plain", binary_format=BinaryFormat.PYSRC))
        registry.install_driver(build_pydb_driver("zipped", binary_format=BinaryFormat.PYSRC_ZLIB))
        matchmaker = Matchmaker(registry, clock=clock)
        result = matchmaker.match(
            MatchRequest(
                database="appdb",
                api_name="PYDB-API",
                client_platform="x",
                preferred_binary_format=BinaryFormat.PYSRC_ZLIB,
            )
        )
        assert result.driver_row["driver_name"] == "zipped"


class TestLeases:
    def test_grant_renew_release(self, registry, clock):
        driver_id = registry.install_driver(build_pydb_driver("d"))
        leases = LeaseManager(registry, clock=clock)
        lease = leases.grant(
            "client-1", driver_id, 10_000, RenewPolicy.RENEW, ExpirationPolicy.AFTER_COMMIT,
            database="appdb", user="alice",
        )
        assert lease.is_active(clock())
        assert leases.active_lease_count(driver_id) == 1
        renewed = leases.renew(
            lease.lease_id, "client-1", driver_id, 10_000, RenewPolicy.RENEW, ExpirationPolicy.AFTER_COMMIT
        )
        assert renewed.lease_id != lease.lease_id
        assert leases.active_lease_count(driver_id) == 1  # old one released
        assert leases.release(renewed.lease_id)
        assert leases.active_lease_count(driver_id) == 0
        history = leases.client_history("client-1")
        assert len(history) == 2

    def test_expiry_and_failure_detection(self, registry, clock):
        driver_id = registry.install_driver(build_pydb_driver("d"))
        leases = LeaseManager(registry, clock=clock)
        lease = leases.grant("client-1", driver_id, 1_000, RenewPolicy.RENEW, ExpirationPolicy.AFTER_CLOSE)
        assert not lease.is_expired(clock())
        assert lease.remaining_seconds(clock()) == pytest.approx(1.0)
        clock.advance(2.0)
        assert leases.get(lease.lease_id).is_expired(clock())
        expired = leases.expired_unreleased()
        assert [item.lease_id for item in expired] == [lease.lease_id]

    def test_invalid_lease_time(self, registry, clock):
        driver_id = registry.install_driver(build_pydb_driver("d"))
        leases = LeaseManager(registry, clock=clock)
        with pytest.raises(LeaseError):
            leases.grant("c", driver_id, 0, RenewPolicy.RENEW, ExpirationPolicy.AFTER_CLOSE)
