"""Unit tests for SQL types, coercion and table schemas."""

import pytest

from repro.sqlengine.schema import Column, SchemaError, TableSchema
from repro.sqlengine.types import SqlType, SqlTypeError, coerce_value


class TestTypeResolution:
    def test_known_names_and_aliases(self):
        assert SqlType.from_name("integer") == SqlType.INTEGER
        assert SqlType.from_name("INT") == SqlType.INTEGER
        assert SqlType.from_name("bigint") == SqlType.BIGINT
        assert SqlType.from_name("TEXT") == SqlType.VARCHAR
        assert SqlType.from_name("FLOAT") == SqlType.DOUBLE
        assert SqlType.from_name("bool") == SqlType.BOOLEAN

    def test_unknown_type(self):
        with pytest.raises(SqlTypeError):
            SqlType.from_name("GEOMETRY")


class TestCoercion:
    def test_null_passes_through(self):
        for sql_type in SqlType:
            assert coerce_value(None, sql_type) is None

    def test_integer(self):
        assert coerce_value(5, SqlType.INTEGER) == 5
        assert coerce_value("7", SqlType.INTEGER) == 7
        assert coerce_value(3.0, SqlType.INTEGER) == 3
        with pytest.raises(SqlTypeError):
            coerce_value("abc", SqlType.INTEGER)
        with pytest.raises(SqlTypeError):
            coerce_value([1], SqlType.INTEGER)

    def test_varchar(self):
        assert coerce_value("x", SqlType.VARCHAR) == "x"
        assert coerce_value(5, SqlType.VARCHAR) == "5"
        with pytest.raises(SqlTypeError):
            coerce_value(b"bytes", SqlType.VARCHAR)

    def test_blob(self):
        assert coerce_value(b"code", SqlType.BLOB) == b"code"
        assert coerce_value("text", SqlType.BLOB) == b"text"
        assert coerce_value(bytearray(b"ba"), SqlType.BLOB) == b"ba"

    def test_timestamp(self):
        assert coerce_value(1000, SqlType.TIMESTAMP) == 1000.0
        assert coerce_value("1000.5", SqlType.TIMESTAMP) == 1000.5
        with pytest.raises(SqlTypeError):
            coerce_value(True, SqlType.TIMESTAMP)

    def test_boolean(self):
        assert coerce_value(True, SqlType.BOOLEAN) is True
        assert coerce_value(1, SqlType.BOOLEAN) is True
        with pytest.raises(SqlTypeError):
            coerce_value(2, SqlType.BOOLEAN)

    def test_double(self):
        assert coerce_value(1, SqlType.DOUBLE) == 1.0
        assert coerce_value("2.5", SqlType.DOUBLE) == 2.5


class TestTableSchema:
    def _schema(self) -> TableSchema:
        return TableSchema(
            name="drivers",
            columns=[
                Column("driver_id", SqlType.INTEGER, not_null=True, primary_key=True),
                Column("api_name", SqlType.VARCHAR, not_null=True),
                Column("platform", SqlType.VARCHAR),
            ],
        )

    def test_column_lookup_case_insensitive(self):
        schema = self._schema()
        assert schema.column("API_NAME").name == "api_name"
        assert schema.has_column("Platform")
        assert not schema.has_column("nope")

    def test_unknown_column(self):
        with pytest.raises(SchemaError):
            self._schema().column("missing")

    def test_duplicate_column_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(name="t", columns=[Column("a", SqlType.INTEGER), Column("A", SqlType.VARCHAR)])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(name="t", columns=[])

    def test_coerce_row_fills_missing_with_null(self):
        row = self._schema().coerce_row({"driver_id": 1, "api_name": "JDBC"})
        assert row == {"driver_id": 1, "api_name": "JDBC", "platform": None}

    def test_coerce_row_rejects_unknown_column(self):
        with pytest.raises(SchemaError):
            self._schema().coerce_row({"driver_id": 1, "bogus": "x"})

    def test_primary_key_extraction(self):
        schema = self._schema()
        row = schema.coerce_row({"driver_id": 7, "api_name": "JDBC"})
        assert schema.primary_key_of(row) == (7,)

    def test_no_primary_key(self):
        schema = TableSchema(name="t", columns=[Column("a", SqlType.INTEGER)])
        assert schema.primary_key_of({"a": 1}) is None
