"""Tests for the table-placement subsystem (RAIDb-0/1/2): the map and
policies, placement-aware routing in the scheduler, filtered recovery
replay, table-subset dumps, classifier name canonicalisation and the
removal of the deprecated recovery_log import path."""

import importlib
import sys

import pytest

from repro.cluster.backend import Backend, BackendState
from repro.cluster.classifier import classify, normalize_table_name
from repro.cluster.loadbalancer import (
    LeastPendingPolicy,
    RoundRobinPolicy,
    WeightedPolicy,
)
from repro.cluster.placement import (
    ExplicitPolicy,
    FullReplicationPolicy,
    HashSpreadPolicy,
    NoHostingBackendError,
    PlacementMap,
    Raidb0Policy,
    available_placements,
    create_placement,
)
from repro.cluster.querycache import QueryCache
from repro.cluster.recovery import RecoveryLog
from repro.cluster.scheduler import RequestScheduler, SchedulerError
from repro.errors import DriverError

from tests.test_scheduling import _backend


NAMES = ["db1", "db2", "db3", "db4"]


class TestNormalizeTableName:
    def test_quoted_identifier_loses_quotes(self):
        assert normalize_table_name('"Users"') == "users"

    def test_default_schema_is_stripped(self):
        assert normalize_table_name("public.users") == "users"
        assert normalize_table_name('Public."Users"') == "users"

    def test_other_schemas_stay_qualified(self):
        assert normalize_table_name("information_schema.tables") == "information_schema.tables"
        assert normalize_table_name("Sales.Orders") == "sales.orders"

    def test_classifier_uses_canonical_form(self):
        read = classify('SELECT * FROM "Users" JOIN public.orders ON 1 = 1')
        assert read.read_tables == frozenset({"users", "orders"})
        write = classify('INSERT INTO Public."Users" (id) VALUES (1)')
        assert write.write_tables == frozenset({"users"})
        delete = classify('DELETE FROM "Audit"')
        assert delete.write_tables == frozenset({"audit"})

    def test_quoted_spellings_share_cache_invalidation(self):
        cache = QueryCache()
        result = (["n"], [(1,)], 1)
        cache.put("SELECT * FROM users", {}, classify("SELECT * FROM users").read_tables, result)
        evicted = cache.invalidate_tables(classify('UPDATE Public."Users" SET a = 1').write_tables)
        assert evicted == 1


class TestPlacementPolicies:
    def test_available(self):
        assert available_placements() == ["explicit", "full", "hash", "raidb0"]

    def test_full_is_dynamic_over_the_universe(self):
        placement = create_placement("full", backend_names=["a"])
        assert placement.hosts("t") == frozenset({"a"})
        placement.add_backend("b")
        # Unpinned: a backend added later hosts the table too.
        assert placement.hosts("t") == frozenset({"a", "b"})
        assert placement.is_full

    def test_hash_spread_is_deterministic_and_pinned(self):
        first = create_placement("hash:2", backend_names=NAMES)
        second = create_placement("hash:2", backend_names=list(reversed(NAMES)))
        for table in ("users", "orders", "items"):
            assert first.hosts(table) == second.hosts(table)
            assert len(first.hosts(table)) == 2
        # Pinned at first sight: growing the universe moves nothing.
        before = first.hosts("users")
        first.add_backend("db9")
        assert first.hosts("users") == before

    def test_hash_with_undersized_universe_stays_unpinned(self):
        # Pinning an undersized ring would leave the table below its
        # configured redundancy forever (assignments never move) — so the
        # table stays unpinned, hosted everywhere, until enough backends
        # exist.
        placement = create_placement("hash:2", backend_names=["a"])
        assert placement.hosts("t") == frozenset({"a"})
        placement.add_backend("b")
        assert placement.hosts("t") == frozenset({"a", "b"})
        placement.add_backend("c")
        # Universe is now big enough: this lookup pins exactly 2 hosts…
        pinned = placement.hosts("t")
        assert len(pinned) == 2
        # …and further growth moves nothing.
        placement.add_backend("d")
        assert placement.hosts("t") == pinned

    def test_information_schema_is_never_pinned(self):
        placement = create_placement("raidb0", backend_names=NAMES)
        assert placement.hosts("information_schema.tables") == frozenset(NAMES)
        assert placement.stats()["pinned_tables"] == 0
        placement.add_backend("db9")
        assert "db9" in placement.hosts("information_schema.columns")

    def test_raidb0_places_each_table_on_one_backend(self):
        placement = create_placement("raidb0", backend_names=NAMES)
        for table in ("t1", "t2", "t3", "t4", "t5"):
            assert len(placement.hosts(table)) == 1
        assert not placement.is_full

    def test_explicit_spec_parsing_and_full_default(self):
        placement = create_placement(
            "explicit:users=db1+db2,orders=db3", backend_names=NAMES
        )
        assert placement.hosts("users") == frozenset({"db1", "db2"})
        assert placement.hosts('Public."Users"') == frozenset({"db1", "db2"})
        assert placement.hosts("orders") == frozenset({"db3"})
        # Unlisted tables keep RAIDb-1 semantics.
        assert placement.hosts("misc") == frozenset(NAMES)

    def test_bad_specs_raise(self):
        for spec in ("hash:x", "explicit:", "explicit:users", "nope"):
            with pytest.raises(DriverError):
                create_placement(spec)
        with pytest.raises(DriverError):
            ExplicitPolicy({"users": []})
        with pytest.raises(DriverError):
            HashSpreadPolicy(replicas=0)

    def test_create_placement_passthrough_and_policy_objects(self):
        existing = PlacementMap(policy=Raidb0Policy(), backend_names=["a"])
        assert create_placement(existing, backend_names=["b"]) is existing
        assert existing.backend_names() == ["a", "b"]
        from_policy = create_placement(HashSpreadPolicy(replicas=3), backend_names=NAMES)
        assert len(from_policy.hosts("t")) == 3
        assert create_placement(None).is_full

    def test_reads_do_not_pin_but_writes_do(self):
        # A SELECT on a misspelled table must not leave a permanent
        # garbage assignment; only writes (which create tables) pin.
        placement = create_placement("raidb0", backend_names=NAMES)
        first = placement.hosts("typo_tbale", pin=False)
        assert placement.stats()["pinned_tables"] == 0
        # Deterministic policy: the unpinned answer matches the pinned one.
        assert placement.hosts("typo_tbale") == first
        assert placement.stats()["pinned_tables"] == 1

    def test_unpin_forgets_dropped_tables(self):
        placement = create_placement("raidb0", backend_names=NAMES)
        placement.hosts("ephemeral")
        assert placement.stats()["pinned_tables"] == 1
        placement.unpin(["Ephemeral"])
        assert placement.stats()["pinned_tables"] == 0

    def test_ensure_colocated_repoints_hash_and_refuses_explicit(self):
        hashed = create_placement("raidb0", backend_names=NAMES)
        users_hosts = hashed.hosts("users")
        hashed.ensure_colocated("orders", ["users"])
        assert hashed.hosts("orders") == users_hosts
        explicit = create_placement(
            "explicit:users=db1,orders=db1+db2", backend_names=NAMES
        )
        with pytest.raises(NoHostingBackendError):
            explicit.ensure_colocated("orders", ["users"])
        # A consistent explicit assignment passes.
        ok = create_placement("explicit:users=db1+db2,orders=db1", backend_names=NAMES)
        ok.ensure_colocated("orders", ["users"])
        assert ok.hosts("orders") == frozenset({"db1"})

    def test_assign_pins_and_unpins_fullness(self):
        placement = PlacementMap(backend_names=NAMES)
        assert placement.is_full
        placement.assign("users", ["db1"])
        assert not placement.is_full
        assert placement.hosts("users") == frozenset({"db1"})
        assert placement.tables_hosted_by("db1") == frozenset({"users"})
        stats = placement.stats()
        assert stats["pinned_tables"] == 1
        assert stats["tables"]["users"] == ["db1"]
        assert stats["tables_per_backend"]["db1"] == 1


class TestLoadBalancerCandidateFilter:
    def test_policies_respect_the_filter(self):
        backends = [_backend(f"b{i}") for i in range(4)]
        allowed = {"b1", "b3"}
        for policy in (RoundRobinPolicy(), LeastPendingPolicy(), WeightedPolicy()):
            chosen = {
                policy.choose(backends, candidate_filter=lambda b: b.name in allowed).name
                for _ in range(8)
            }
            assert chosen == allowed

    def test_unsatisfiable_filter_raises(self):
        backends = [_backend("b1")]
        with pytest.raises(DriverError):
            RoundRobinPolicy().choose(backends, candidate_filter=lambda b: False)

    def test_round_robin_fair_under_interleaved_filters(self):
        # A shared cursor would alias: strict 1:1 interleave of filtered
        # (2 candidates) and unfiltered (3 candidates) reads left the
        # filtered stream always on an even cursor — one host starved.
        backends = [_backend(name) for name in ("a", "b", "c")]
        policy = RoundRobinPolicy()
        filtered_counts = {"a": 0, "b": 0}
        for _ in range(10):
            filtered_counts[
                policy.choose(backends, candidate_filter=lambda x: x.name in ("a", "b")).name
            ] += 1
            policy.choose(backends)
        assert filtered_counts == {"a": 5, "b": 5}


def _scheduler(backends, placement=None, **kwargs):
    return RequestScheduler(
        backends,
        RecoveryLog(),
        placement=create_placement(placement) if placement is not None else None,
        **kwargs,
    )


class TestSchedulerPlacementRouting:
    def test_reads_route_only_to_hosting_backends(self):
        backends = [_backend(name) for name in NAMES]
        scheduler = _scheduler(backends, placement="explicit:users=db1+db2")
        for _ in range(6):
            scheduler.execute("SELECT * FROM users")
        assert backends[0].statements_executed + backends[1].statements_executed == 6
        assert backends[2].statements_executed == backends[3].statements_executed == 0
        scheduler.close()

    def test_cross_partition_join_falls_back_to_full_replica(self):
        backends = [_backend(name) for name in NAMES[:3]]
        # db3 hosts everything (it is in both tables' host sets).
        scheduler = _scheduler(
            backends, placement="explicit:users=db1+db3,orders=db2+db3"
        )
        for _ in range(4):
            scheduler.execute("SELECT * FROM users JOIN orders ON 1 = 1")
        assert backends[2].statements_executed == 4
        scheduler.close()

    def test_no_hosting_backend_raises_clear_error(self):
        backends = [_backend(name) for name in NAMES[:2]]
        scheduler = _scheduler(
            backends, placement="explicit:users=db1,orders=db2"
        )
        with pytest.raises(NoHostingBackendError) as excinfo:
            scheduler.execute("SELECT * FROM users JOIN orders ON 1 = 1")
        assert "full replica" in str(excinfo.value)
        scheduler.close()

    def test_writes_fan_out_to_hosting_subset_only(self):
        backends = [_backend(name) for name in NAMES]
        scheduler = _scheduler(backends, placement="explicit:users=db1+db2")
        scheduler.execute("INSERT INTO users (id) VALUES (1)")
        assert backends[0].statements_executed == 1
        assert backends[1].statements_executed == 1
        assert backends[2].statements_executed == 0
        assert backends[3].statements_executed == 0
        # The write is still logged for resync.
        assert scheduler.stats()["recovery_log_entries"] == 1
        scheduler.close()

    def test_write_with_all_hosts_down_raises_not_misroutes(self):
        backends = [_backend(name) for name in NAMES[:2]]
        scheduler = _scheduler(backends, placement="explicit:users=db2")
        backends[1].mark_failed()
        with pytest.raises(NoHostingBackendError):
            scheduler.execute("INSERT INTO users (id) VALUES (1)")
        # The other backend was never touched and stays healthy.
        assert backends[0].statements_executed == 0
        assert backends[0].enabled
        scheduler.close()

    def test_write_surviving_on_remaining_host(self):
        backends = [_backend(name) for name in NAMES[:3]]
        scheduler = _scheduler(backends, placement="explicit:users=db1+db2")
        backends[0].mark_failed()
        columns, rows, rowcount = scheduler.execute("INSERT INTO users (id) VALUES (1)")
        assert rowcount == 1
        assert backends[1].statements_executed == 1
        scheduler.close()

    def test_divergence_check_compares_only_hosting_replicas(self):
        from repro.dbapi.exceptions import IntegrityError

        backends = [_backend(name) for name in NAMES[:3]]
        scheduler = _scheduler(backends, placement="explicit:users=db1+db2")
        # Both hosting replicas reject the statement: the statement is at
        # fault, nobody diverged — even though db3 (not hosting) would
        # have "accepted" it had it wrongly been included.
        backends[0].test_connection.fail_with = IntegrityError("duplicate")
        backends[1].test_connection.fail_with = IntegrityError("duplicate")
        with pytest.raises(SchedulerError):
            scheduler.execute("INSERT INTO users (id) VALUES (1)")
        assert backends[0].enabled and backends[1].enabled
        assert backends[2].statements_executed == 0
        scheduler.close()

    def test_transaction_control_still_broadcasts_everywhere(self):
        backends = [_backend(name) for name in NAMES[:3]]
        log = RecoveryLog()
        scheduler = RequestScheduler(
            backends, log, placement=create_placement("explicit:users=db1")
        )
        scheduler.execute("BEGIN")
        scheduler.execute("INSERT INTO users (id) VALUES (1)", in_transaction=True)
        scheduler.execute("COMMIT", in_transaction=True)
        # BEGIN and COMMIT reached all three; the write only db1.
        assert backends[0].statements_executed == 3
        assert backends[1].statements_executed == 2
        assert backends[2].statements_executed == 2
        # Committed write reached the log.
        assert log.last_index == 1
        scheduler.close()

    def test_unknown_statement_bypasses_placement_and_flushes_cache(self):
        # Satellite regression: a statement the tokenizer cannot parse has
        # an unknown (empty) table set — it must broadcast to every
        # enabled backend (not a placement subset) and flush the whole
        # query cache, exactly as under RAIDb-1.
        backends = [_backend(name) for name in NAMES[:3]]
        cache = QueryCache()
        scheduler = _scheduler(
            backends, placement="explicit:users=db1", query_cache=cache
        )
        scheduler.execute("SELECT * FROM users")
        scheduler.execute("SELECT * FROM other")
        assert len(cache) == 2
        statement = classify("VACUUM %% not-sql @!")
        assert statement.write_tables == frozenset()
        before = [backend.statements_executed for backend in backends]
        scheduler.execute("VACUUM %% not-sql @!")
        after = [backend.statements_executed for backend in backends]
        assert [b - a for a, b in zip(before, after)] == [1, 1, 1]
        assert len(cache) == 0
        scheduler.close()

    def test_unknown_read_bypasses_placement(self):
        backends = [_backend(name) for name in NAMES[:2]]
        scheduler = _scheduler(backends, placement="explicit:users=db1")
        # No table set (SELECT 1): any enabled backend may serve it.
        for _ in range(4):
            scheduler.execute("SELECT 1")
        assert backends[0].statements_executed + backends[1].statements_executed == 4
        assert backends[1].statements_executed > 0
        scheduler.close()

    def test_non_colocated_write_read_pair_raises(self):
        backends = [_backend(name) for name in NAMES[:2]]
        scheduler = _scheduler(
            backends, placement="explicit:archive=db1,live=db2"
        )
        with pytest.raises(NoHostingBackendError) as excinfo:
            scheduler.execute("INSERT INTO archive (id) SELECT id FROM live")
        assert "colocate" in str(excinfo.value)
        scheduler.close()

    def test_read_typos_do_not_grow_placement_stats(self):
        backends = [_backend(name) for name in NAMES[:2]]
        scheduler = _scheduler(backends, placement="raidb0")
        for i in range(5):
            scheduler.execute(f"SELECT * FROM not_a_table_{i}")
        assert scheduler.stats()["placement"]["pinned_tables"] == 0
        scheduler.close()

    def test_drop_unpins_the_table(self):
        backends = [_backend(name) for name in NAMES[:2]]
        scheduler = _scheduler(backends, placement="raidb0")
        scheduler.execute("CREATE TABLE churn (id INTEGER PRIMARY KEY)")
        assert scheduler.stats()["placement"]["pinned_tables"] == 1
        scheduler.execute("DROP TABLE churn")
        assert scheduler.stats()["placement"]["pinned_tables"] == 0
        scheduler.close()

    def test_create_with_references_colocates_under_hash(self):
        backends = [_backend(name) for name in NAMES]
        scheduler = _scheduler(backends, placement="hash:2")
        scheduler.execute("CREATE TABLE users (id INTEGER PRIMARY KEY)")
        scheduler.execute(
            "CREATE TABLE orders (id INTEGER PRIMARY KEY, "
            "uid INTEGER REFERENCES users(id))"
        )
        placement = scheduler.placement
        assert placement.hosts("orders") == placement.hosts("users")
        scheduler.close()

    def test_create_with_references_refuses_conflicting_explicit_placement(self):
        backends = [_backend(name) for name in NAMES[:3]]
        scheduler = _scheduler(
            backends, placement="explicit:users=db1,orders=db1+db2"
        )
        scheduler.execute("CREATE TABLE users (id INTEGER PRIMARY KEY)")
        # db2 would host orders without users: every insert's FK check
        # would fail there and read as divergence — refuse at DDL time.
        with pytest.raises(NoHostingBackendError) as excinfo:
            scheduler.execute(
                "CREATE TABLE orders (id INTEGER PRIMARY KEY, "
                "uid INTEGER REFERENCES users(id))"
            )
        assert "colocate" in str(excinfo.value)
        scheduler.close()

    def test_full_default_keeps_existing_semantics_and_stats(self):
        backends = [_backend(name) for name in NAMES[:2]]
        scheduler = _scheduler(backends)
        scheduler.execute("INSERT INTO t (id) VALUES (1)")
        assert all(backend.statements_executed == 1 for backend in backends)
        stats = scheduler.stats()
        assert stats["placement"]["full"] is True
        assert stats["placement"]["mode"] == "full"
        assert stats["placement"]["pinned_tables"] == 0
        scheduler.close()

    def test_set_placement_swaps_map_and_flushes_cache(self):
        backends = [_backend(name) for name in NAMES[:2]]
        cache = QueryCache()
        scheduler = _scheduler(backends, query_cache=cache)
        scheduler.execute("SELECT * FROM users")
        assert len(cache) == 1
        new_map = scheduler.set_placement("explicit:users=db1")
        assert scheduler.placement is new_map
        assert len(cache) == 0
        before = backends[1].statements_executed
        for _ in range(3):
            scheduler.execute("SELECT * FROM users")
        # Every post-swap read routed to db1 (the sole host), none to db2.
        assert backends[1].statements_executed == before
        scheduler.close()


class TestFilteredResync:
    def test_resync_skips_foreign_tables_but_advances_checkpoint(self):
        backends = [_backend(name) for name in NAMES[:2]]
        log = RecoveryLog()
        scheduler = RequestScheduler(
            backends, log, placement=create_placement("explicit:users=db1,orders=db1+db2")
        )
        scheduler.checkpoint_and_disable(backends[1])
        scheduler.execute("INSERT INTO users (id) VALUES (1)")
        scheduler.execute("INSERT INTO orders (id) VALUES (1)")
        scheduler.execute("INSERT INTO users (id) VALUES (2)")
        replayed = scheduler.resync_and_enable(backends[1])
        # db2 hosts only orders: one of the three logged writes applies.
        assert replayed == 1
        assert backends[1].enabled
        # The checkpoint still advanced past the skipped entries.
        assert backends[1].checkpoint_index == log.last_index == 3
        executed = backends[1].test_connection.executed
        assert [sql for sql, _ in executed] == ["INSERT INTO orders (id) VALUES (1)"]
        scheduler.close()

    def test_unknown_table_entries_replay_everywhere(self):
        backends = [_backend(name) for name in NAMES[:2]]
        log = RecoveryLog()
        scheduler = RequestScheduler(
            backends, log, placement=create_placement("explicit:users=db1")
        )
        scheduler.checkpoint_and_disable(backends[1])
        scheduler.execute("VACUUM %% not-sql @!")
        replayed = scheduler.resync_and_enable(backends[1])
        assert replayed == 1
        scheduler.close()


class TestRecoveryLogShimRemoved:
    def test_shim_is_gone(self):
        """The deprecated ``repro.cluster.recovery_log`` import path has
        been removed after its deprecation period; the canonical package
        is ``repro.cluster.recovery``."""
        sys.modules.pop("repro.cluster.recovery_log", None)
        with pytest.raises(ImportError):
            importlib.import_module("repro.cluster.recovery_log")
        module = importlib.import_module("repro.cluster.recovery")
        assert module.RecoveryLog is RecoveryLog


class TestClusterIntegration:
    """Placement through a real cluster (engines + controllers)."""

    def _build(self, placement, replicas=4):
        from repro.experiments.environments import build_cluster

        return build_cluster(
            replicas=replicas,
            controllers=1,
            controller_options={"placement": placement},
        )

    def test_partial_replica_cold_start_converges(self):
        from repro.experiments.partial_replication import cluster_checksums

        env = self._build("hash:2")
        try:
            controller = env.controllers[0]
            scheduler = controller.scheduler
            for i in range(6):
                scheduler.execute(
                    f"CREATE TABLE t{i} (id INTEGER NOT NULL PRIMARY KEY, v INTEGER)"
                )
                scheduler.execute(f"INSERT INTO t{i} (id, v) VALUES (1, 0)")
            placement = controller.placement
            hosted = placement.tables_hosted_by("db1")
            assert hosted and len(hosted) < 6
            controller.disable_backend("db1")
            for i in range(6):
                scheduler.execute(f"UPDATE t{i} SET v = 9 WHERE id = 1")
            controller.recovery_log.release_checkpoint("backend:db1")
            assert controller.compact_recovery_log() > 0
            replayed = controller.enable_backend("db1")
            assert replayed == 0  # dump cold start, tail already empty
            assert scheduler.cold_starts == 1
            checksums = cluster_checksums(env)
            # Every copy of every table is identical across its hosts…
            assert all(len(set(copies.values())) == 1 for copies in checksums.values())
            # …each table lives exactly where the placement says…
            for table, copies in checksums.items():
                assert set(copies) == set(placement.hosts(table))
            # …and db1 holds only its hosted subset.
            db1_tables = {t for t, copies in checksums.items() if "db1" in copies}
            assert db1_tables == hosted
        finally:
            env.close()

    def test_dump_database_table_subset(self):
        env = self._build("full", replicas=2)
        try:
            controller = env.controllers[0]
            scheduler = controller.scheduler
            scheduler.execute("CREATE TABLE keep (id INTEGER PRIMARY KEY)")
            scheduler.execute("CREATE TABLE skip (id INTEGER PRIMARY KEY)")
            scheduler.execute("INSERT INTO keep (id) VALUES (1)")
            dump = controller.dump_database(tables=["Keep"])
            assert [table.name for table in dump.tables] == ["keep"]
            assert dump.row_count == 1
        finally:
            env.close()

    def test_controller_stats_and_set_placement(self):
        env = self._build(None, replicas=2)
        try:
            controller = env.controllers[0]
            stats = controller.stats()
            assert stats["placement"]["full"] is True
            new_stats = controller.set_placement("raidb0")
            assert new_stats["mode"] == "raidb0"
            assert controller.stats()["placement"]["full"] is False
            controller.scheduler.execute("CREATE TABLE solo (id INTEGER PRIMARY KEY)")
            assert len(controller.placement.hosts("solo")) == 1
        finally:
            env.close()

    def test_catalog_reads_work_under_raidb0_with_a_backend_down(self):
        env = self._build("raidb0", replicas=3)
        try:
            controller = env.controllers[0]
            scheduler = controller.scheduler
            scheduler.execute("CREATE TABLE anything (id INTEGER PRIMARY KEY)")
            # A catalog read must never be pinned to one partition…
            scheduler.execute("SELECT table_name, table_schema FROM information_schema.tables")
            controller.disable_backend("db1")
            controller.disable_backend("db2")
            # …so it keeps working with only one backend left (a pinned
            # catalog would raise NoHostingBackendError here). The rows
            # reflect that partition's own catalog, of course.
            columns, rows, rowcount = scheduler.execute(
                "SELECT table_name, table_schema FROM information_schema.tables"
            )
            assert columns == ["table_name", "table_schema"]
        finally:
            env.close()

    def test_sole_host_cold_start_preserves_its_only_copy(self):
        # Regression: a raidb0 backend is the *only* host of its tables.
        # A dump-based cold start (forced by compaction) assembles the
        # dump from siblings — which never had those tables — and must
        # not wipe the local, authoritative copy.
        env = self._build("raidb0", replicas=3)
        try:
            controller = env.controllers[0]
            scheduler = controller.scheduler
            tables = [f"solo{i}" for i in range(4)]
            for table in tables:
                scheduler.execute(f"CREATE TABLE {table} (id INTEGER PRIMARY KEY)")
                scheduler.execute(f"INSERT INTO {table} (id) VALUES (7)")
            placement = controller.placement
            victim = "db2"
            victim_tables = placement.tables_hosted_by(victim)
            assert victim_tables
            controller.disable_backend(victim)
            # Writes land on the other partitions while the victim is out.
            for table in tables:
                if victim not in placement.hosts(table):
                    scheduler.execute(f"INSERT INTO {table} (id) VALUES (8)")
            controller.recovery_log.release_checkpoint(f"backend:{victim}")
            controller.compact_recovery_log()
            controller.enable_backend(victim)  # dump-based cold start
            assert scheduler.cold_starts == 1
            # The victim's solely-hosted tables survived with their rows.
            for table in victim_tables:
                columns, rows, rowcount = scheduler.execute(f"SELECT * FROM {table}")
                assert rows == [(7,)]
        finally:
            env.close()

    def test_cohosted_table_with_all_other_hosts_down_refuses_cold_start(self):
        # Regression: t is hosted by {db1, db2}. db1 goes down, writes to
        # t land on db2 (logged), then db2 dies too and the log is
        # compacted. Cold-starting db1 must refuse — preserving db1's
        # copy would silently lose db2's committed writes, wiping it
        # would lose the table — instead of coming up stale.
        env = self._build("explicit:shared=db1+db2", replicas=3)
        try:
            controller = env.controllers[0]
            scheduler = controller.scheduler
            scheduler.execute("CREATE TABLE shared (id INTEGER PRIMARY KEY)")
            scheduler.execute("CREATE TABLE common (id INTEGER PRIMARY KEY)")
            controller.disable_backend("db1")
            scheduler.execute("INSERT INTO shared (id) VALUES (1)")  # lands on db2 only
            controller.disable_backend("db2")
            controller.recovery_log.release_checkpoint("backend:db1")
            controller.recovery_log.release_checkpoint("backend:db2")
            controller.compact_recovery_log()
            with pytest.raises(SchedulerError) as excinfo:
                controller.enable_backend("db1")
            assert "shared" in str(excinfo.value)
            # Recovering db2 first (it has the data) unblocks db1.
            controller.enable_backend("db2")
            controller.enable_backend("db1")
            columns, rows, rowcount = scheduler.execute("SELECT * FROM shared")
            assert rows == [(1,)]
        finally:
            env.close()

    def test_quote_requiring_table_names_survive_dump_and_cold_start(self):
        # Regression: quoted identifiers made space-named tables
        # creatable; the dumper must re-emit them quoted or every
        # wipe/dump/restore in the cluster breaks.
        env = self._build("full", replicas=2)
        try:
            controller = env.controllers[0]
            scheduler = controller.scheduler
            scheduler.execute('CREATE TABLE "Order Lines" (id INTEGER PRIMARY KEY)')
            scheduler.execute('INSERT INTO "Order Lines" (id) VALUES (1)')
            controller.disable_backend("db1")
            scheduler.execute('INSERT INTO "Order Lines" (id) VALUES (2)')
            controller.recovery_log.release_checkpoint("backend:db1")
            controller.compact_recovery_log()
            controller.enable_backend("db1")  # dump-based cold start
            assert scheduler.cold_starts == 1
            columns, rows, rowcount = scheduler.execute('SELECT * FROM "Order Lines"')
            assert sorted(rows) == [(1,), (2,)]
        finally:
            env.close()

    def test_cold_start_restores_from_old_host_after_placement_change(self):
        # Regression: after set_placement moves a table's hosts, the dump
        # source must be chosen by who *has* the data, not by placement
        # membership alone (the new host's catalog is empty).
        env = self._build("explicit:moved=db1", replicas=3)
        try:
            controller = env.controllers[0]
            scheduler = controller.scheduler
            scheduler.execute("CREATE TABLE moved (id INTEGER PRIMARY KEY)")
            scheduler.execute("INSERT INTO moved (id) VALUES (1)")
            # Re-home the table onto db2+db3, then cold-start db2 (the
            # documented remedy after a placement change). Writes logged
            # after the disable + compaction push the floor past db2's
            # checkpoint, forcing the dump-based path.
            controller.set_placement("explicit:moved=db2+db3")
            controller.disable_backend("db2")
            scheduler.execute("CREATE TABLE filler (id INTEGER PRIMARY KEY)")
            scheduler.execute("INSERT INTO filler (id) VALUES (1)")
            controller.recovery_log.release_checkpoint("backend:db2")
            controller.compact_recovery_log()
            controller.enable_backend("db2")
            assert scheduler.cold_starts == 1
            session = env.replica_engines[1].open_session(env.database_name)
            assert session.execute("SELECT * FROM moved").rows == [(1,)]
        finally:
            env.close()

    def test_failed_provision_does_not_leave_ghost_in_placement(self):
        # Regression: a backend whose bootstrap fails must be evicted
        # from the placement universe, or the policy could pin future
        # tables to a ghost and every statement on them would raise
        # NoHostingBackendError forever.
        env = self._build("raidb0", replicas=2)
        try:
            controller = env.controllers[0]
            scheduler = controller.scheduler
            scheduler.execute("CREATE TABLE pre (id INTEGER PRIMARY KEY)")
            doomed = env.new_replica()  # db3
            env.network.kill_endpoint(env.replica_addresses[-1])
            with pytest.raises(Exception):
                controller.provision_backend(doomed)
            assert doomed.name not in controller.placement.backend_names()
            # New tables pin onto live backends only, and statements work.
            for i in range(4):
                scheduler.execute(f"CREATE TABLE post{i} (id INTEGER PRIMARY KEY)")
                scheduler.execute(f"INSERT INTO post{i} (id) VALUES (1)")
                hosts = controller.placement.hosts(f"post{i}")
                assert doomed.name not in hosts
        finally:
            env.close()

    def test_provision_backend_cold_starts_partial_replica(self):
        env = self._build("explicit:users=db1", replicas=2)
        try:
            controller = env.controllers[0]
            scheduler = controller.scheduler
            scheduler.execute("CREATE TABLE users (id INTEGER PRIMARY KEY)")
            scheduler.execute("CREATE TABLE misc (id INTEGER PRIMARY KEY)")
            scheduler.execute("INSERT INTO users (id) VALUES (1)")
            scheduler.execute("INSERT INTO misc (id) VALUES (1)")
            newcomer = env.new_replica()  # becomes db3
            controller.provision_backend(newcomer)
            assert newcomer.enabled
            session = env.replica_engines[-1].open_session(env.database_name)
            tables = {
                str(name)
                for name, schema in session.execute(
                    "SELECT table_name, table_schema FROM information_schema.tables"
                ).rows
                if schema != "information_schema"
            }
            # The fully replicated table came over; the partial one —
            # pinned to db1 before the newcomer existed — did not.
            assert tables == {"misc"}
            assert session.execute("SELECT * FROM misc").rows == [(1,)]
            # New writes to the replicated table reach the newcomer too.
            scheduler.execute("INSERT INTO misc (id) VALUES (2)")
            assert len(session.execute("SELECT * FROM misc").rows) == 2
        finally:
            env.close()

    def test_raidb0_loses_only_the_dead_backends_tables(self):
        env = self._build("raidb0", replicas=3)
        try:
            controller = env.controllers[0]
            scheduler = controller.scheduler
            tables = [f"part{i}" for i in range(6)]
            for table in tables:
                scheduler.execute(f"CREATE TABLE {table} (id INTEGER PRIMARY KEY)")
                scheduler.execute(f"INSERT INTO {table} (id) VALUES (1)")
            placement = controller.placement
            victim_tables = placement.tables_hosted_by("db2")
            assert victim_tables
            controller.disable_backend("db2")
            for table in tables:
                if table in victim_tables:
                    with pytest.raises(Exception):
                        scheduler.execute(f"SELECT * FROM {table}")
                else:
                    columns, rows, rowcount = scheduler.execute(f"SELECT * FROM {table}")
                    assert rows == [(1,)]
        finally:
            env.close()
