"""Tests for the Sequoia-like cluster middleware."""

import pytest

import chaos
from repro.cluster import Backend, is_write_statement
from repro.errors import DriverError
from repro.cluster.recovery import RecoveryLog
from repro.cluster.scheduler import RequestScheduler, SchedulerError
from repro.cluster.wire import CLUSTER_PROTOCOL_VERSION
from repro.cluster.driver import ClusterDriverRuntime
from repro.dbapi import OperationalError, ProgrammingError
from repro.dbapi import legacy_driver


class TestRecoveryLog:
    def test_append_and_entries_after(self):
        log = RecoveryLog()
        assert log.last_index == 0
        log.append("INSERT INTO t VALUES (1)")
        log.append("INSERT INTO t VALUES (2)", params={"x": 1})
        assert log.last_index == 2
        assert [entry.index for entry in log.entries_after(0)] == [1, 2]
        assert [entry.index for entry in log.entries_after(1)] == [2]
        assert log.entries_after(5) == []
        assert len(log) == 2


class TestStatementClassification:
    def test_reads_and_writes(self):
        assert not is_write_statement("SELECT * FROM t")
        assert not is_write_statement("  select 1")
        assert is_write_statement("INSERT INTO t VALUES (1)")
        assert is_write_statement("UPDATE t SET a = 1")
        assert is_write_statement("DELETE FROM t")
        assert is_write_statement("CREATE TABLE t (x INTEGER)")
        assert is_write_statement("BEGIN")
        assert not is_write_statement("")

    def test_complex_reads_no_longer_misclassified(self):
        # These used to be prefix-sniffed as writes, broadcast everywhere
        # and appended to the recovery log.
        assert not is_write_statement("WITH recent AS (SELECT id FROM t) SELECT * FROM recent")
        assert not is_write_statement("(SELECT 1)")
        assert not is_write_statement("EXPLAIN SELECT * FROM t")


class TestSchedulerAndBackends:
    def _make_backends(self, cluster_env, controller_index=0):
        return cluster_env.controllers[controller_index].backends()

    def test_writes_replicated_reads_balanced(self, cluster_env):
        controller = cluster_env.controllers[0]
        scheduler = controller.scheduler
        scheduler.execute("CREATE TABLE sched_t (id INTEGER PRIMARY KEY)")
        scheduler.execute("INSERT INTO sched_t (id) VALUES (1)")
        for engine in cluster_env.replica_engines:
            count = engine.open_session(cluster_env.database_name).execute(
                "SELECT COUNT(*) FROM sched_t"
            ).scalar()
            assert count == 1
        # Reads spread across backends: both report statements after a few reads.
        for _ in range(4):
            scheduler.execute("SELECT COUNT(*) FROM sched_t")
        executed = [backend.statements_executed for backend in controller.backends()]
        assert all(count > 0 for count in executed)

    def test_disable_enable_resync(self, cluster_env):
        controller = cluster_env.controllers[0]
        scheduler = controller.scheduler
        scheduler.execute("CREATE TABLE resync_t (id INTEGER PRIMARY KEY)")
        controller.disable_backend("db1")
        scheduler.execute("INSERT INTO resync_t (id) VALUES (1)")
        scheduler.execute("INSERT INTO resync_t (id) VALUES (2)")
        behind = cluster_env.replica_engines[0].open_session(cluster_env.database_name).execute(
            "SELECT COUNT(*) FROM resync_t"
        ).scalar()
        assert behind == 0
        replayed = controller.enable_backend("db1")
        assert replayed == 2
        caught_up = cluster_env.replica_engines[0].open_session(cluster_env.database_name).execute(
            "SELECT COUNT(*) FROM resync_t"
        ).scalar()
        assert caught_up == 2

    def test_no_enabled_backend(self, cluster_env):
        controller = cluster_env.controllers[0]
        for backend in controller.backends():
            backend.disable(0)
        with pytest.raises(SchedulerError):
            controller.scheduler.execute("SELECT 1 FROM nothing")

    def test_backend_failure_marks_failed_but_statement_succeeds(self, cluster_env):
        controller = cluster_env.controllers[0]
        scheduler = controller.scheduler
        scheduler.execute("CREATE TABLE failover_t (id INTEGER PRIMARY KEY)")
        # Kill one replica's database server endpoint: the write fails there
        # but succeeds on the other replica.
        cluster_env.network.kill_endpoint(cluster_env.replica_addresses[0])
        controller.backend("db1").close_connection()
        scheduler.execute("INSERT INTO failover_t (id) VALUES (1)")
        states = {backend.name: backend.state.value for backend in controller.backends()}
        assert states["db1"] == "failed"
        assert states["db2"] == "enabled"
        cluster_env.network.revive_endpoint(cluster_env.replica_addresses[0])

    def test_replace_connection_factory(self, cluster_env):
        controller = cluster_env.controllers[0]
        backend = controller.backend("db1")
        address = cluster_env.replica_addresses[0]

        def new_factory():
            return legacy_driver.connect(
                f"pydb://{address}/{cluster_env.database_name}", network=cluster_env.network
            )

        backend.replace_connection_factory(new_factory)
        columns, rows, _ = backend.execute("SELECT 1")
        assert rows == [(1,)]


class TestClusterDriver:
    def test_connect_execute_and_failover(self, cluster_env):
        driver = ClusterDriverRuntime(name="sequoia-test")
        connection = driver.connect(cluster_env.client_url(), network=cluster_env.network)
        cursor = connection.cursor()
        cursor.execute("CREATE TABLE drv_t (id INTEGER PRIMARY KEY)")
        cursor.execute("INSERT INTO drv_t (id) VALUES (1)")
        cursor.execute("SELECT COUNT(*) FROM drv_t")
        assert cursor.fetchone() == (1,)
        # Kill the controller currently serving this connection.
        current = connection.controller_id
        for controller in cluster_env.controllers:
            if controller.config.controller_id == current:
                controller.stop()
                cluster_env.network.kill_endpoint(controller.address)
        cursor.execute("SELECT COUNT(*) FROM drv_t")
        assert cursor.fetchone() == (1,)
        assert connection.failovers == 1
        assert connection.controller_id != current
        connection.close()

    def test_unknown_virtual_database(self, cluster_env):
        driver = ClusterDriverRuntime()
        hosts = ",".join(controller.address for controller in cluster_env.controllers)
        with pytest.raises(OperationalError):
            driver.connect(f"sequoia://{hosts}/wrongvdb", network=cluster_env.network)

    def test_old_driver_protocol_rejected(self, cluster_env):
        ancient = ClusterDriverRuntime(protocol_version=0)
        with pytest.raises(OperationalError):
            ancient.connect(cluster_env.client_url(), network=cluster_env.network)

    def test_newer_driver_downgrades(self, cluster_env):
        newer = ClusterDriverRuntime(protocol_version=CLUSTER_PROTOCOL_VERSION + 5)
        connection = newer.connect(cluster_env.client_url(), network=cluster_env.network)
        cursor = connection.cursor()
        cursor.execute("SELECT 1")
        assert cursor.fetchone() == (1,)
        connection.close()

    def test_transaction_routed_to_all_backends(self, cluster_env):
        driver = ClusterDriverRuntime()
        connection = driver.connect(cluster_env.client_url(), network=cluster_env.network)
        cursor = connection.cursor()
        cursor.execute("CREATE TABLE tx_t (id INTEGER PRIMARY KEY)")
        connection.begin()
        cursor.execute("INSERT INTO tx_t (id) VALUES (1)")
        connection.commit()
        for engine in cluster_env.replica_engines:
            assert engine.open_session(cluster_env.database_name).execute(
                "SELECT COUNT(*) FROM tx_t"
            ).scalar() == 1
        connection.close()

    def test_sql_error_surfaces_as_programming_error(self, cluster_env):
        driver = ClusterDriverRuntime()
        connection = driver.connect(cluster_env.client_url(), network=cluster_env.network)
        cursor = connection.cursor()
        with pytest.raises(ProgrammingError):
            cursor.execute("SELECT * FROM does_not_exist")
        connection.close()


class TestControllerSessions:
    def test_session_contexts_and_stats(self, cluster_env):
        controller = cluster_env.controllers[0]
        driver = ClusterDriverRuntime()
        connection = driver.connect(
            f"sequoia://{controller.address}/vdb", network=cluster_env.network
        )
        cursor = connection.cursor()
        cursor.execute("CREATE TABLE sess_t (id INTEGER PRIMARY KEY)")
        stats = controller.stats()
        assert stats["controller_id"] == controller.config.controller_id
        assert stats["active_sessions"] == 1
        assert stats["statements_served"] >= 1
        assert stats["scheduler"]["read_policy"] == "round_robin"
        assert stats["scheduler"]["parallel_writes"] is True
        assert stats["scheduler"]["query_cache"] is None
        assert {b["name"] for b in stats["scheduler"]["backends"]} == {"db1", "db2"}
        connection.begin()
        cursor.execute("INSERT INTO sess_t (id) VALUES (1)")
        sessions = list(controller._sessions.values())
        assert len(sessions) == 1 and sessions[0].in_transaction
        connection.commit()
        assert not sessions[0].in_transaction
        connection.close()

    def test_disconnect_mid_transaction_rolls_back(self, cluster_env):
        controller = cluster_env.controllers[0]
        driver = ClusterDriverRuntime()
        url = f"sequoia://{controller.address}/vdb"
        setup = driver.connect(url, network=cluster_env.network)
        setup.cursor().execute("CREATE TABLE dc_t (id INTEGER PRIMARY KEY)")
        vanishing = driver.connect(url, network=cluster_env.network)
        vanishing.begin()
        vanishing.cursor().execute("INSERT INTO dc_t (id) VALUES (1)")
        vanishing.close()
        # The controller rolls the abandoned transaction back on its own
        # session thread; wait for that cleanup to land. Afterwards the
        # row is gone, the scheduler's transaction accounting is released,
        # and a new session can open a transaction of its own.
        assert chaos.wait_until(
            lambda: controller.scheduler._open_transactions == 0
        ), "abandoned transaction was never rolled back"
        cursor = setup.cursor()
        cursor.execute("SELECT COUNT(*) FROM dc_t")
        assert cursor.fetchone() == (0,)
        setup.begin()
        cursor.execute("INSERT INTO dc_t (id) VALUES (2)")
        setup.commit()
        cursor.execute("SELECT COUNT(*) FROM dc_t")
        assert cursor.fetchone() == (1,)
        setup.close()

    def test_enable_backend_refused_while_transaction_open(self, cluster_env):
        controller = cluster_env.controllers[0]
        driver = ClusterDriverRuntime()
        connection = driver.connect(
            f"sequoia://{controller.address}/vdb", network=cluster_env.network
        )
        cursor = connection.cursor()
        cursor.execute("CREATE TABLE eb_t (id INTEGER PRIMARY KEY)")
        controller.disable_backend("db1")
        connection.begin()
        cursor.execute("INSERT INTO eb_t (id) VALUES (1)")
        # Joining mid-transaction would commit the in-flight write on the
        # newcomer where a ROLLBACK could never undo it.
        with pytest.raises(DriverError):
            controller.enable_backend("db1")
        connection.rollback()
        assert controller.enable_backend("db1") == 0
        assert controller.backend("db1").enabled
        connection.close()

    def test_read_only_cte_not_logged_for_resync(self, cluster_env):
        # The seed scheduler prefix-sniffed WITH/(SELECT/EXPLAIN as writes:
        # they were broadcast to every backend and appended to the recovery
        # log, so they got replayed (and failed again) during resync. They
        # are reads now: routed to one backend and never logged — even
        # though the SQL engine itself cannot execute them yet.
        controller = cluster_env.controllers[0]
        scheduler = controller.scheduler
        scheduler.execute("CREATE TABLE cte_t (id INTEGER PRIMARY KEY)")
        scheduler.execute("INSERT INTO cte_t (id) VALUES (1)")
        log_before = controller.recovery_log.last_index
        for sql in (
            "WITH c AS (SELECT id FROM cte_t) SELECT COUNT(*) FROM c",
            "(SELECT COUNT(*) FROM cte_t)",
            "EXPLAIN SELECT * FROM cte_t",
        ):
            with pytest.raises(DriverError):
                scheduler.execute(sql)
        assert controller.recovery_log.last_index == log_before
        # And a disabled backend resyncs cleanly, replaying only real writes.
        controller.disable_backend("db1")
        scheduler.execute("INSERT INTO cte_t (id) VALUES (2)")
        assert controller.enable_backend("db1") == 1


class TestControllerGroupReplication:
    def test_driver_install_replicated_to_peers(self, cluster_env):
        from repro.dbapi.driver_factory import build_sequoia_driver

        package = build_sequoia_driver("sequoia-9.9", driver_version=(9, 9, 0))
        cluster_env.controllers[0].install_driver_cluster_wide(
            package, database="vdb", lease_time_ms=1_000
        )
        for controller in cluster_env.controllers:
            names = [pkg.name for _id, pkg in controller.drivolution.registry.list_drivers()]
            assert "sequoia-9.9" in names

    def test_cluster_wide_backend_disable_enable(self, cluster_env):
        primary = cluster_env.controllers[0]
        primary.scheduler.execute("CREATE TABLE cw_t (id INTEGER PRIMARY KEY)")
        primary.disable_backend_cluster_wide("db1")
        for controller in cluster_env.controllers:
            assert not controller.backend("db1").enabled
        primary.enable_backend_cluster_wide("db1")
        for controller in cluster_env.controllers:
            assert controller.backend("db1").enabled

    def test_cluster_wide_enable_surfaces_peer_refusal(self, cluster_env):
        primary, peer = cluster_env.controllers
        primary.scheduler.execute("CREATE TABLE cwr_t (id INTEGER PRIMARY KEY)")
        primary.disable_backend_cluster_wide("db1")
        # The peer has a transaction open: its open-transaction gate
        # refuses the enable, and the primary must not report success.
        peer.scheduler.execute("BEGIN")
        with pytest.raises(DriverError, match="refused by peers"):
            primary.enable_backend_cluster_wide("db1")
        assert primary.backend("db1").enabled
        assert not peer.backend("db1").enabled
        peer.scheduler.execute("ROLLBACK")
        primary.enable_backend_cluster_wide("db1")
        for controller in cluster_env.controllers:
            assert controller.backend("db1").enabled
