"""Tests for the Sequoia-like cluster middleware."""

import pytest

from repro.cluster import Backend, is_write_statement
from repro.cluster.recovery_log import RecoveryLog
from repro.cluster.scheduler import RequestScheduler, SchedulerError
from repro.cluster.wire import CLUSTER_PROTOCOL_VERSION
from repro.cluster.driver import ClusterDriverRuntime
from repro.dbapi import OperationalError, ProgrammingError
from repro.dbapi import legacy_driver


class TestRecoveryLog:
    def test_append_and_entries_after(self):
        log = RecoveryLog()
        assert log.last_index == 0
        log.append("INSERT INTO t VALUES (1)")
        log.append("INSERT INTO t VALUES (2)", params={"x": 1})
        assert log.last_index == 2
        assert [entry.index for entry in log.entries_after(0)] == [1, 2]
        assert [entry.index for entry in log.entries_after(1)] == [2]
        assert log.entries_after(5) == []
        assert len(log) == 2


class TestStatementClassification:
    def test_reads_and_writes(self):
        assert not is_write_statement("SELECT * FROM t")
        assert not is_write_statement("  select 1")
        assert is_write_statement("INSERT INTO t VALUES (1)")
        assert is_write_statement("UPDATE t SET a = 1")
        assert is_write_statement("DELETE FROM t")
        assert is_write_statement("CREATE TABLE t (x INTEGER)")
        assert is_write_statement("BEGIN")
        assert not is_write_statement("")


class TestSchedulerAndBackends:
    def _make_backends(self, cluster_env, controller_index=0):
        return cluster_env.controllers[controller_index].backends()

    def test_writes_replicated_reads_balanced(self, cluster_env):
        controller = cluster_env.controllers[0]
        scheduler = controller.scheduler
        scheduler.execute("CREATE TABLE sched_t (id INTEGER PRIMARY KEY)")
        scheduler.execute("INSERT INTO sched_t (id) VALUES (1)")
        for engine in cluster_env.replica_engines:
            count = engine.open_session(cluster_env.database_name).execute(
                "SELECT COUNT(*) FROM sched_t"
            ).scalar()
            assert count == 1
        # Reads spread across backends: both report statements after a few reads.
        for _ in range(4):
            scheduler.execute("SELECT COUNT(*) FROM sched_t")
        executed = [backend.statements_executed for backend in controller.backends()]
        assert all(count > 0 for count in executed)

    def test_disable_enable_resync(self, cluster_env):
        controller = cluster_env.controllers[0]
        scheduler = controller.scheduler
        scheduler.execute("CREATE TABLE resync_t (id INTEGER PRIMARY KEY)")
        controller.disable_backend("db1")
        scheduler.execute("INSERT INTO resync_t (id) VALUES (1)")
        scheduler.execute("INSERT INTO resync_t (id) VALUES (2)")
        behind = cluster_env.replica_engines[0].open_session(cluster_env.database_name).execute(
            "SELECT COUNT(*) FROM resync_t"
        ).scalar()
        assert behind == 0
        replayed = controller.enable_backend("db1")
        assert replayed == 2
        caught_up = cluster_env.replica_engines[0].open_session(cluster_env.database_name).execute(
            "SELECT COUNT(*) FROM resync_t"
        ).scalar()
        assert caught_up == 2

    def test_no_enabled_backend(self, cluster_env):
        controller = cluster_env.controllers[0]
        for backend in controller.backends():
            backend.disable(0)
        with pytest.raises(SchedulerError):
            controller.scheduler.execute("SELECT 1 FROM nothing")

    def test_backend_failure_marks_failed_but_statement_succeeds(self, cluster_env):
        controller = cluster_env.controllers[0]
        scheduler = controller.scheduler
        scheduler.execute("CREATE TABLE failover_t (id INTEGER PRIMARY KEY)")
        # Kill one replica's database server endpoint: the write fails there
        # but succeeds on the other replica.
        cluster_env.network.kill_endpoint(cluster_env.replica_addresses[0])
        controller.backend("db1").close_connection()
        scheduler.execute("INSERT INTO failover_t (id) VALUES (1)")
        states = {backend.name: backend.state.value for backend in controller.backends()}
        assert states["db1"] == "failed"
        assert states["db2"] == "enabled"
        cluster_env.network.revive_endpoint(cluster_env.replica_addresses[0])

    def test_replace_connection_factory(self, cluster_env):
        controller = cluster_env.controllers[0]
        backend = controller.backend("db1")
        address = cluster_env.replica_addresses[0]

        def new_factory():
            return legacy_driver.connect(
                f"pydb://{address}/{cluster_env.database_name}", network=cluster_env.network
            )

        backend.replace_connection_factory(new_factory)
        columns, rows, _ = backend.execute("SELECT 1")
        assert rows == [(1,)]


class TestClusterDriver:
    def test_connect_execute_and_failover(self, cluster_env):
        driver = ClusterDriverRuntime(name="sequoia-test")
        connection = driver.connect(cluster_env.client_url(), network=cluster_env.network)
        cursor = connection.cursor()
        cursor.execute("CREATE TABLE drv_t (id INTEGER PRIMARY KEY)")
        cursor.execute("INSERT INTO drv_t (id) VALUES (1)")
        cursor.execute("SELECT COUNT(*) FROM drv_t")
        assert cursor.fetchone() == (1,)
        # Kill the controller currently serving this connection.
        current = connection.controller_id
        for controller in cluster_env.controllers:
            if controller.config.controller_id == current:
                controller.stop()
                cluster_env.network.kill_endpoint(controller.address)
        cursor.execute("SELECT COUNT(*) FROM drv_t")
        assert cursor.fetchone() == (1,)
        assert connection.failovers == 1
        assert connection.controller_id != current
        connection.close()

    def test_unknown_virtual_database(self, cluster_env):
        driver = ClusterDriverRuntime()
        hosts = ",".join(controller.address for controller in cluster_env.controllers)
        with pytest.raises(OperationalError):
            driver.connect(f"sequoia://{hosts}/wrongvdb", network=cluster_env.network)

    def test_old_driver_protocol_rejected(self, cluster_env):
        ancient = ClusterDriverRuntime(protocol_version=0)
        with pytest.raises(OperationalError):
            ancient.connect(cluster_env.client_url(), network=cluster_env.network)

    def test_newer_driver_downgrades(self, cluster_env):
        newer = ClusterDriverRuntime(protocol_version=CLUSTER_PROTOCOL_VERSION + 5)
        connection = newer.connect(cluster_env.client_url(), network=cluster_env.network)
        cursor = connection.cursor()
        cursor.execute("SELECT 1")
        assert cursor.fetchone() == (1,)
        connection.close()

    def test_transaction_routed_to_all_backends(self, cluster_env):
        driver = ClusterDriverRuntime()
        connection = driver.connect(cluster_env.client_url(), network=cluster_env.network)
        cursor = connection.cursor()
        cursor.execute("CREATE TABLE tx_t (id INTEGER PRIMARY KEY)")
        connection.begin()
        cursor.execute("INSERT INTO tx_t (id) VALUES (1)")
        connection.commit()
        for engine in cluster_env.replica_engines:
            assert engine.open_session(cluster_env.database_name).execute(
                "SELECT COUNT(*) FROM tx_t"
            ).scalar() == 1
        connection.close()

    def test_sql_error_surfaces_as_programming_error(self, cluster_env):
        driver = ClusterDriverRuntime()
        connection = driver.connect(cluster_env.client_url(), network=cluster_env.network)
        cursor = connection.cursor()
        with pytest.raises(ProgrammingError):
            cursor.execute("SELECT * FROM does_not_exist")
        connection.close()


class TestControllerGroupReplication:
    def test_driver_install_replicated_to_peers(self, cluster_env):
        from repro.dbapi.driver_factory import build_sequoia_driver

        package = build_sequoia_driver("sequoia-9.9", driver_version=(9, 9, 0))
        cluster_env.controllers[0].install_driver_cluster_wide(
            package, database="vdb", lease_time_ms=1_000
        )
        for controller in cluster_env.controllers:
            names = [pkg.name for _id, pkg in controller.drivolution.registry.list_drivers()]
            assert "sequoia-9.9" in names

    def test_cluster_wide_backend_disable_enable(self, cluster_env):
        primary = cluster_env.controllers[0]
        primary.scheduler.execute("CREATE TABLE cw_t (id INTEGER PRIMARY KEY)")
        primary.disable_backend_cluster_wide("db1")
        for controller in cluster_env.controllers:
            assert not controller.backend("db1").enabled
        primary.enable_backend_cluster_wide("db1")
        for controller in cluster_env.controllers:
            assert controller.backend("db1").enabled
