"""Integration tests for the bootloader against a live Drivolution server."""

import pytest

from repro.core import BootloaderConfig, DriverSigner
from repro.core.bootloader import BootloaderError
from repro.core.constants import ExpirationPolicy
from repro.dbapi.driver_factory import build_pydb_driver
from repro.netsim.secure import CertificateAuthority


@pytest.fixture
def env(single_db_env):
    return single_db_env


def _install(env, name, version, **kwargs):
    return env.admin.install_driver(
        build_pydb_driver(name, driver_version=version),
        database=env.database_name,
        lease_time_ms=kwargs.pop("lease_time_ms", 1_000),
        **kwargs,
    )


class TestBootstrap:
    def test_connect_downloads_and_loads_driver(self, env):
        _install(env, "pydb-1.0.0", (1, 0, 0))
        bootloader = env.new_bootloader()
        connection = bootloader.connect(env.url)
        cursor = connection.cursor()
        cursor.execute("SELECT 1")
        assert cursor.fetchone() == (1,)
        assert bootloader.driver_info()["driver_name"] == "pydb-1.0.0"
        assert bootloader.stats.driver_downloads == 1
        assert bootloader.stats.bytes_downloaded > 0
        # Second connect reuses the already-loaded driver.
        second = bootloader.connect(env.url)
        assert bootloader.stats.driver_downloads == 1
        connection.close()
        second.close()

    def test_no_driver_available(self, env):
        bootloader = env.new_bootloader()
        with pytest.raises(BootloaderError):
            bootloader.connect(env.url)

    def test_connection_options_pass_through(self, env):
        _install(env, "pydb-1.0.0", (1, 0, 0))
        bootloader = env.new_bootloader()
        connection = bootloader.connect(env.url, application_name="reporting")
        assert not connection.closed
        connection.close()

    def test_server_enforced_driver_options(self, env):
        env.admin.install_driver(
            build_pydb_driver("pydb-opts", driver_version=(1, 0, 0)),
            database=env.database_name,
            driver_options={"application_name": "enforced"},
            lease_time_ms=1_000,
        )
        bootloader = env.new_bootloader()
        connection = bootloader.connect(env.url)
        assert bootloader.current_lease.driver_options["application_name"] == "enforced"
        connection.close()

    def test_managed_connection_passthrough(self, env):
        _install(env, "pydb-1.0.0", (1, 0, 0))
        bootloader = env.new_bootloader()
        connection = bootloader.connect(env.url)
        session = env.open_sql_session()
        session.execute("CREATE TABLE bl (id INTEGER PRIMARY KEY)")
        connection.begin()
        cursor = connection.cursor()
        cursor.execute("INSERT INTO bl (id) VALUES (1)")
        assert connection.in_transaction
        connection.commit()
        assert not connection.in_transaction
        assert connection.supports("gis") is False
        with connection as conn:
            assert conn is connection
        assert connection.closed
        assert bootloader.active_connections() == []


class TestLeaseRenewalAndUpgrade:
    def test_renew_same_driver(self, env):
        _install(env, "pydb-1.0.0", (1, 0, 0))
        bootloader = env.new_bootloader()
        bootloader.connect(env.url).close()
        assert bootloader.check_for_update() == "not_due"
        env.clock.advance(2.0)
        assert bootloader.lease_expired()
        assert bootloader.check_for_update() == "renewed"
        assert bootloader.stats.lease_renewals == 1
        assert not bootloader.lease_expired()

    def test_upgrade_on_new_driver(self, env):
        record = _install(env, "pydb-1.0.0", (1, 0, 0))
        bootloader = env.new_bootloader()
        old_connection = bootloader.connect(env.url)
        env.admin.push_upgrade(
            build_pydb_driver("pydb-2.0.0", driver_version=(2, 0, 0)),
            old_record=record,
            database=env.database_name,
            lease_time_ms=1_000,
            expiration_policy=ExpirationPolicy.AFTER_COMMIT,
        )
        env.clock.advance(2.0)
        assert bootloader.check_for_update() == "upgraded"
        assert bootloader.driver_info()["driver_name"] == "pydb-2.0.0"
        # Idle old connection was closed by the AFTER_COMMIT policy.
        assert old_connection.closed
        new_connection = bootloader.connect(env.url)
        assert new_connection.driver_info["name"] == "pydb-2.0.0"
        new_connection.close()
        assert bootloader.stats.upgrades == 1

    def test_lazy_check_on_connect(self, env):
        record = _install(env, "pydb-1.0.0", (1, 0, 0))
        bootloader = env.new_bootloader()
        bootloader.connect(env.url).close()
        env.admin.push_upgrade(
            build_pydb_driver("pydb-2.0.0", driver_version=(2, 0, 0)),
            old_record=record,
            database=env.database_name,
            lease_time_ms=1_000,
        )
        env.clock.advance(2.0)
        # No explicit check: the next connect call triggers the upgrade.
        connection = bootloader.connect(env.url)
        assert connection.driver_info["name"] == "pydb-2.0.0"
        connection.close()

    def test_rollback_to_previous_driver(self, env):
        good = _install(env, "pydb-1.0.0", (1, 0, 0))
        bootloader = env.new_bootloader()
        bootloader.connect(env.url).close()
        bad = env.admin.push_upgrade(
            build_pydb_driver("pydb-2.0.0-broken", driver_version=(2, 0, 0)),
            old_record=good,
            database=env.database_name,
            lease_time_ms=1_000,
        )
        env.clock.advance(2.0)
        assert bootloader.check_for_update() == "upgraded"
        # The administrator reverts to the known-good version.
        env.admin.rollback_upgrade(
            bad,
            build_pydb_driver("pydb-1.0.0", driver_version=(1, 0, 0)),
            database=env.database_name,
            lease_time_ms=1_000,
        )
        env.clock.advance(2.0)
        assert bootloader.check_for_update() == "upgraded"
        assert bootloader.driver_info()["driver_name"] == "pydb-1.0.0"

    def test_revocation_blocks_new_connections(self, env):
        record = _install(env, "pydb-1.0.0", (1, 0, 0))
        bootloader = env.new_bootloader()
        connection = bootloader.connect(env.url)
        env.admin.revoke_driver(record.driver_ids, api_name="PYDB-API")
        env.clock.advance(2.0)
        assert bootloader.check_for_update() == "revoked"
        assert bootloader.revoked
        with pytest.raises(BootloaderError, match="revoked|no suitable"):
            bootloader.connect(env.url)
        assert bootloader.stats.blocked_connects == 1
        if not connection.closed:
            connection.close()

    def test_server_unreachable_keeps_current_driver(self, env):
        _install(env, "pydb-1.0.0", (1, 0, 0))
        bootloader = env.new_bootloader()
        connection = bootloader.connect(env.url)
        env.network.kill_endpoint(env.db_address)
        env.clock.advance(2.0)
        assert bootloader.check_for_update() == "server_unreachable"
        assert not bootloader.revoked
        assert bootloader.current_driver is not None
        # Existing connection keeps working? It cannot: the endpoint is the
        # database itself here; what matters is the driver stayed loaded.
        env.network.revive_endpoint(env.db_address)
        assert bootloader.check_for_update() in ("renewed", "upgraded")
        connection.close()

    def test_renewal_timer_thread(self, env):
        import time

        record = _install(env, "pydb-1.0.0", (1, 0, 0))
        bootloader = env.new_bootloader()
        bootloader.connect(env.url).close()
        bootloader.start_renewal_timer(poll_interval=0.02)
        env.admin.push_upgrade(
            build_pydb_driver("pydb-2.0.0", driver_version=(2, 0, 0)),
            old_record=record,
            database=env.database_name,
            lease_time_ms=1_000,
        )
        env.clock.advance(2.0)
        deadline = time.time() + 3.0
        while time.time() < deadline:
            if bootloader.driver_info().get("driver_name") == "pydb-2.0.0":
                break
            time.sleep(0.02)
        bootloader.stop_renewal_timer()
        assert bootloader.driver_info()["driver_name"] == "pydb-2.0.0"

    def test_notification_channel_immediate_upgrade(self, env):
        import time

        record = _install(env, "pydb-1.0.0", (1, 0, 0))
        bootloader = env.new_bootloader()
        bootloader.connect(env.url).close()
        bootloader.subscribe_for_updates(env.db_address, database=env.database_name)
        assert env.drivolution.subscriber_count() == 1
        env.admin.push_upgrade(
            build_pydb_driver("pydb-2.0.0", driver_version=(2, 0, 0)),
            old_record=record,
            database=env.database_name,
            lease_time_ms=60_000,
        )
        deadline = time.time() + 3.0
        while time.time() < deadline:
            if bootloader.driver_info().get("driver_name") == "pydb-2.0.0":
                break
            time.sleep(0.02)
        # No simulated-clock advance was needed: the push did it.
        assert bootloader.driver_info()["driver_name"] == "pydb-2.0.0"
        bootloader.shutdown()


class TestSecurityIntegration:
    def test_signed_driver_required_and_verified(self, env):
        signer = DriverSigner(b"distribution-key")
        env.admin.signer = signer
        env.drivolution.signer = signer
        _install(env, "pydb-signed", (1, 0, 0))
        config = BootloaderConfig(signer=signer, require_signature=True)
        bootloader = env.new_bootloader(config)
        connection = bootloader.connect(env.url)
        assert not connection.closed
        connection.close()

    def test_wrong_signing_key_rejected(self, env):
        env.admin.signer = DriverSigner(b"distribution-key")
        env.drivolution.signer = env.admin.signer
        _install(env, "pydb-signed", (1, 0, 0))
        config = BootloaderConfig(signer=DriverSigner(b"other-key"), require_signature=True)
        bootloader = env.new_bootloader(config)
        with pytest.raises(Exception):
            bootloader.connect(env.url)

    def test_secure_channel_to_standalone_server(self, env):
        from repro.core import DrivolutionAdmin, DrivolutionServer, StandaloneServerBinding

        ca = CertificateAuthority(name="corp-ca")
        certificate = ca.issue("drivolution-secure")
        secure_server = DrivolutionServer(
            StandaloneServerBinding(clock=env.clock),
            network=env.network,
            address="drivolution-secure:9000",
            clock=env.clock,
            server_id="drivo-secure",
            certificate=certificate,
            certificate_authority=ca,
            require_secure_channel=True,
        ).start()
        DrivolutionAdmin([secure_server]).install_driver(
            build_pydb_driver("pydb-secure", driver_version=(1, 0, 0)),
            database=env.database_name,
            lease_time_ms=1_000,
        )
        # Insecure bootloader is refused.
        insecure = env.new_bootloader(
            BootloaderConfig(drivolution_servers=["drivolution-secure:9000"])
        )
        with pytest.raises(BootloaderError):
            insecure.connect(env.url)
        # Secure bootloader verifies the certificate and succeeds.
        secure_bootloader = env.new_bootloader(
            BootloaderConfig(
                drivolution_servers=["drivolution-secure:9000"],
                secure=True,
                certificate_authority=ca,
                expected_server_subject="drivolution-secure",
            )
        )
        connection = secure_bootloader.connect(env.url)
        assert not connection.closed
        connection.close()
        secure_server.stop()


class TestDiscovery:
    def test_discover_picks_an_answering_server(self, env):
        from repro.core import DrivolutionAdmin, DrivolutionServer, StandaloneServerBinding

        # A second Drivolution server with the same driver.
        other = DrivolutionServer(
            StandaloneServerBinding(clock=env.clock),
            network=env.network,
            address="drivolution-extra:9000",
            clock=env.clock,
            server_id="drivo-extra",
        ).start()
        DrivolutionAdmin([other]).install_driver(
            build_pydb_driver("pydb-discovered", driver_version=(1, 0, 0)),
            database=env.database_name,
            lease_time_ms=1_000,
        )
        bootloader = env.new_bootloader(BootloaderConfig(use_discovery=True))
        connection = bootloader.connect(env.url)
        assert bootloader.stats.discover_rounds == 1
        assert bootloader.driver_info()["driver_name"] == "pydb-discovered"
        connection.close()
        other.stop()
