"""Unit tests for the message codec and framing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TransportError
from repro.netsim.framing import (
    MessageCodecError,
    decode_message,
    encode_message,
    frame,
    read_frame,
)


class TestEncodeDecode:
    def test_roundtrip_simple(self):
        message = {"type": "hello", "count": 3, "ok": True, "ratio": 1.5, "none": None}
        assert decode_message(encode_message(message)) == message

    def test_roundtrip_bytes(self):
        message = {"blob": b"\x00\x01\xffdata", "nested": {"inner": b"x"}}
        assert decode_message(encode_message(message)) == message

    def test_roundtrip_lists_and_nesting(self):
        message = {"items": [1, "two", [3, {"four": b"5"}], None]}
        decoded = decode_message(encode_message(message))
        assert decoded == message

    def test_tuple_becomes_list(self):
        decoded = decode_message(encode_message({"t": (1, 2)}))
        assert decoded["t"] == [1, 2]

    def test_non_dict_message_rejected(self):
        with pytest.raises(MessageCodecError):
            encode_message(["not", "a", "dict"])

    def test_unsupported_value_rejected(self):
        with pytest.raises(MessageCodecError):
            encode_message({"bad": object()})

    def test_bad_magic_rejected(self):
        with pytest.raises(MessageCodecError):
            decode_message(b"XXXX{}")

    def test_truncated_payload_rejected(self):
        data = encode_message({"a": 1})
        with pytest.raises(MessageCodecError):
            decode_message(data[:-3])

    def test_non_bytes_input_rejected(self):
        with pytest.raises(MessageCodecError):
            decode_message("a string")


class TestFraming:
    def test_frame_roundtrip(self):
        payload = b"hello world"
        framed = frame(payload)
        buffer = bytearray(framed)

        def read_exactly(n):
            chunk = bytes(buffer[:n])
            del buffer[:n]
            return chunk

        assert read_frame(read_exactly) == payload

    def test_read_frame_closed_peer(self):
        with pytest.raises(TransportError):
            read_frame(lambda n: b"")


@settings(max_examples=60, deadline=None)
@given(
    st.dictionaries(
        st.text(min_size=1, max_size=8),
        st.one_of(
            st.integers(min_value=-(2**31), max_value=2**31),
            st.text(max_size=20),
            st.binary(max_size=64),
            st.booleans(),
            st.none(),
        ),
        max_size=6,
    )
)
def test_property_codec_roundtrip(message):
    """Any well-typed message survives an encode/decode round trip."""
    assert decode_message(encode_message(message)) == message
