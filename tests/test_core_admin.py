"""Tests for the DBA admin operations."""

import pytest

from repro.core import DrivolutionAdmin, DriverSigner
from repro.core.constants import ExpirationPolicy, RenewPolicy
from repro.dbapi.driver_factory import build_pydb_driver
from repro.errors import DrivolutionError


class TestAdmin:
    def test_requires_at_least_one_server(self):
        with pytest.raises(DrivolutionError):
            DrivolutionAdmin([])

    def test_install_grants_permission_with_policies(self, single_db_env):
        env = single_db_env
        record = env.admin.install_driver(
            build_pydb_driver("pydb-1.0.0"),
            database=env.database_name,
            lease_time_ms=5_000,
            renew_policy=RenewPolicy.RENEW,
            expiration_policy=ExpirationPolicy.AFTER_CLOSE,
        )
        assert record.driver_name == "pydb-1.0.0"
        permissions = env.drivolution.registry.list_permissions()
        assert permissions[-1].lease_time_in_ms == 5_000
        assert permissions[-1].renew_policy == RenewPolicy.RENEW
        assert permissions[-1].expiration_policy == ExpirationPolicy.AFTER_CLOSE
        assert env.admin.installed_drivers()[env.drivolution.server_id] == ["pydb-1.0.0"]

    def test_install_signs_packages_when_signer_configured(self, single_db_env):
        env = single_db_env
        signer = DriverSigner(b"key")
        env.admin.signer = signer
        record = env.admin.install_driver(build_pydb_driver("signed"), database=env.database_name)
        stored = env.drivolution.registry.get_driver(record.driver_id_on(env.drivolution))
        assert stored.signature is not None
        assert signer.verify(stored)

    def test_push_upgrade_expires_old_driver(self, single_db_env):
        env = single_db_env
        old = env.admin.install_driver(build_pydb_driver("v1"), database=env.database_name)
        env.admin.push_upgrade(build_pydb_driver("v2"), old_record=old, database=env.database_name)
        active_permissions = env.drivolution.registry.query_permissions(
            env.database_name, None, None
        )
        active_driver_ids = {permission.driver_id for permission in active_permissions}
        assert old.driver_id_on(env.drivolution) not in active_driver_ids

    def test_remove_driver_deletes_rows(self, single_db_env):
        env = single_db_env
        record = env.admin.install_driver(build_pydb_driver("gone"), database=env.database_name)
        env.admin.remove_driver(record.driver_ids)
        assert env.admin.installed_drivers()[env.drivolution.server_id] == []

    def test_operation_log_counts_steps(self, single_db_env):
        env = single_db_env
        before = env.admin.step_count()
        record = env.admin.install_driver(build_pydb_driver("a"), database=env.database_name)
        env.admin.revoke_driver(record.driver_ids)
        assert env.admin.step_count() == before + 2
