"""Tests for driver packages: encoding, decoding, signing, tampering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BinaryFormat, DriverPackage, DriverSigner, PackageError

SOURCE = "DRIVER_NAME = 'x'\n\ndef connect(url, **options):\n    return url\n"


class TestEncodingFormats:
    def test_pysrc_roundtrip(self):
        package = DriverPackage.from_source("d", "PYDB-API", SOURCE, binary_format=BinaryFormat.PYSRC)
        assert package.decode_source() == SOURCE
        assert package.size_bytes == len(SOURCE.encode("utf-8"))

    def test_zlib_roundtrip_and_smaller_for_repetitive_source(self):
        repetitive = SOURCE + "# padding\n" * 200
        plain = DriverPackage.from_source("d", "PYDB-API", repetitive, binary_format=BinaryFormat.PYSRC)
        compressed = DriverPackage.from_source(
            "d", "PYDB-API", repetitive, binary_format=BinaryFormat.PYSRC_ZLIB
        )
        assert compressed.decode_source() == repetitive
        assert compressed.size_bytes < plain.size_bytes

    def test_unsupported_format(self):
        with pytest.raises(PackageError):
            DriverPackage.from_source("d", "PYDB-API", SOURCE, binary_format="JAR")
        package = DriverPackage(name="d", api_name="A", binary_code=b"x", binary_format="JAR")
        with pytest.raises(PackageError):
            package.decode_source()

    def test_corrupt_zlib(self):
        package = DriverPackage(
            name="d", api_name="A", binary_code=b"not zlib", binary_format=BinaryFormat.PYSRC_ZLIB
        )
        with pytest.raises(PackageError):
            package.decode_source()

    def test_version_string_and_fingerprint(self):
        package = DriverPackage.from_source("d", "A", SOURCE, driver_version=(2, 1, 3))
        assert package.version_string == "2.1.3"
        assert package.fingerprint() == package.fingerprint()
        assert package.fingerprint() != package.tampered().fingerprint()


class TestWireSerialisation:
    def test_roundtrip(self):
        package = DriverPackage.from_source(
            "d", "PYDB-API", SOURCE, api_version=(3, 0), platform="cpython-any",
            driver_version=(1, 2, 3), metadata={"extensions": ["gis"]},
        )
        restored = DriverPackage.from_wire(package.to_wire())
        assert restored == package

    def test_malformed_wire(self):
        with pytest.raises(PackageError):
            DriverPackage.from_wire({"name": "d"})


class TestSigning:
    def test_sign_and_verify(self):
        signer = DriverSigner(b"secret")
        package = DriverPackage.from_source("d", "A", SOURCE).signed_by(signer)
        assert signer.verify(package)
        signer.require_valid(package)

    def test_unsigned_fails_verification(self):
        signer = DriverSigner(b"secret")
        package = DriverPackage.from_source("d", "A", SOURCE)
        assert not signer.verify(package)
        with pytest.raises(PackageError):
            signer.require_valid(package)

    def test_tampered_code_fails_verification(self):
        signer = DriverSigner(b"secret")
        package = DriverPackage.from_source("d", "A", SOURCE).signed_by(signer)
        tampered = package.tampered()
        assert not signer.verify(tampered)

    def test_different_key_fails_verification(self):
        package = DriverPackage.from_source("d", "A", SOURCE).signed_by(DriverSigner(b"key1"))
        assert not DriverSigner(b"key2").verify(package)

    def test_empty_secret_rejected(self):
        with pytest.raises(PackageError):
            DriverSigner(b"")


@settings(max_examples=50, deadline=None)
@given(
    st.text(min_size=0, max_size=300),
    st.sampled_from([BinaryFormat.PYSRC, BinaryFormat.PYSRC_ZLIB]),
)
def test_property_source_roundtrip(source, binary_format):
    """Any source text survives encode → wire → decode for both formats."""
    package = DriverPackage.from_source("p", "API", source, binary_format=binary_format)
    assert DriverPackage.from_wire(package.to_wire()).decode_source() == source
