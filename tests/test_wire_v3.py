"""Protocol v3: multiplexed sessions, pipelining, correlation rules and
the negotiation edges (docs/wire.md).

The promises under test: a v3 driver against a v2 (or multiplexing-off)
controller silently downgrades to one-channel-per-connection; a v2
driver against a v3 controller is served exactly as before; malformed
``session_id``/``request_id`` frames are answered with an error instead
of hanging a pool worker; logical sessions multiplexed over one channel
are accounted exactly; pipelined statements come back in order; group
commit and the front-end thread bounds hold.
"""

import threading
import time

import pytest

from repro.cluster import Controller, ControllerConfig
from repro.cluster.broadcaster import WriteBroadcaster
from repro.cluster.driver import ClusterDriverRuntime
from repro.cluster.wire import (
    CLUSTER_PROTOCOL_VERSION,
    MULTIPLEX_MIN_VERSION,
    ClusterMessageType,
    ClusterWireError,
    correlate,
    make_connect,
    make_connect_ok,
    make_execute,
    make_result,
    make_session_open,
)
from repro.dbapi import ProgrammingError
from repro.errors import TransportError
from repro.netsim import InMemoryNetwork
from repro.netsim.transport import ChannelServer


@pytest.fixture
def cluster_env():
    from repro.experiments.environments import build_cluster

    env = build_cluster(replicas=2, controllers=2)
    yield env
    env.close()


def _controller_by_id(env, controller_id):
    for controller in env.controllers:
        if controller.config.controller_id == controller_id:
            return controller
    raise AssertionError(f"no controller {controller_id!r}")


class TestCorrelation:
    def test_valid_frame(self):
        message = make_execute("SELECT 1", session_id="s1", request_id=7)
        assert correlate(message) == ("s1", 7)

    def test_session_close_needs_no_request_id(self):
        assert correlate({"session_id": "s1"}, require_request_id=False) == ("s1", None)

    @pytest.mark.parametrize(
        "session_id", [None, "", 42, True, ["s1"]], ids=["missing", "empty", "int", "bool", "list"]
    )
    def test_bad_session_id_raises(self, session_id):
        message = {"type": ClusterMessageType.EXECUTE, "request_id": 1}
        if session_id is not None:
            message["session_id"] = session_id
        with pytest.raises(ClusterWireError):
            correlate(message)

    @pytest.mark.parametrize(
        "request_id",
        [None, "7", True, 0, -3, 2**63],
        ids=["missing", "str", "bool", "zero", "negative", "overflow"],
    )
    def test_bad_request_id_raises(self, request_id):
        message = {"type": ClusterMessageType.EXECUTE, "session_id": "s1"}
        if request_id is not None:
            message["request_id"] = request_id
        with pytest.raises(ClusterWireError):
            correlate(message)

    def test_connect_carries_multiplex_only_when_asked(self):
        plain = make_connect("vdb", None, None, CLUSTER_PROTOCOL_VERSION)
        assert "multiplex" not in plain
        asked = make_connect("vdb", None, None, CLUSTER_PROTOCOL_VERSION, multiplex=True)
        assert asked["multiplex"] is True

    def test_connect_ok_carries_grant_only_when_granted(self):
        assert "multiplexing" not in make_connect_ok("c1", 3, "s")
        assert make_connect_ok("c1", 3, "s", multiplexing=True)["multiplexing"] is True

    def test_make_result_skips_copy_for_wire_shaped_rows(self):
        shaped = [[1], [2]]
        assert make_result(["n"], shaped, 2)["rows"] is shaped
        assert make_result(["n"], [(1,)], 1)["rows"] == [[1]]


class TestNegotiationEdges:
    def test_v3_driver_v2_controller_downgrades_silently(self, cluster_env):
        # An old controller never sees the ``multiplex`` key's meaning —
        # unknown CONNECT keys are ignored — and its CONNECT_OK carries
        # no grant, so the driver runs the dedicated v2 path untouched.
        env = cluster_env
        old = _controller_by_id(env, env.controllers[0].config.controller_id)
        old.stop()
        old.config.protocol_version = MULTIPLEX_MIN_VERSION - 1
        old.start()
        driver = ClusterDriverRuntime(name="v3-driver")
        connection = driver.connect(
            f"sequoia://{old.address}/vdb", network=env.network
        )
        assert not connection.multiplexed
        assert driver.mux_channel_count() == 0
        cursor = connection.cursor()
        cursor.execute("CREATE TABLE v3v2_t (id INTEGER PRIMARY KEY)")
        cursor.execute("SELECT COUNT(*) FROM v3v2_t")
        assert cursor.fetchone() == (0,)
        connection.close()

    def test_multiplexing_off_controller_downgrades_silently(self):
        from repro.experiments.environments import build_cluster

        env = build_cluster(
            replicas=1, controllers=1, controller_options={"multiplexing": False}
        )
        try:
            driver = ClusterDriverRuntime(name="mux-off-driver")
            connection = driver.connect(env.client_url(), network=env.network)
            assert not connection.multiplexed
            cursor = connection.cursor()
            cursor.execute("CREATE TABLE off_t (id INTEGER PRIMARY KEY)")
            cursor.execute("SELECT COUNT(*) FROM off_t")
            assert cursor.fetchone() == (0,)
            connection.close()
        finally:
            env.close()

    def test_v2_driver_v3_controller_served_dedicated(self, cluster_env):
        env = cluster_env
        driver = ClusterDriverRuntime(
            name="v2-driver", protocol_version=MULTIPLEX_MIN_VERSION - 1
        )
        connection = driver.connect(env.client_url(), network=env.network)
        assert not connection.multiplexed
        cursor = connection.cursor()
        cursor.execute("CREATE TABLE v2v3_t (id INTEGER PRIMARY KEY)")
        cursor.execute("INSERT INTO v2v3_t (id) VALUES (1)")
        cursor.execute("SELECT COUNT(*) FROM v2v3_t")
        assert cursor.fetchone() == (1,)
        connection.close()

    def test_driver_option_disables_multiplexing(self, cluster_env):
        env = cluster_env
        driver = ClusterDriverRuntime(name="opt-out-driver")
        connection = driver.connect(
            env.client_url(), network=env.network, multiplexing=False
        )
        assert not connection.multiplexed
        assert driver.mux_channel_count() == 0
        connection.close()


def _mux_handshake(env, controller):
    """Raw v3 handshake on a fresh channel; returns the granted channel."""
    channel = env.network.connect(controller.address, timeout=2.0)
    channel.send(
        make_connect("vdb", None, None, CLUSTER_PROTOCOL_VERSION, multiplex=True)
    )
    reply = channel.recv(timeout=5.0)
    assert reply["type"] == ClusterMessageType.CONNECT_OK
    assert reply["multiplexing"] is True
    return channel


class TestMalformedCorrelation:
    def test_bad_request_id_answered_not_hung(self, cluster_env):
        env = cluster_env
        channel = _mux_handshake(env, env.controllers[0])
        message = make_execute("SELECT 1")
        message["session_id"] = "ghost"
        message["request_id"] = "not-an-int"
        channel.send(message)
        reply = channel.recv(timeout=5.0)
        assert reply["type"] == ClusterMessageType.ERROR
        assert reply["code"] == "bad_correlation"
        channel.close()

    def test_bad_session_id_answered_not_hung(self, cluster_env):
        env = cluster_env
        channel = _mux_handshake(env, env.controllers[0])
        message = make_execute("SELECT 1")
        message["session_id"] = ""
        message["request_id"] = 1
        channel.send(message)
        reply = channel.recv(timeout=5.0)
        assert reply["type"] == ClusterMessageType.ERROR
        assert reply["code"] == "bad_correlation"
        channel.close()

    def test_unknown_session_error_is_correlated(self, cluster_env):
        # The error must carry the offending correlation so a real driver
        # fails exactly the right pending request instead of timing out.
        env = cluster_env
        channel = _mux_handshake(env, env.controllers[0])
        message = make_execute("SELECT 1", session_id="never-opened", request_id=9)
        channel.send(message)
        reply = channel.recv(timeout=5.0)
        assert reply["type"] == ClusterMessageType.ERROR
        assert reply["code"] == "unknown_session"
        assert reply["session_id"] == "never-opened"
        assert reply["request_id"] == 9
        channel.close()

    def test_duplicate_session_open_rejected(self, cluster_env):
        env = cluster_env
        channel = _mux_handshake(env, env.controllers[0])
        channel.send(make_session_open("dup", 1))
        assert channel.recv(timeout=5.0)["type"] == ClusterMessageType.SESSION_OPEN_OK
        channel.send(make_session_open("dup", 2))
        reply = channel.recv(timeout=5.0)
        assert reply["type"] == ClusterMessageType.ERROR
        assert reply["code"] == "session_exists"
        channel.close()

    def test_malformed_frames_do_not_occupy_workers(self, cluster_env):
        # Garbage correlation is answered by the channel's reader thread;
        # the worker pool must stay free to serve well-formed sessions.
        env = cluster_env
        controller = env.controllers[0]
        channel = _mux_handshake(env, controller)
        for index in range(20):
            bad = make_execute("SELECT 1")
            bad["session_id"] = index  # int, not str
            bad["request_id"] = 1
            channel.send(bad)
        for _ in range(20):
            assert channel.recv(timeout=5.0)["code"] == "bad_correlation"
        driver = ClusterDriverRuntime(name="still-alive")
        connection = driver.connect(env.client_url(), network=env.network)
        cursor = connection.cursor()
        cursor.execute("SELECT 1")
        assert cursor.fetchone() == (1,)
        connection.close()
        channel.close()


class TestMultiplexedSessions:
    def test_sessions_share_one_physical_channel(self, cluster_env):
        env = cluster_env
        driver = ClusterDriverRuntime(name="share-driver")
        url = f"sequoia://{env.controllers[0].address}/vdb"
        connections = [
            driver.connect(url, network=env.network) for _ in range(10)
        ]
        assert all(connection.multiplexed for connection in connections)
        assert driver.mux_channel_count() == 1
        controller = env.controllers[0]
        assert controller.stats()["active_sessions"] == 10
        assert controller.stats()["front_end"]["mux_channels"] == 1
        # Sessions are independent: each sees its own results.
        cursor = connections[0].cursor()
        cursor.execute("CREATE TABLE share_t (id INTEGER PRIMARY KEY)")
        for index, connection in enumerate(connections):
            c = connection.cursor()
            c.execute("INSERT INTO share_t (id) VALUES ($i)", {"i": index})
        cursor.execute("SELECT COUNT(*) FROM share_t")
        assert cursor.fetchone() == (10,)
        for connection in connections:
            connection.close()
        # Last session out closes the shared channel (no leaked readers).
        assert driver.mux_channel_count() == 0
        deadline = time.time() + 2.0
        while controller.stats()["active_sessions"] and time.time() < deadline:
            time.sleep(0.01)
        assert controller.stats()["active_sessions"] == 0

    def test_transactions_are_per_logical_session(self, cluster_env):
        env = cluster_env
        driver = ClusterDriverRuntime(name="tx-mux-driver")
        url = f"sequoia://{env.controllers[0].address}/vdb"
        a = driver.connect(url, network=env.network)
        b = driver.connect(url, network=env.network)
        assert a.multiplexed and b.multiplexed and driver.mux_channel_count() == 1
        cursor_a = a.cursor()
        cursor_a.execute("CREATE TABLE tx_mux_t (id INTEGER PRIMARY KEY)")
        a.begin()
        cursor_a.execute("INSERT INTO tx_mux_t (id) VALUES (1)")
        # b is NOT inside a's transaction: its reads run at autocommit.
        cursor_b = b.cursor()
        cursor_b.execute("SELECT 1")
        assert cursor_b.fetchone() == (1,)
        a.rollback()
        cursor_b.execute("SELECT COUNT(*) FROM tx_mux_t")
        assert cursor_b.fetchone() == (0,)
        a.close()
        b.close()

    def test_abandoned_mux_transaction_rolled_back_on_channel_death(self, cluster_env):
        env = cluster_env
        controller = env.controllers[0]
        channel = _mux_handshake(env, controller)
        channel.send(make_session_open("doomed", 1))
        assert channel.recv(timeout=5.0)["type"] == ClusterMessageType.SESSION_OPEN_OK
        channel.send(make_execute("BEGIN", session_id="doomed", request_id=2))
        assert channel.recv(timeout=5.0)["type"] == ClusterMessageType.RESULT
        assert controller.stats()["active_sessions"] == 1
        channel.close()
        deadline = time.time() + 2.0
        while controller.stats()["active_sessions"] and time.time() < deadline:
            time.sleep(0.01)
        assert controller.stats()["active_sessions"] == 0
        # The rollback released the cluster-wide transaction: a new
        # autocommit write is logged immediately, not buffered.
        scheduler_stats = controller.scheduler.stats()
        assert scheduler_stats["open_transactions"] == 0


class TestPipelining:
    def test_pipeline_results_in_order(self, cluster_env):
        env = cluster_env
        driver = ClusterDriverRuntime(name="pipe-driver")
        connection = driver.connect(env.client_url(), network=env.network)
        assert connection.multiplexed
        connection.execute_pipeline(
            ["CREATE TABLE pipe_t (id INTEGER PRIMARY KEY, v INTEGER)"]
        )
        inserts = [
            ("INSERT INTO pipe_t (id, v) VALUES ($i, $v)", {"i": n, "v": n * 10})
            for n in range(20)
        ]
        replies = connection.execute_pipeline(inserts)
        assert len(replies) == 20
        replies = connection.execute_pipeline(
            [("SELECT v FROM pipe_t WHERE id = $i", {"i": n}) for n in range(20)]
        )
        assert [reply["rows"] for reply in replies] == [[[n * 10]] for n in range(20)]
        connection.close()

    def test_pipeline_rejects_transaction_control(self, cluster_env):
        env = cluster_env
        driver = ClusterDriverRuntime(name="pipe-tx-driver")
        connection = driver.connect(env.client_url(), network=env.network)
        with pytest.raises(ProgrammingError):
            connection.execute_pipeline(["BEGIN", "SELECT 1"])
        connection.close()

    def test_pipeline_on_dedicated_connection_falls_back(self, cluster_env):
        env = cluster_env
        driver = ClusterDriverRuntime(name="pipe-ded-driver")
        connection = driver.connect(
            env.client_url(), network=env.network, multiplexing=False
        )
        assert not connection.multiplexed
        replies = connection.execute_pipeline(["SELECT 1", "SELECT 2"])
        assert [reply["rows"] for reply in replies] == [[[1]], [[2]]]
        connection.close()


class TestMuxFailover:
    def test_mux_connection_fails_over_when_controller_dies(self, cluster_env):
        env = cluster_env
        driver = ClusterDriverRuntime(name="mux-fo-driver")
        connection = driver.connect(env.client_url(), network=env.network)
        assert connection.multiplexed
        cursor = connection.cursor()
        cursor.execute("CREATE TABLE mux_fo_t (id INTEGER PRIMARY KEY)")
        dead = _controller_by_id(env, connection.controller_id)
        dead.stop()
        env.network.kill_endpoint(dead.address)
        cursor.execute("SELECT COUNT(*) FROM mux_fo_t")
        assert cursor.fetchone() == (0,)
        assert connection.failovers == 1
        assert connection.multiplexed  # re-attached multiplexed elsewhere
        assert connection.controller_id != dead.config.controller_id
        connection.close()

    def test_channel_death_fails_all_sessions_then_each_recovers(self, cluster_env):
        env = cluster_env
        # Sessions spread over both controllers (round-robin host pick);
        # killing one controller must fail over exactly the sessions on
        # its channel while the rest keep working undisturbed.
        driver = ClusterDriverRuntime(name="mux-herd-driver")
        connections = [
            driver.connect(env.client_url(), network=env.network) for _ in range(6)
        ]
        assert all(connection.multiplexed for connection in connections)
        first = connections[0]
        cursor = first.cursor()
        cursor.execute("CREATE TABLE herd_t (id INTEGER PRIMARY KEY)")
        victim = env.controllers[0]
        doomed = sum(
            1
            for connection in connections
            if connection.controller_id == victim.config.controller_id
        )
        victim.stop()
        env.network.kill_endpoint(victim.address)
        for connection in connections:
            c = connection.cursor()
            c.execute("SELECT COUNT(*) FROM herd_t")
            assert c.fetchone() == (0,)
        assert sum(connection.failovers for connection in connections) == doomed
        survivor_id = env.controllers[1].config.controller_id
        assert all(
            connection.controller_id == survivor_id for connection in connections
        )
        for connection in connections:
            connection.close()


class TestChannelServerFrontEnd:
    def test_dead_handler_threads_are_reaped(self):
        net = InMemoryNetwork()

        def handler(channel):
            channel.recv(timeout=2.0)

        server = ChannelServer(net.listen("svc:1"), handler, name="reap").start()
        try:
            for _ in range(30):
                client = net.connect("svc:1")
                client.send({"bye": True})
                client.close()
            deadline = time.time() + 5.0
            while server.handler_thread_count() > 5 and time.time() < deadline:
                time.sleep(0.02)
            # The thread list must not grow one dead entry per historical
            # connection: finished handlers are reaped on each accept.
            assert server.handler_thread_count() <= 5
        finally:
            server.stop()

    def test_worker_pool_mode_bounds_threads(self):
        net = InMemoryNetwork()
        served = []

        def handler(channel):
            message = channel.recv(timeout=2.0)
            served.append(message["n"])
            channel.send({"ok": message["n"]})

        server = ChannelServer(
            net.listen("svc:1"), handler, name="pooled", workers=4
        ).start()
        try:
            clients = [net.connect("svc:1") for _ in range(12)]
            for index, client in enumerate(clients):
                client.send({"n": index})
            for index, client in enumerate(clients):
                assert client.recv(timeout=5.0) == {"ok": index}
            assert server.handler_thread_count() <= 4
            assert sorted(served) == list(range(12))
        finally:
            server.stop()


class TestBroadcasterAutoSizing:
    def test_pool_grows_to_fan_out(self):
        broadcaster = WriteBroadcaster(parallel=True)
        try:
            stats = broadcaster.stats()
            assert stats["auto_sized"] is True
            assert stats["effective_max_workers"] == WriteBroadcaster.DEFAULT_MAX_WORKERS
            executor = broadcaster._get_executor(fan_out=12)
            assert executor is not None
            assert broadcaster.stats()["effective_max_workers"] == 12
            # Grow-only: a narrower broadcast does not shrink the pool.
            broadcaster._get_executor(fan_out=3)
            assert broadcaster.stats()["effective_max_workers"] == 12
        finally:
            broadcaster.close()

    def test_explicit_cap_stays_fixed(self):
        broadcaster = WriteBroadcaster(parallel=True, max_workers=2)
        try:
            broadcaster._get_executor(fan_out=16)
            stats = broadcaster.stats()
            assert stats["auto_sized"] is False
            assert stats["max_workers"] == 2
            assert stats["effective_max_workers"] == 2
        finally:
            broadcaster.close()

    def test_scheduler_stats_surface_broadcast_pool(self, cluster_env):
        stats = cluster_env.controllers[0].scheduler.stats()
        assert "broadcast" in stats
        assert stats["broadcast"]["effective_max_workers"] >= 1
        assert stats["broadcast"] == stats["broadcaster"]


class TestGroupCommitUnit:
    def test_append_batch_matches_single_appends(self, tmp_path):
        from repro.cluster.recovery import FileLogStore, RecoveryLog

        single = RecoveryLog(FileLogStore(str(tmp_path / "single"), fsync_on_append=True))
        batched = RecoveryLog(FileLogStore(str(tmp_path / "batched"), fsync_on_append=True))
        specs = [
            (f"UPDATE t{n % 2} SET v = {n}", {"n": n}, [f"t{n % 2}"]) for n in range(6)
        ]
        for sql, params, tables in specs:
            single.append(sql, params, write_tables=tables)
        entries = batched.append_batch(specs)
        assert [entry.index for entry in entries] == [
            entry.index for entry in single.entries_after(0)
        ]
        assert [entry.table_seqs for entry in entries] == [
            entry.table_seqs for entry in single.entries_after(0)
        ]
        # Batch tail fsync: one sync for the whole batch vs one each.
        assert batched.store.stats()["fsyncs"] < single.store.stats()["fsyncs"]
        single.close()
        batched.close()

    def test_wait_durable_batches_concurrent_writers(self, tmp_path):
        from repro.cluster.recovery import FileLogStore, GroupCommit, RecoveryLog

        store = FileLogStore(str(tmp_path / "log"), fsync_on_append=False)
        log = RecoveryLog(store)
        coordinator = GroupCommit(log)
        errors = []

        def writer(index):
            try:
                for n in range(20):
                    entry = log.append(
                        f"UPDATE w{index} SET v = {n}", write_tables=[f"w{index}"]
                    )
                    coordinator.wait_durable(entry.index)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = coordinator.stats()
        assert stats["synced_appends"] == 120
        assert stats["flushed_through"] == log.last_index
        # Batching actually happened: fewer fsync groups than appends.
        assert stats["groups"] <= store.stats()["fsyncs"]
        assert store.stats()["fsyncs"] < 120
        log.close()

    def test_failed_flush_does_not_claim_durability(self, tmp_path):
        from repro.cluster.recovery import FileLogStore, GroupCommit, RecoveryLog

        store = FileLogStore(str(tmp_path / "log"), fsync_on_append=False)
        log = RecoveryLog(store)
        coordinator = GroupCommit(log)
        entry = log.append("UPDATE t SET v = 1", write_tables=["t"])

        original_flush = log.flush
        calls = []

        def failing_flush():
            calls.append(True)
            if len(calls) == 1:
                raise OSError("disk went away")
            original_flush()

        log.flush = failing_flush
        with pytest.raises(OSError):
            coordinator.wait_durable(entry.index)
        assert coordinator.stats()["flushed_through"] == 0
        # The next waiter becomes a fresh leader and succeeds.
        coordinator.wait_durable(entry.index)
        assert coordinator.stats()["flushed_through"] >= entry.index
        log.close()

    def test_controller_group_commit_gated_by_config(self, tmp_path):
        network = InMemoryNetwork()
        durable = Controller(
            ControllerConfig(
                controller_id="gc-on",
                log_dir=str(tmp_path / "gc-on"),
                log_fsync=True,
                group_commit=True,
            ),
            network,
            "gc-on:25322",
            backends=[],
        )
        assert durable.group_commit is not None
        # The store must not double-pay: fsync rides the group flush.
        assert durable.recovery_log.store.fsync_on_append is False
        plain = Controller(
            ControllerConfig(
                controller_id="gc-off",
                log_dir=str(tmp_path / "gc-off"),
                log_fsync=True,
                group_commit=False,
            ),
            network,
            "gc-off:25322",
            backends=[],
        )
        assert plain.group_commit is None
        assert plain.recovery_log.store.fsync_on_append is True
        memory_only = Controller(
            ControllerConfig(controller_id="gc-mem", group_commit=True),
            network,
            "gc-mem:25322",
            backends=[],
        )
        # No durable log -> nothing to group; the coordinator stays off.
        assert memory_only.group_commit is None
