"""Tests for the license server (Section 5.4.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clock import SimulatedClock
from repro.core.license_server import LicenseError, LicensePolicy, LicenseServer


@pytest.fixture
def clock():
    return SimulatedClock()


class TestDynamicLicensing:
    def test_pool_exhaustion_and_release(self, clock):
        server = LicenseServer(["L1", "L2"], lease_time_ms=1_000, clock=clock)
        server.acquire("app1")
        server.acquire("app2")
        with pytest.raises(LicenseError):
            server.acquire("app3")
        assert server.stats.denials == 1
        assert server.release("app1")
        grant = server.acquire("app3")
        assert grant.license_key == "L1"
        assert server.available_count() == 0

    def test_reacquire_renews_same_key(self, clock):
        server = LicenseServer(["L1"], lease_time_ms=1_000, clock=clock)
        first = server.acquire("app1")
        clock.advance(0.5)
        second = server.acquire("app1")
        assert second.license_key == first.license_key
        assert second.expires_at > first.granted_at + 1.0

    def test_crash_reclamation_via_lease_expiry(self, clock):
        server = LicenseServer(["L1"], lease_time_ms=1_000, clock=clock)
        server.acquire("crashy")
        with pytest.raises(LicenseError):
            server.acquire("other")
        clock.advance(2.0)
        assert server.reclaim_expired() >= 0  # reclaim may already have run inside acquire
        grant = server.acquire("other")
        assert grant.license_key == "L1"

    def test_renew_extends_lease(self, clock):
        server = LicenseServer(["L1"], lease_time_ms=1_000, clock=clock)
        server.acquire("app1")
        clock.advance(0.9)
        server.renew("app1")
        clock.advance(0.9)
        assert server.active_grants()[0].client_id == "app1"

    def test_renew_without_grant(self, clock):
        server = LicenseServer(["L1"], lease_time_ms=1_000, clock=clock)
        with pytest.raises(LicenseError):
            server.renew("ghost")

    def test_release_unknown_client(self, clock):
        server = LicenseServer(["L1"], clock=clock)
        assert server.release("ghost") is False


class TestStaticLicensing:
    def test_static_assignment(self, clock):
        server = LicenseServer(
            ["L1", "L2"],
            policy=LicensePolicy.STATIC,
            lease_time_ms=1_000,
            clock=clock,
            static_assignments={"app1": "L1", "app2": "L2"},
        )
        assert server.acquire("app1").license_key == "L1"
        assert server.acquire("app2").license_key == "L2"
        with pytest.raises(LicenseError):
            server.acquire("app3")

    def test_static_assignment_must_reference_known_keys(self, clock):
        with pytest.raises(LicenseError):
            LicenseServer(
                ["L1"], policy=LicensePolicy.STATIC, clock=clock, static_assignments={"a": "L9"}
            )

    def test_empty_pool_rejected(self, clock):
        with pytest.raises(LicenseError):
            LicenseServer([], clock=clock)


@settings(max_examples=40, deadline=None)
@given(
    pool=st.integers(min_value=1, max_value=8),
    clients=st.integers(min_value=1, max_value=20),
)
def test_property_never_oversubscribed(pool, clients):
    """At no point are more licenses active than the pool holds."""
    clock = SimulatedClock()
    server = LicenseServer([f"L{i}" for i in range(pool)], lease_time_ms=1_000, clock=clock)
    granted = 0
    for index in range(clients):
        try:
            server.acquire(f"client-{index}")
            granted += 1
        except LicenseError:
            pass
        assert len(server.active_grants()) <= pool
    assert granted == min(pool, clients)
