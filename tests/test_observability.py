"""Observability subsystem (docs/observability.md): per-statement
tracing, the unified metrics registry, slow-query capture and the
exporters.

The promises under test: a traced statement over a multiplexed v3
channel yields a span tree covering queue/classify/lock/execute/
log_append/fsync_wait whose summed stage times bracket the
driver-observed latency; with ``tracing=False`` the statement path
allocates no trace objects and every frame stays byte-identical to the
pre-tracing encoding; the registry's snapshot never tears under
concurrent writers (counters monotone, histogram merge loss-free); and
the Prometheus text the controller exports round-trips through the
strict parser.
"""

import threading
import time

import pytest

from repro.cluster import Controller, ControllerConfig
from repro.cluster.backend import Backend
from repro.cluster.driver import ClusterDriverRuntime
from repro.cluster.wire import (
    CLUSTER_PROTOCOL_VERSION,
    ClusterMessageType,
    attach_trace,
    make_connect,
    make_connect_ok,
    make_error,
    make_execute,
    make_result,
)
from repro.netsim import InMemoryNetwork
from repro.obs import (
    MetricsRegistry,
    SlowQueryLog,
    Span,
    StreamingHistogram,
    Trace,
    parse_prometheus_text,
    redact_sql,
    render_json,
    render_prometheus,
    sanitize_metric_name,
)


# ---------------------------------------------------------------------------
# Trace / Span
# ---------------------------------------------------------------------------


class TestTrace:
    def test_span_context_manager_records_duration_and_attrs(self):
        trace = Trace()
        with trace.span("lock", kind="table") as span:
            span.set(extra=1)
        recorded = trace.find("lock")
        assert recorded is not None
        assert recorded.attrs == {"kind": "table", "extra": 1}
        assert recorded.duration >= 0.0

    def test_span_context_manager_marks_errors(self):
        trace = Trace()
        with pytest.raises(ValueError):
            with trace.span("execute"):
                raise ValueError("boom")
        assert trace.find("execute").attrs["error"] == "ValueError"

    def test_begin_end_across_threads(self):
        trace = Trace()
        trace.begin("queue", session="s1")
        done = threading.Event()

        def worker():
            trace.end("queue", drained=True)
            done.set()

        threading.Thread(target=worker).start()
        assert done.wait(5.0)
        span = trace.find("queue")
        assert span.attrs == {"session": "s1", "drained": True}

    def test_end_without_begin_is_a_noop(self):
        trace = Trace()
        trace.end("never-started")
        assert trace.spans() == []

    def test_record_uses_raw_monotonic_readings(self):
        trace = Trace()
        now = time.monotonic()
        trace.record("replica:db1", now, now + 0.25, parent="execute", backend="db1")
        span = trace.find("replica:db1")
        assert span.parent == "execute"
        assert span.duration == pytest.approx(0.25, abs=1e-6)

    def test_finish_seals_open_spans_as_unfinished(self):
        trace = Trace()
        trace.begin("lock")
        trace.finish()
        span = trace.find("lock")
        assert span.attrs.get("unfinished") is True
        # Idempotent: a second finish neither re-seals nor extends.
        total = trace.finish()
        assert trace.finish() == total

    def test_stage_seconds_sums_top_level_spans_only(self):
        trace = Trace()
        now = time.monotonic()
        trace.record("lock", now, now + 0.1)
        trace.record("lock", now + 0.2, now + 0.3)  # a retry: summed
        trace.record("replica:db1", now, now + 0.5, parent="execute")
        stages = trace.stage_seconds()
        assert stages["lock"] == pytest.approx(0.2, abs=1e-6)
        assert "replica:db1" not in stages

    def test_tree_nests_children_under_parents(self):
        trace = Trace()
        now = time.monotonic()
        trace.record("execute", now, now + 0.5)
        trace.record("replica:db1", now, now + 0.4, parent="execute")
        trace.record("replica:db2", now, now + 0.5, parent="execute")
        roots = trace.tree()
        execute = next(node for node in roots if node["name"] == "execute")
        assert {child["name"] for child in execute["children"]} == {
            "replica:db1",
            "replica:db2",
        }

    def test_wire_round_trip(self):
        trace = Trace()
        now = time.monotonic()
        trace.record("execute", now, now + 0.123, backend="db1")
        wire = trace.to_wire()
        spans = Trace.spans_from_wire(wire)
        assert len(spans) == 1
        assert isinstance(spans[0], Span)
        assert spans[0].name == "execute"
        assert spans[0].duration == pytest.approx(0.123, abs=1e-3)
        assert spans[0].attrs == {"backend": "db1"}

    def test_trace_id_honoured_and_generated(self):
        assert Trace(trace_id="abc").trace_id == "abc"
        assert Trace().trace_id != Trace().trace_id


# ---------------------------------------------------------------------------
# StreamingHistogram / MetricsRegistry
# ---------------------------------------------------------------------------


class TestStreamingHistogram:
    def test_quantiles_track_known_distribution(self):
        histogram = StreamingHistogram()
        values = [i / 1000.0 for i in range(1, 1001)]  # 1ms .. 1s uniform
        for value in values:
            histogram.observe(value)
        assert histogram.count == 1000
        assert histogram.sum == pytest.approx(sum(values), rel=1e-9)
        # Bucket width is 15%, so allow that relative error.
        assert histogram.quantile(0.50) == pytest.approx(0.5, rel=0.2)
        assert histogram.quantile(0.99) == pytest.approx(0.99, rel=0.2)

    def test_quantiles_clamped_to_observed_extremes(self):
        histogram = StreamingHistogram()
        histogram.observe(0.031)
        snap = histogram.snapshot()
        assert snap["p50"] == snap["p99"] == pytest.approx(0.031)
        assert snap["min"] == snap["max"] == pytest.approx(0.031)

    def test_merge_equals_union(self):
        left, right, union = (
            StreamingHistogram(),
            StreamingHistogram(),
            StreamingHistogram(),
        )
        first = [0.001 * i for i in range(1, 200)]
        second = [0.01 * i for i in range(1, 100)]
        for value in first:
            left.observe(value)
            union.observe(value)
        for value in second:
            right.observe(value)
            union.observe(value)
        left.merge(right)
        assert left.count == union.count
        assert left.sum == pytest.approx(union.sum, rel=1e-9)
        for q in (0.5, 0.9, 0.95, 0.99):
            assert left.quantile(q) == pytest.approx(union.quantile(q), rel=1e-9)

    def test_negative_observations_clamp_to_zero(self):
        histogram = StreamingHistogram()
        histogram.observe(-1.0)
        assert histogram.count == 1
        assert histogram.sum == 0.0

    def test_empty_histogram_snapshot(self):
        snap = StreamingHistogram().snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None and snap["max"] is None
        assert snap["p99"] == 0.0


class TestMetricsRegistry:
    def test_instruments_are_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_counter_is_monotone(self):
        counter = MetricsRegistry().counter("a")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_failing_collector_does_not_kill_snapshot(self):
        registry = MetricsRegistry()

        def bad():
            raise RuntimeError("subsystem down")

        registry.register_collector("bad", bad)
        registry.register_collector("good", lambda: {"x": 1})
        snap = registry.snapshot()
        assert snap["subsystems"]["bad"] == {"error": "RuntimeError"}
        assert snap["subsystems"]["good"] == {"x": 1}

    def test_unregister_collector(self):
        registry = MetricsRegistry()
        registry.register_collector("s", lambda: {"x": 1})
        registry.unregister_collector("s")
        assert registry.snapshot()["subsystems"] == {}

    def test_flattened_shapes(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(3)
        registry.gauge("depth").set(2.5)
        registry.histogram("lat").observe(0.1)
        registry.register_collector(
            "sub", lambda: {"a": 1, "flag": True, "name": "skipped", "nested": {"b": 2}}
        )
        samples = dict(registry.flattened())
        assert samples["hits_total"] == 3.0
        assert samples["depth"] == 2.5
        assert samples["lat_count"] == 1.0
        assert samples["sub_a"] == 1.0
        assert samples["sub_flag"] == 1.0
        assert samples["sub_nested_b"] == 2.0
        assert "sub_name" not in samples  # strings are not samples

    def test_no_torn_reads_under_concurrent_writers(self):
        """Snapshots taken while writers hammer the instruments must be
        internally consistent: counters monotone across successive
        snapshots, histogram count/sum nondecreasing, and quantiles
        always inside [min, max]."""
        registry = MetricsRegistry()
        counter = registry.counter("ops")
        histogram = registry.histogram("lat")
        stop = threading.Event()
        per_writer = 3000
        writers = 4

        def writer(seed: int):
            for i in range(per_writer):
                counter.inc()
                histogram.observe(0.001 * ((seed + i) % 50 + 1))

        threads = [threading.Thread(target=writer, args=(n,)) for n in range(writers)]
        snapshots = []

        def reader():
            while not stop.is_set():
                snapshots.append(registry.snapshot())

        reader_thread = threading.Thread(target=reader)
        reader_thread.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        reader_thread.join(timeout=10.0)
        snapshots.append(registry.snapshot())

        previous_count = previous_hist = -1
        previous_sum = -1.0
        for snap in snapshots:
            count = snap["counters"]["ops"]
            assert count >= previous_count, "counter went backwards"
            previous_count = count
            hist = snap["histograms"]["lat"]
            assert hist["count"] >= previous_hist
            previous_hist = hist["count"]
            assert hist["sum"] >= previous_sum - 1e-9
            previous_sum = hist["sum"]
            if hist["count"]:
                assert hist["min"] <= hist["p50"] <= hist["max"]
                assert hist["min"] <= hist["p99"] <= hist["max"]
        assert snapshots[-1]["counters"]["ops"] == writers * per_writer
        assert snapshots[-1]["histograms"]["lat"]["count"] == writers * per_writer


# ---------------------------------------------------------------------------
# Slow-query log
# ---------------------------------------------------------------------------


class TestSlowQueryLog:
    def test_redaction_replaces_literals(self):
        assert (
            redact_sql("INSERT INTO users VALUES (42, 'alice', 3.14)")
            == "INSERT INTO users VALUES (?, ?, ?)"
        )
        # Escaped quotes stay inside one placeholder.
        assert redact_sql("SELECT 'it''s 42'") == "SELECT ?"
        assert redact_sql("SELECT col1 FROM t2") == "SELECT col1 FROM t2"

    def test_keeps_the_slowest_within_capacity(self):
        log = SlowQueryLog(capacity=3)
        for index, duration in enumerate([0.01, 0.05, 0.02, 0.08, 0.001]):
            log.record(f"SELECT {index}", duration)
        entries = log.entries()
        assert [entry["duration_ms"] for entry in entries] == [80.0, 50.0, 20.0]
        assert log.stats()["recorded"] == 5
        assert log.stats()["captured"] == 3

    def test_threshold_filters_fast_statements(self):
        log = SlowQueryLog(capacity=8, threshold_ms=10.0)
        assert not log.record("SELECT 1", 0.005)
        assert log.record("SELECT 2", 0.015)
        assert log.stats()["recorded"] == 1

    def test_entry_shape(self):
        log = SlowQueryLog()
        log.record(
            "SELECT 9", 0.2, stages={"execute": 0.15}, trace_id="t1", command="SELECT"
        )
        (entry,) = log.entries()
        assert entry["sql"] == "SELECT ?"
        assert entry["duration_ms"] == 200.0
        assert entry["stages_ms"] == {"execute": 150.0}
        assert entry["trace_id"] == "t1"
        assert entry["attrs"] == {"command": "SELECT"}

    def test_clear(self):
        log = SlowQueryLog()
        log.record("SELECT 1", 0.1)
        log.clear()
        assert log.entries() == []


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------


class TestExporters:
    def test_prometheus_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("served").inc(7)
        registry.histogram("lat").observe(0.25)
        registry.register_collector("sub", lambda: {"queue depth": 3})
        text = render_prometheus(registry.flattened())
        parsed = parse_prometheus_text(text)
        assert parsed["repro_served_total"] == 7.0
        assert parsed["repro_lat_count"] == 1.0
        assert parsed["repro_sub_queue_depth"] == 3.0

    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("a.b-c d") == "a_b_c_d"
        assert sanitize_metric_name("9lives").startswith("_")

    def test_counter_suffix_gets_counter_type(self):
        text = render_prometheus([("x_total", 1.0), ("y", 2.0)])
        assert "# TYPE repro_x_total counter" in text
        assert "# TYPE repro_y gauge" in text

    @pytest.mark.parametrize(
        "bad",
        [
            "metric 1 2 3",
            "1badname 4",
            "ok 4\nok 5",  # duplicate sample
            "# TYPE short",
            "name notanumber",
        ],
    )
    def test_parser_rejects_malformed_text(self, bad):
        with pytest.raises(ValueError):
            parse_prometheus_text(bad)

    def test_render_json_is_stable_and_parseable(self):
        import json

        registry = MetricsRegistry()
        registry.counter("a").inc()
        text = render_json(registry.snapshot())
        assert json.loads(text)["counters"]["a"] == 1


# ---------------------------------------------------------------------------
# Wire negotiation and frame byte-identity
# ---------------------------------------------------------------------------


class TestWireTracingFields:
    def test_untraced_frames_keep_exact_shape(self):
        assert set(make_execute("SELECT 1", {})) == {"type", "sql", "params"}
        assert set(make_connect("vdb", None, None, 3)) == {
            "type",
            "virtual_database",
            "user",
            "password",
            "protocol_version",
            "options",
        }
        assert "tracing" not in make_connect_ok("c1", 3, "s1")
        assert "tracing" not in make_connect_ok("c1", 3, "s1", multiplexing=True)

    def test_traced_frames_add_only_the_optional_fields(self):
        assert make_connect("vdb", None, None, 3, trace=True)["trace"] is True
        assert make_execute("SELECT 1", {}, trace_id="t1")["trace_id"] == "t1"
        assert make_connect_ok("c1", 3, "s1", tracing=True)["tracing"] is True

    def test_attach_trace_with_no_spans_is_identity(self):
        reply = make_result(["v"], [[1]], 1)
        before = dict(reply)
        assert attach_trace(reply, []) is reply
        assert reply == before
        attach_trace(reply, None)
        assert reply == before

    def test_attach_trace_carries_span_dicts(self):
        reply = make_error("execution_failed", "boom")
        spans = [{"name": "execute", "start_ms": 0.0, "duration_ms": 1.0}]
        assert attach_trace(reply, spans)["trace"] == spans


# ---------------------------------------------------------------------------
# End to end: controller + driver
# ---------------------------------------------------------------------------


def _slow_connection_factory(delay_s: float):
    """A fake DB-API connection whose every statement takes ``delay_s``,
    so backend execution dominates the traced statement and the
    stage-sum-vs-driver-latency bracket is meaningful."""

    class _Cursor:
        description = [("v", None, None, None, None, None, None)]
        rowcount = 1

        def execute(self, sql, params=None):
            time.sleep(delay_s)

        def fetchall(self):
            return [[1]]

        def close(self):
            pass

    class _Connection:
        threadsafety = 2
        closed = False
        driver_info = {"name": "slow-fake"}

        def cursor(self):
            return _Cursor()

        def commit(self):
            pass

        def rollback(self):
            pass

        def close(self):
            self.closed = True

    return _Connection


@pytest.fixture
def traced_cluster(tmp_path):
    """One controller with tracing + durable group-commit log over two
    latency-injected fake backends, plus a tracing driver connection."""
    network = InMemoryNetwork()
    factory = _slow_connection_factory(0.04)
    config = ControllerConfig(
        controller_id="obs-ctrl",
        virtual_database="vdb",
        tracing=True,
        log_dir=str(tmp_path / "log"),
        log_fsync=True,
        group_commit=True,
        # A small gather window so the batch-rider test reliably coalesces
        # the concurrent writers instead of racing 1-statement rounds.
        write_batch_window_ms=5.0,
    )
    controller = Controller(
        config,
        network,
        "obs-ctrl:25322",
        backends=[Backend("db1", factory), Backend("db2", factory)],
    ).start()
    runtime = ClusterDriverRuntime(name="obs-test")
    connection = runtime.connect(
        "sequoia://obs-ctrl:25322/vdb", network=network, trace="true"
    )
    yield controller, connection
    connection.close()
    controller.stop()


class TestEndToEnd:
    def test_span_tree_brackets_driver_latency(self, traced_cluster):
        """The acceptance criterion: over a multiplexed v3 channel, a
        traced write's span tree covers queue/classify/lock/execute/
        log_append/fsync_wait and the summed top-level stage times
        bracket the driver-observed latency."""
        controller, connection = traced_cluster
        assert connection.multiplexed and connection.tracing
        cursor = connection.cursor()
        cursor.execute("INSERT INTO events VALUES (1, 'a')")
        trace = connection.last_trace
        assert trace is not None and trace["spans"], "spans must ride the RESULT frame"
        spans = Trace.spans_from_wire(trace["spans"])
        names = {span.name for span in spans}
        assert {"queue", "classify", "lock", "execute", "log_append", "fsync_wait"} <= names
        # Per-replica children hang under the execute span, named after
        # their backend.
        replica_spans = [span for span in spans if span.name.startswith("replica:")]
        assert {span.name for span in replica_spans} == {"replica:db1", "replica:db2"}
        assert all(span.parent == "execute" for span in replica_spans)
        # Stage sum vs driver latency: stages are disjoint wall-clock
        # intervals inside the driver's observation window, so their sum
        # can never exceed it (epsilon for wire-field ms rounding), and
        # with a 40ms injected backend delay they must dominate it.
        stage_sum = sum(span.duration for span in spans if span.parent is None)
        driver_latency = trace["latency_s"]
        assert stage_sum <= driver_latency + 0.002
        assert stage_sum >= 0.5 * driver_latency
        assert stage_sum >= 0.04  # the injected backend delay is in there

    def test_read_trace_has_execute_without_lock(self, traced_cluster):
        controller, connection = traced_cluster
        cursor = connection.cursor()
        cursor.execute("INSERT INTO events VALUES (1, 'a')")
        cursor.execute("SELECT * FROM events")
        names = {
            span.name for span in Trace.spans_from_wire(connection.last_trace["spans"])
        }
        assert "execute" in names and "queue" in names
        assert "lock" not in names and "log_append" not in names

    def test_slow_log_and_registry_capture_the_workload(self, traced_cluster):
        controller, connection = traced_cluster
        cursor = connection.cursor()
        cursor.execute("INSERT INTO events VALUES (1, 'secret-string')")
        cursor.execute("SELECT * FROM events")
        entries = controller.slow_queries.entries()
        assert entries, "zero threshold must capture every statement"
        assert all("secret-string" not in entry["sql"] for entry in entries)
        insert_entry = next(e for e in entries if e["sql"].startswith("INSERT"))
        assert "execute" in insert_entry["stages_ms"]
        obs = controller.stats()["obs"]
        assert obs["tracing"] is True
        assert obs["traced_statements"] == 2
        assert obs["statement_latency"]["count"] == 2
        parsed = parse_prometheus_text(controller.metrics_text())
        assert parsed["repro_traced_statements_total"] == 2.0
        assert parsed["repro_statement_latency_seconds_count"] == 2.0

    def test_stats_and_registry_snapshot_agree(self, traced_cluster):
        controller, connection = traced_cluster
        connection.cursor().execute("INSERT INTO events VALUES (1, 'a')")
        stats = controller.stats()
        snapshot = controller.metrics_snapshot()
        assert snapshot["subsystems"]["scheduler"].keys() == stats["scheduler"].keys()
        assert (
            snapshot["subsystems"]["front_end"]["server_busy_rejections"]
            == stats["front_end"]["server_busy_rejections"]
        )
        assert (
            snapshot["subsystems"]["controller"]["statements_served"]
            == stats["statements_served"]
        )

    def test_batch_riders_attribute_their_wait_to_the_leader(self, traced_cluster):
        """Concurrent auto-commit writers coalesced by the WriteBatcher:
        a rider's trace shows a ``batch_wait`` stage naming the leader's
        trace id instead of silently missing that time."""
        controller, connection = traced_cluster
        errors = []

        def writer(offset):
            try:
                runtime = ClusterDriverRuntime(name=f"w{offset}")
                conn = runtime.connect(
                    "sequoia://obs-ctrl:25322/vdb",
                    network=controller.network,
                    trace="true",
                )
                cursor = conn.cursor()
                for index in range(4):
                    cursor.execute(
                        f"INSERT INTO events VALUES ({offset + index}, 'x')"
                    )
                conn.close()
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(100 * n,)) for n in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        waits = [
            entry
            for entry in controller.slow_queries.entries()
            if "batch_wait" in entry["stages_ms"]
        ]
        assert waits, "overlapping same-table writers must produce riders"
        # The scheduler's write batcher really coalesced rounds.
        assert controller.stats()["scheduler"]["write_batching"]["batched_statements"] > 0

    def test_v2_client_gets_no_tracing_grant(self, traced_cluster):
        controller, _ = traced_cluster
        channel = controller.network.connect("obs-ctrl:25322", timeout=5.0)
        channel.send(
            make_connect("vdb", None, None, 2, trace=True)
        )
        reply = channel.recv(timeout=5.0)
        assert reply["type"] == ClusterMessageType.CONNECT_OK
        assert "tracing" not in reply
        channel.close()

    def test_untraced_execute_on_traced_controller_keeps_frame_shape(
        self, traced_cluster
    ):
        """config.tracing=True still traces server-side (slow log), but
        a reply to an EXECUTE with no trace_id carries no span list."""
        controller, _ = traced_cluster
        channel = controller.network.connect("obs-ctrl:25322", timeout=5.0)
        channel.send(make_connect("vdb", None, None, CLUSTER_PROTOCOL_VERSION))
        reply = channel.recv(timeout=5.0)
        assert reply["type"] == ClusterMessageType.CONNECT_OK
        channel.send(make_execute("SELECT * FROM events", {}))
        result = channel.recv(timeout=10.0)
        assert result["type"] == ClusterMessageType.RESULT
        assert set(result) == {"type", "columns", "rows", "rowcount"}
        channel.close()


class TestTracingOffIsFree:
    def test_no_trace_objects_allocated_when_off(self, tmp_path, monkeypatch):
        """With ``tracing=False`` the statement path must never touch the
        Trace class at all — constructing one anywhere aborts the test."""
        import repro.cluster.controller as controller_module

        class _Boom:
            def __init__(self, *args, **kwargs):
                raise AssertionError("Trace allocated with tracing off")

        monkeypatch.setattr(controller_module, "Trace", _Boom)
        network = InMemoryNetwork()
        factory = _slow_connection_factory(0.0)
        controller = Controller(
            ControllerConfig(controller_id="off-ctrl", virtual_database="vdb"),
            network,
            "off-ctrl:25322",
            backends=[Backend("db1", factory)],
        ).start()
        runtime = ClusterDriverRuntime(name="off-test")
        # Even a client *asking* for tracing gets no grant and no traces.
        connection = runtime.connect(
            "sequoia://off-ctrl:25322/vdb", network=network, trace="true"
        )
        try:
            assert connection.tracing is False
            cursor = connection.cursor()
            cursor.execute("INSERT INTO events VALUES (1, 'a')")
            cursor.execute("SELECT * FROM events")
            assert connection.last_trace is None
            assert controller.stats()["obs"]["traced_statements"] == 0
            assert controller.slow_queries.entries() == []
        finally:
            connection.close()
            controller.stop()
