"""Unit tests for the SQL parser."""

import pytest

from repro.sqlengine.errors import SqlParseError
from repro.sqlengine.parser import parse
from repro.sqlengine.statements import (
    Begin,
    Commit,
    CreateTable,
    Delete,
    DropTable,
    Insert,
    Rollback,
    Select,
    Update,
)
from repro.sqlengine.types import SqlType


class TestCreateTable:
    def test_basic(self):
        statement = parse(
            "CREATE TABLE drivers (driver_id INTEGER NOT NULL PRIMARY KEY, api_name VARCHAR NOT NULL)"
        )
        assert isinstance(statement, CreateTable)
        assert statement.schema.column("driver_id").primary_key
        assert statement.schema.column("api_name").not_null
        assert statement.schema.column("api_name").sql_type == SqlType.VARCHAR

    def test_if_not_exists(self):
        statement = parse("CREATE TABLE IF NOT EXISTS t (x INTEGER)")
        assert statement.if_not_exists

    def test_schema_qualified_name(self):
        statement = parse("CREATE TABLE information_schema.drivers (x INTEGER)")
        assert statement.table.key() == "information_schema.drivers"

    def test_references(self):
        statement = parse(
            "CREATE TABLE p (driver_id INTEGER NOT NULL REFERENCES drivers(driver_id))"
        )
        fk = statement.schema.column("driver_id").references
        assert fk is not None
        assert fk.table == "drivers"
        assert fk.column == "driver_id"

    def test_varchar_length_ignored(self):
        statement = parse("CREATE TABLE t (name VARCHAR(255))")
        assert statement.schema.column("name").sql_type == SqlType.VARCHAR


class TestSelect:
    def test_star(self):
        statement = parse("SELECT * FROM drivers")
        assert isinstance(statement, Select)
        assert statement.items[0].star

    def test_projection_with_where(self):
        statement = parse(
            "SELECT binary_format, binary_code FROM drivers WHERE api_name LIKE $api"
        )
        assert len(statement.items) == 2
        assert statement.where is not None

    def test_paper_sample_code_1_shape(self):
        sql = (
            "SELECT binary_format, binary_code FROM information_schema.drivers "
            "WHERE api_name LIKE $client_api_name "
            "AND (platform IS NULL OR platform LIKE $client_platform) "
            "AND ($client_api_version IS NULL OR api_version_major IS NULL "
            "OR $client_api_version = api_version_major)"
        )
        statement = parse(sql)
        assert statement.table.key() == "information_schema.drivers"

    def test_order_by_and_limit(self):
        statement = parse("SELECT * FROM t ORDER BY a DESC, b LIMIT 5")
        assert statement.order_by[0].descending
        assert not statement.order_by[1].descending
        assert statement.limit == 5

    def test_aggregate_count_star(self):
        statement = parse("SELECT COUNT(*) FROM t")
        assert statement.items[0].aggregate == "COUNT"
        assert statement.items[0].expression is None

    def test_aggregate_max_with_alias(self):
        statement = parse("SELECT MAX(driver_id) AS max_id FROM drivers")
        assert statement.items[0].aggregate == "MAX"
        assert statement.items[0].alias == "max_id"

    def test_mixing_aggregates_checked_at_execution(self):
        # Parsing succeeds; the executor rejects the mix.
        statement = parse("SELECT COUNT(*), api_name FROM t")
        assert isinstance(statement, Select)

    def test_select_without_from(self):
        statement = parse("SELECT 1")
        assert statement.table is None

    def test_limit_requires_integer(self):
        with pytest.raises(SqlParseError):
            parse("SELECT * FROM t LIMIT 'five'")


class TestInsertUpdateDelete:
    def test_insert_with_columns(self):
        statement = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert isinstance(statement, Insert)
        assert statement.columns == ["a", "b"]
        assert len(statement.rows) == 2

    def test_insert_without_columns(self):
        statement = parse("INSERT INTO t VALUES (1, 2)")
        assert statement.columns == []

    def test_update(self):
        statement = parse("UPDATE t SET a = 1, b = $value WHERE id = 3")
        assert isinstance(statement, Update)
        assert [name for name, _ in statement.assignments] == ["a", "b"]
        assert statement.where is not None

    def test_delete(self):
        statement = parse("DELETE FROM t WHERE id = 1")
        assert isinstance(statement, Delete)

    def test_delete_without_where(self):
        statement = parse("DELETE FROM t")
        assert statement.where is None


class TestTransactionsAndDrop:
    def test_begin_commit_rollback(self):
        assert isinstance(parse("BEGIN"), Begin)
        assert isinstance(parse("START TRANSACTION"), Begin)
        assert isinstance(parse("COMMIT"), Commit)
        assert isinstance(parse("ROLLBACK"), Rollback)

    def test_drop_table(self):
        statement = parse("DROP TABLE IF EXISTS t")
        assert isinstance(statement, DropTable)
        assert statement.if_exists


class TestErrors:
    def test_empty_statement(self):
        with pytest.raises(SqlParseError):
            parse("   ")

    def test_unsupported_statement(self):
        with pytest.raises(SqlParseError):
            parse("GRANT ALL ON t TO user")

    def test_trailing_garbage(self):
        with pytest.raises(SqlParseError):
            parse("SELECT * FROM t garbage garbage")

    def test_missing_values_keyword(self):
        with pytest.raises(SqlParseError):
            parse("INSERT INTO t (a) (1)")
