"""Tests for the DB-API layer: URLs, runtime driver behaviour, cursors, pool."""

import pytest

from repro.dbapi import ConnectionPool, InterfaceError, OperationalError, parse_url
from repro.dbapi.runtime import RuntimeDriver
from repro.dbserver import DatabaseServer, ServerConfig
from repro.netsim import InMemoryNetwork
from repro.sqlengine import Engine


class TestUrls:
    def test_basic(self):
        url = parse_url("pydb://host:5432/mydb")
        assert url.scheme == "pydb"
        assert url.hosts == ("host:5432",)
        assert url.database == "mydb"

    def test_multi_host(self):
        url = parse_url("sequoia://c1:25322,c2:25322/vdb")
        assert url.hosts == ("c1:25322", "c2:25322")
        assert url.primary_host == "c1:25322"

    def test_options(self):
        url = parse_url("pydb://h:1/db?network=default&feature=gis")
        assert url.options == {"network": "default", "feature": "gis"}

    def test_render_roundtrip(self):
        original = "pydb://h:1/db?a=1&b=2"
        assert parse_url(parse_url(original).render()).options == {"a": "1", "b": "2"}

    def test_with_database(self):
        url = parse_url("pydb://h:1/db").with_database("other")
        assert url.database == "other"

    def test_invalid_urls(self):
        for bad in ("no-scheme", "pydb://", "://host/db", 42):
            with pytest.raises(InterfaceError):
                parse_url(bad)


@pytest.fixture
def db(network):
    engine = Engine(name="dbapi")
    engine.create_database("appdb")
    server = DatabaseServer(engine, network, "dbapi:5432", ServerConfig(name="dbapi")).start()
    connection = RuntimeDriver().connect("pydb://dbapi:5432/appdb", network=network)
    cursor = connection.cursor()
    cursor.execute("CREATE TABLE t (id INTEGER NOT NULL PRIMARY KEY, v VARCHAR)")
    cursor.close()
    connection.close()
    yield network, engine
    server.stop()


class TestRuntimeConnection:
    def test_cursor_fetch_interfaces(self, db):
        network, _engine = db
        connection = RuntimeDriver().connect("pydb://dbapi:5432/appdb", network=network)
        cursor = connection.cursor()
        for index in range(5):
            cursor.execute("INSERT INTO t (id, v) VALUES ($id, 'x')", {"id": index + 1})
        cursor.execute("SELECT id FROM t ORDER BY id")
        assert cursor.rowcount == 5
        assert cursor.description[0][0] == "id"
        assert cursor.fetchone() == (1,)
        assert cursor.fetchmany(2) == [(2,), (3,)]
        assert cursor.fetchall() == [(4,), (5,)]
        assert cursor.fetchone() is None
        connection.close()

    def test_cursor_iteration_and_executemany(self, db):
        network, _engine = db
        connection = RuntimeDriver().connect("pydb://dbapi:5432/appdb", network=network)
        cursor = connection.cursor()
        cursor.executemany(
            "INSERT INTO t (id, v) VALUES ($id, $v)",
            [{"id": 10, "v": "a"}, {"id": 11, "v": "b"}],
        )
        cursor.execute("SELECT v FROM t ORDER BY id")
        assert [row[0] for row in cursor] == ["a", "b"]
        connection.close()

    def test_transactions_and_in_transaction_flag(self, db):
        network, _engine = db
        connection = RuntimeDriver().connect("pydb://dbapi:5432/appdb", network=network)
        assert not connection.in_transaction
        connection.begin()
        assert connection.in_transaction
        cursor = connection.cursor()
        cursor.execute("INSERT INTO t (id, v) VALUES (1, 'tx')")
        connection.rollback()
        assert not connection.in_transaction
        cursor.execute("SELECT COUNT(*) FROM t")
        assert cursor.fetchone() == (0,)
        connection.close()

    def test_close_rolls_back_open_transaction(self, db):
        network, _engine = db
        connection = RuntimeDriver().connect("pydb://dbapi:5432/appdb", network=network)
        connection.begin()
        cursor = connection.cursor()
        cursor.execute("INSERT INTO t (id, v) VALUES (1, 'tx')")
        connection.close()
        check = RuntimeDriver().connect("pydb://dbapi:5432/appdb", network=network)
        cursor = check.cursor()
        cursor.execute("SELECT COUNT(*) FROM t")
        assert cursor.fetchone() == (0,)
        check.close()

    def test_closed_connection_rejects_use(self, db):
        network, _engine = db
        connection = RuntimeDriver().connect("pydb://dbapi:5432/appdb", network=network)
        connection.close()
        with pytest.raises(InterfaceError):
            connection.cursor()

    def test_preconfigured_url_overrides_application_url(self, db):
        network, _engine = db
        preconfigured = RuntimeDriver(preconfigured_url="pydb://dbapi:5432/appdb")
        # The application names a host that does not exist; the driver
        # ignores it (paper Section 5.2).
        connection = preconfigured.connect("pydb://ignored-host:1/ignored", network=network)
        cursor = connection.cursor()
        cursor.execute("SELECT 1")
        assert cursor.fetchone() == (1,)
        connection.close()

    def test_driver_info_and_supports(self, db):
        network, _engine = db
        driver = RuntimeDriver(name="pydb-x", driver_version=(3, 1, 4), extensions=["gis"])
        connection = driver.connect("pydb://dbapi:5432/appdb", network=network)
        assert connection.driver_info["name"] == "pydb-x"
        assert connection.driver_info["driver_version"] == (3, 1, 4)
        assert connection.supports("gis")
        assert not connection.supports("nls-fr")
        connection.close()

    def test_open_connections_tracking(self, db):
        network, _engine = db
        driver = RuntimeDriver()
        connections = [driver.connect("pydb://dbapi:5432/appdb", network=network) for _ in range(3)]
        assert len(driver.open_connections()) == 3
        driver.close_all()
        assert driver.open_connections() == []
        assert all(connection.closed for connection in connections)


class TestConnectionPool:
    def _factory(self, db):
        network, _engine = db

        def factory():
            return RuntimeDriver().connect("pydb://dbapi:5432/appdb", network=network)

        return factory

    def test_acquire_release_reuses_connections(self, db):
        pool = ConnectionPool(self._factory(db), min_size=1, max_size=3)
        first = pool.acquire()
        pool.release(first)
        second = pool.acquire()
        assert second is first  # reused, not closed
        pool.release(second)
        pool.close()

    def test_max_size_enforced(self, db):
        pool = ConnectionPool(self._factory(db), max_size=2)
        a = pool.acquire()
        b = pool.acquire()
        with pytest.raises(OperationalError):
            pool.acquire(timeout=0.05)
        pool.release(a)
        c = pool.acquire(timeout=1.0)
        assert c is a
        pool.release(b)
        pool.release(c)
        pool.close()

    def test_release_foreign_connection_rejected(self, db):
        pool = ConnectionPool(self._factory(db), max_size=2)
        foreign = self._factory(db)()
        with pytest.raises(InterfaceError):
            pool.release(foreign)
        foreign.close()
        pool.close()

    def test_invalidate_idle_replenishes_to_min_size(self, db):
        pool = ConnectionPool(self._factory(db), min_size=2, max_size=4)
        stale = pool.acquire()
        pool.release(stale)
        assert pool.invalidate_idle() == 2
        # The floor is maintained with fresh connections, not left empty.
        assert pool.stats()["idle"] == 2
        fresh = pool.acquire()
        assert fresh is not stale
        assert not fresh.closed
        pool.release(fresh)
        pool.close()

    def test_invalidate_idle_without_floor_leaves_pool_empty(self, db):
        pool = ConnectionPool(self._factory(db), min_size=0, max_size=4)
        pool.release(pool.acquire())
        assert pool.invalidate_idle() == 1
        assert pool.stats()["idle"] == 0
        pool.close()

    def test_pool_never_shrinks_below_min_size(self, db):
        pool = ConnectionPool(self._factory(db), min_size=2, max_size=4)
        # Kill the idle connections behind the pool's back.
        first = pool.acquire()
        second = pool.acquire()
        first.close()
        second.close()
        pool.release(first)
        pool.release(second)
        stats = pool.stats()
        assert stats["idle"] + stats["busy"] == 2
        # Acquiring still works and hands out live connections.
        replacement = pool.acquire()
        assert not replacement.closed
        pool.release(replacement)
        pool.close()

    def test_acquire_replaces_dead_idle_connections(self, db):
        pool = ConnectionPool(self._factory(db), min_size=1, max_size=2)
        victim = pool.acquire()
        victim.close()
        pool.release(victim)  # dropped: closed connections never go idle
        connection = pool.acquire()
        assert not connection.closed
        stats = pool.stats()
        assert stats["idle"] + stats["busy"] >= 1
        assert stats["min_size"] == 1
        pool.release(connection)
        pool.close()

    def test_pool_close_rejects_acquire(self, db):
        pool = ConnectionPool(self._factory(db), max_size=2)
        pool.close()
        with pytest.raises(InterfaceError):
            pool.acquire()

    def test_invalid_sizing(self, db):
        with pytest.raises(ValueError):
            ConnectionPool(self._factory(db), min_size=5, max_size=2)

    def test_closed_connection_not_returned_to_pool(self, db):
        pool = ConnectionPool(self._factory(db), max_size=2)
        connection = pool.acquire()
        connection.close()
        pool.release(connection)
        assert pool.stats()["idle"] == 0
        pool.close()
