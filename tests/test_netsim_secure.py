"""Tests for the simulated secure channel: certificates, handshake, tampering."""

import threading

import pytest

from repro.netsim import CertificateAuthority, InMemoryNetwork, SecureChannel, SecureChannelError
from repro.netsim.secure import Certificate


@pytest.fixture
def net():
    return InMemoryNetwork()


@pytest.fixture
def ca():
    return CertificateAuthority(name="test-ca", secret=b"ca-secret")


def _secure_pair(net, ca, server_cert, expected_subject=None):
    """Open a secure client/server channel pair over the in-memory network."""
    listener = net.listen("secure:1")
    result = {}

    def server_side():
        channel = listener.accept(timeout=2.0)
        result["server"] = SecureChannel.server_handshake(channel, server_cert, authority=ca)

    thread = threading.Thread(target=server_side)
    thread.start()
    client_channel = net.connect("secure:1")
    client = SecureChannel.client_handshake(
        client_channel, ca, expected_subject=expected_subject
    )
    thread.join(timeout=2.0)
    listener.close()
    return client, result["server"]


class TestCertificates:
    def test_issue_and_verify(self, ca):
        cert = ca.issue("drivolution-server")
        assert ca.verify(cert)

    def test_forged_certificate_rejected(self, ca):
        forged = Certificate(subject="drivolution-server", issuer="test-ca", fingerprint="0" * 64)
        assert not ca.verify(forged)

    def test_other_authority_rejected(self, ca):
        other = CertificateAuthority(name="evil-ca", secret=b"evil")
        cert = other.issue("drivolution-server")
        assert not ca.verify(cert)

    def test_wire_roundtrip(self, ca):
        cert = ca.issue("x")
        assert Certificate.from_wire(cert.to_wire()) == cert

    def test_malformed_wire_certificate(self):
        with pytest.raises(SecureChannelError):
            Certificate.from_wire({"subject": "x"})


class TestSecureChannel:
    def test_handshake_and_exchange(self, net, ca):
        client, server = _secure_pair(net, ca, ca.issue("drivolution-server"))
        client.send({"driver": b"code"})
        assert server.recv(timeout=1.0) == {"driver": b"code"}
        server.send({"ok": True})
        assert client.recv(timeout=1.0) == {"ok": True}

    def test_client_rejects_untrusted_server(self, net, ca):
        rogue_ca = CertificateAuthority(name="rogue", secret=b"rogue")
        with pytest.raises(SecureChannelError):
            _secure_pair(net, ca, rogue_ca.issue("drivolution-server"))

    def test_client_pins_expected_subject(self, net, ca):
        with pytest.raises(SecureChannelError):
            _secure_pair(net, ca, ca.issue("impostor"), expected_subject="drivolution-server")

    def test_tampered_payload_detected(self, net, ca):
        listener = net.listen("tamper:1")
        captured = {}

        def server_side():
            channel = listener.accept(timeout=2.0)
            secure = SecureChannel.server_handshake(channel, ca.issue("server"), authority=ca)
            captured["raw_channel"] = channel
            captured["secure"] = secure

        thread = threading.Thread(target=server_side)
        thread.start()
        raw_client = net.connect("tamper:1")
        client = SecureChannel.client_handshake(raw_client, ca)
        thread.join(timeout=2.0)
        listener.close()

        # A man in the middle rewrites the encrypted frame body in transit:
        # simulate by sending a secure_data frame with a modified body and a
        # stale MAC directly on the raw channel.
        client.send({"driver": b"genuine"})
        intercepted = captured["raw_channel"].recv(timeout=1.0)
        # Frame forwarded unmodified still verifies.
        assert intercepted["type"] == "secure_data"
        tampered_body = intercepted["body"] + b"malicious"
        raw_client_again = captured["raw_channel"]
        # Server receives a tampered copy: MAC check must fail.
        raw_client_again_send = {"type": "secure_data", "body": tampered_body, "mac": intercepted["mac"]}
        # Deliver the tampered frame to the server's secure channel by
        # sending it from the client side of the raw connection.
        raw_client.send(raw_client_again_send)
        with pytest.raises(SecureChannelError):
            captured["secure"].recv(timeout=1.0)

    def test_server_requires_client_certificate(self, net, ca):
        listener = net.listen("mutual:1")
        errors = []

        def server_side():
            channel = listener.accept(timeout=2.0)
            try:
                SecureChannel.server_handshake(
                    channel, ca.issue("server"), authority=ca, require_client_certificate=True
                )
            except SecureChannelError as exc:
                errors.append(exc)

        thread = threading.Thread(target=server_side)
        thread.start()
        raw = net.connect("mutual:1")
        raw.send({"type": "secure_hello", "nonce": b"n"})
        thread.join(timeout=2.0)
        listener.close()
        assert errors, "server should reject a client without a certificate"
