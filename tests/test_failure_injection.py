"""Failure injection and concurrency scenarios across the full stack."""

import threading

import pytest

from repro.core import BootloaderConfig
from repro.core.bootloader import BootloaderError
from repro.dbapi.driver_factory import build_pydb_driver
from repro.experiments.environments import build_cluster, build_single_database


class TestDrivolutionServerFailures:
    def test_bootstrap_fails_cleanly_when_everything_is_down(self, single_db_env):
        env = single_db_env
        env.admin.install_driver(build_pydb_driver("d"), database=env.database_name)
        env.network.kill_endpoint(env.db_address)
        bootloader = env.new_bootloader(BootloaderConfig())
        with pytest.raises(BootloaderError):
            bootloader.connect(env.url)
        env.network.revive_endpoint(env.db_address)
        connection = bootloader.connect(env.url)
        assert not connection.closed
        connection.close()

    def test_failover_to_second_drivolution_server(self, single_db_env):
        from repro.core import DrivolutionAdmin, DrivolutionServer, StandaloneServerBinding

        env = single_db_env
        backup = DrivolutionServer(
            StandaloneServerBinding(clock=env.clock),
            network=env.network,
            address="drivolution-backup:8000",
            clock=env.clock,
            server_id="drivo-backup",
        ).start()
        DrivolutionAdmin([backup]).install_driver(
            build_pydb_driver("backup-driver"), database=env.database_name, lease_time_ms=1_000
        )
        # Primary (in-database) has no driver and the first configured server
        # is unreachable: the bootloader falls through the server list.
        bootloader = env.new_bootloader(
            BootloaderConfig(drivolution_servers=["drivolution-dead:8000", "drivolution-backup:8000"])
        )
        connection = bootloader.connect(env.url)
        assert bootloader.driver_info()["driver_name"] == "backup-driver"
        assert bootloader.current_lease.server_id == "drivo-backup"
        connection.close()
        backup.stop()

    def test_slow_network_still_bootstraps(self, single_db_env):
        env = single_db_env
        env.admin.install_driver(build_pydb_driver("d"), database=env.database_name)
        env.network.set_latency(0.005)
        bootloader = env.new_bootloader(BootloaderConfig())
        connection = bootloader.connect(env.url)
        assert not connection.closed
        connection.close()
        env.network.set_latency(0.0)


class TestConcurrentClients:
    def test_many_bootloaders_upgrade_concurrently(self, single_db_env):
        env = single_db_env
        record = env.admin.install_driver(
            build_pydb_driver("conc-v1", driver_version=(1, 0, 0)),
            database=env.database_name,
            lease_time_ms=1_000,
        )
        bootloaders = [env.new_bootloader(BootloaderConfig()) for _ in range(8)]
        for bootloader in bootloaders:
            bootloader.connect(env.url).close()
        env.admin.push_upgrade(
            build_pydb_driver("conc-v2", driver_version=(2, 0, 0)),
            old_record=record,
            database=env.database_name,
            lease_time_ms=1_000,
        )
        env.clock.advance(2.0)
        outcomes = [None] * len(bootloaders)

        def check(index):
            outcomes[index] = bootloaders[index].check_for_update()

        threads = [threading.Thread(target=check, args=(i,)) for i in range(len(bootloaders))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert outcomes.count("upgraded") == len(bootloaders)
        assert {b.driver_info()["driver_name"] for b in bootloaders} == {"conc-v2"}
        # Every client got its own lease; the server logged them all.
        new_driver_id = list(
            env.drivolution.registry.query_permissions(env.database_name, None, None)
        )[0].driver_id
        assert env.drivolution.leases.active_lease_count(new_driver_id) == len(bootloaders)

    def test_concurrent_traffic_during_upgrade_on_cluster(self, cluster_env):
        """Traffic keeps flowing while the cluster driver is upgraded."""
        from repro.core import Bootloader
        from repro.dbapi.driver_factory import build_sequoia_driver
        from repro.workloads import ClientApplication, WorkloadSpec

        env = cluster_env
        env.controllers[0].install_driver_cluster_wide(
            build_sequoia_driver("seq-v1", driver_version=(1, 0, 0)),
            database="vdb",
            lease_time_ms=1_000,
        )
        bootloaders = [
            Bootloader(BootloaderConfig(api_name="SEQUOIA"), network=env.network, clock=env.clock)
            for _ in range(3)
        ]
        apps = [
            ClientApplication(
                f"conc{i}", b.connect, env.client_url(),
                spec=WorkloadSpec(table="conc_events"), clock=env.clock,
            )
            for i, b in enumerate(bootloaders)
        ]
        apps[0].ensure_schema()
        stop = threading.Event()

        def traffic(app):
            while not stop.is_set():
                app.run_requests(1)

        threads = [threading.Thread(target=traffic, args=(app,)) for app in apps]
        for thread in threads:
            thread.start()
        env.controllers[1].install_driver_cluster_wide(
            build_sequoia_driver("seq-v2", driver_version=(2, 0, 0)),
            database="vdb",
            lease_time_ms=1_000,
        )
        # A client that bootstrapped concurrently with the install may have
        # been granted a fresh lease for the old driver just before the new
        # one landed; it converges at its next lease expiry. Keep expiring
        # leases until every client has upgraded (bounded).
        for _ in range(5):
            env.clock.advance(2.0)
            for bootloader in bootloaders:
                bootloader.check_for_update()
            if {b.driver_info()["driver_name"] for b in bootloaders} == {"seq-v2"}:
                break
        stop.set()
        for thread in threads:
            thread.join(timeout=5.0)
        assert {b.driver_info()["driver_name"] for b in bootloaders} == {"seq-v2"}
        total_failed = sum(app.metrics.summary().failed for app in apps)
        assert total_failed == 0
        for app in apps:
            app.close()
