"""Batched backend round trips (docs/scheduling.md, docs/wire.md):
``Backend.execute_batch`` semantics, ``WriteBroadcaster.broadcast_batch``,
the cross-session :class:`WriteBatcher`, IN-list key scopes, admission
control under saturation, and pipelining inside transactions.

The promises under test: a batch costs one per-backend round trip and
returns one positional outcome per statement (statement faults captured
in place, connection faults poisoning the remainder); coalesced writers
get per-statement accounting identical to the scalar path; with
``write_batching`` off the scalar path is untouched; a saturated
controller refuses new work with a retryable ``server_busy`` error but
never refuses an open transaction's statements (that would deadlock it
against its own lock holders); and pipelined statements inside a
transaction land strictly in order before the COMMIT."""

import threading
import time

import pytest

from repro.cluster.backend import Backend
from repro.cluster.broadcaster import WriteBroadcaster
from repro.cluster.classifier import classify
from repro.cluster.driver import ClusterDriverRuntime
from repro.cluster.locks import LockScope
from repro.cluster.recovery import RecoveryLog
from repro.cluster.scheduler import RequestScheduler, SchedulerError, WriteBatcher
from repro.dbapi import OperationalError, ProgrammingError
from repro.errors import DriverError
from repro.experiments.environments import build_cluster


class _Recorder:
    """Scripted DB-API connection without a native batch entry point:
    drives Backend's per-statement fallback loop. ``fail`` maps SQL text
    to the exception its execution raises."""

    threadsafety = 1

    def __init__(self, fail=None):
        self.executed = []
        self.closed = False
        self.fail = dict(fail or {})
        self.driver_info = {"name": "recorder"}

    def cursor(self):
        connection = self

        class _Cursor:
            description = [("v", None, None, None, None, None, None)]
            rowcount = 1

            def execute(self, sql, params=None):
                exc = connection.fail.get(sql)
                if exc is not None:
                    raise exc
                connection.executed.append((sql, dict(params or {})))

            def fetchall(self):
                return [[1]]

            def close(self):
                pass

        return _Cursor()

    def close(self):
        self.closed = True


class _NativeBatch(_Recorder):
    """Recorder with a native ``execute_batch``; ``script`` overrides the
    default per-pair outcome mapping when a test needs a broken shape."""

    def __init__(self, script=None, fail=None):
        super().__init__(fail=fail)
        self.batch_calls = 0
        self.script = script

    def execute_batch(self, pairs):
        self.batch_calls += 1
        if self.script is not None:
            return self.script(pairs)
        outcomes = []
        for sql, params in pairs:
            exc = self.fail.get(sql)
            if exc is not None:
                outcomes.append(exc)
            else:
                self.executed.append((sql, dict(params or {})))
                outcomes.append((["v"], [[1]], 1))
        return outcomes


class TestBackendBatchFallback:
    def test_runs_all_statements_and_counts(self):
        connection = _Recorder()
        backend = Backend("b1", lambda: connection)
        outcomes = backend.execute_batch([("U1", {"a": 1}), ("U2", None), ("U3", {})])
        assert [error for _, error in outcomes] == [None, None, None]
        assert all(result == (["v"], [[1]], 1) for result, _ in outcomes)
        assert [sql for sql, _ in connection.executed] == ["U1", "U2", "U3"]
        assert backend.statements_executed == 3

    def test_empty_batch_is_free(self):
        backend = Backend("b1", lambda: _Recorder())
        assert backend.execute_batch([]) == []

    def test_statement_fault_is_captured_per_position(self):
        fault = ProgrammingError("no such column")
        connection = _Recorder(fail={"BAD": fault})
        backend = Backend("b1", lambda: connection)
        outcomes = backend.execute_batch([("U1", None), ("BAD", None), ("U2", None)])
        assert outcomes[0][1] is None and outcomes[2][1] is None
        assert outcomes[1] == (None, fault)
        # The statement was bad; the connection is fine and stays cached.
        assert not connection.closed
        assert [sql for sql, _ in connection.executed] == ["U1", "U2"]

    def test_connection_fault_poisons_the_remainder(self):
        dead = OperationalError("connection reset")
        connection = _Recorder(fail={"DEAD": dead})
        backend = Backend("b1", lambda: connection)
        outcomes = backend.execute_batch([("U1", None), ("DEAD", None), ("U3", None)])
        assert len(outcomes) == 3
        assert outcomes[0][1] is None
        # Later statements must not run past a dead connection: they get
        # the same error instead of being skipped silently.
        assert outcomes[1] == (None, dead) and outcomes[2] == (None, dead)
        assert connection.closed
        assert [sql for sql, _ in connection.executed] == ["U1"]


class TestBackendBatchNative:
    def test_one_native_round_trip_with_mixed_outcomes(self):
        fault = ProgrammingError("duplicate key")
        connection = _NativeBatch(fail={"BAD": fault})
        backend = Backend("b1", lambda: connection)
        outcomes = backend.execute_batch([("U1", None), ("BAD", None), ("U2", None)])
        assert connection.batch_calls == 1
        assert outcomes[0] == ((["v"], [[1]], 1), None)
        assert outcomes[1] == (None, fault)
        assert outcomes[2] == ((["v"], [[1]], 1), None)
        assert backend.statements_executed == 2  # successes only
        assert not connection.closed

    def test_length_mismatch_is_a_connection_fault(self):
        connection = _NativeBatch(script=lambda pairs: [(["v"], [[1]], 1)])
        backend = Backend("b1", lambda: connection)
        outcomes = backend.execute_batch([("U1", None), ("U2", None)])
        assert len(outcomes) == 2
        assert all(isinstance(error, DriverError) for _, error in outcomes)
        assert connection.closed

    def test_escaping_driver_error_poisons_batch_and_drops_connection(self):
        boom = OperationalError("socket closed mid-batch")

        def script(pairs):
            raise boom

        connection = _NativeBatch(script=script)
        backend = Backend("b1", lambda: connection)
        outcomes = backend.execute_batch([("U1", None), ("U2", None)])
        assert outcomes == [(None, boom), (None, boom)]
        assert connection.closed

    def test_escaping_statement_fault_keeps_the_connection(self):
        fault = ProgrammingError("parse error")

        def script(pairs):
            raise fault

        connection = _NativeBatch(script=script)
        backend = Backend("b1", lambda: connection)
        outcomes = backend.execute_batch([("U1", None), ("U2", None)])
        assert outcomes == [(None, fault), (None, fault)]
        assert not connection.closed


class TestBroadcastBatch:
    def test_failures_stay_isolated_per_backend(self):
        dead = OperationalError("replica down")
        good_connection = _NativeBatch()
        bad_connection = _Recorder(fail={"U0": dead, "U1": dead})
        good = Backend("good", lambda: good_connection)
        bad = Backend("bad", lambda: bad_connection)
        broadcaster = WriteBroadcaster(parallel=False)
        try:
            batch = broadcaster.broadcast_batch(
                [good, bad], [("U0", None), ("U1", {"v": 1})]
            )
            assert batch.statement_count == 2
            for index in range(2):
                outcome = batch.per_statement(index)
                assert [item.backend.name for item in outcome.succeeded] == ["good"]
                assert [item.backend.name for item in outcome.failed] == ["bad"]
                assert outcome.result == (["v"], [[1]], 1)
            stats = broadcaster.stats()
            assert stats["batch_broadcasts"] == 1
            assert stats["batched_statements"] == 2
        finally:
            broadcaster.close()


class _FakeRoundScheduler:
    """Stands in for RequestScheduler._execute_batch_round: records each
    round's batch, optionally blocks the first round on ``gate`` (so
    riders can pile up behind the in-flight leader) or fails every
    round with ``fail``."""

    def __init__(self, gate=None, fail=None):
        self.batches = []
        self.gate = gate
        self.fail = fail
        self._first = True

    def _execute_batch_round(self, items, leader=None):
        self.batches.append([item.sql for item in items])
        if self.fail is not None:
            raise self.fail
        if self.gate is not None and self._first:
            self._first = False
            assert self.gate.wait(timeout=5.0)
        for position, item in enumerate(items):
            item.result = (["v"], [[position]], 1)
            item.outcome = "applied"
            item.durable_index = None


def _run_batcher_writers(batcher, targets, count, start_gate):
    """Lead one round with writer 0, queue ``count - 1`` riders behind
    it, then open ``start_gate`` and return every writer's result."""
    statement = classify("UPDATE wb_unit SET v = 1 WHERE id = 1")
    results = [None] * count
    errors = [None] * count

    def writer(index):
        try:
            results[index] = batcher.run(f"U{index}", None, statement, None, targets)
        except Exception as exc:  # noqa: BLE001 - asserted by the caller
            errors[index] = exc

    leader = threading.Thread(target=writer, args=(0,))
    leader.start()
    # Wait until the leader is inside its (gated) round before queueing
    # the riders, so they all land in the next round(s).
    deadline = time.time() + 5.0
    while not batcher.rounds and time.time() < deadline:
        time.sleep(0.001)
    assert batcher.rounds == 1
    riders = [threading.Thread(target=writer, args=(i,)) for i in range(1, count)]
    for thread in riders:
        thread.start()
    while time.time() < deadline:
        with batcher._cond:
            queued = sum(len(queue) for queue in batcher._queues.values())
        if queued == count - 1:
            break
        time.sleep(0.001)
    start_gate.set()
    leader.join(timeout=5.0)
    for thread in riders:
        thread.join(timeout=5.0)
    return results, errors


class TestWriteBatcher:
    def test_riders_coalesce_into_one_round(self):
        gate = threading.Event()
        scheduler = _FakeRoundScheduler(gate=gate)
        batcher = WriteBatcher(scheduler)
        targets = [Backend("b1", _Recorder), Backend("b2", _Recorder)]
        results, errors = _run_batcher_writers(batcher, targets, 5, gate)
        assert errors == [None] * 5
        assert all(
            result is not None and result[1] == "applied" for result in results
        )
        # One gated round for the leader, one coalesced round for the
        # four riders that queued while it was in flight.
        assert [len(batch) for batch in scheduler.batches] == [1, 4]
        stats = batcher.stats()
        assert stats["rounds"] == 2
        assert stats["batched_statements"] == 5
        assert stats["max_batch_size"] == 4

    def test_max_batch_splits_oversized_rounds(self):
        gate = threading.Event()
        scheduler = _FakeRoundScheduler(gate=gate)
        batcher = WriteBatcher(scheduler, max_batch=2)
        targets = [Backend("b1", _Recorder)]
        results, errors = _run_batcher_writers(batcher, targets, 5, gate)
        assert errors == [None] * 5
        assert all(result is not None for result in results)
        # 1 (gated leader) + 4 riders split into rounds of at most 2.
        assert [len(batch) for batch in scheduler.batches] == [1, 2, 2]
        assert batcher.stats()["max_batch_size"] == 2

    def test_round_failure_is_delivered_to_every_writer(self):
        scheduler = _FakeRoundScheduler(fail=DriverError("round died"))
        batcher = WriteBatcher(scheduler)
        targets = [Backend("b1", _Recorder)]
        statement = classify("UPDATE wb_unit SET v = 1 WHERE id = 1")
        errors = []

        def writer(index):
            try:
                batcher.run(f"U{index}", None, statement, None, targets)
            except DriverError as exc:
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5.0)
        assert len(errors) == 2
        # Leadership was released despite the failure: the next writer
        # elects itself instead of waiting forever.
        assert not batcher._leading


@pytest.fixture
def batched_cluster():
    env = build_cluster(
        replicas=2,
        controllers=1,
        controller_options={"write_batching": True, "parallel_writes": True},
    )
    yield env
    env.close()


class TestSchedulerBatching:
    def test_concurrent_writers_converge_with_per_table_log_order(self, batched_cluster):
        env = batched_cluster
        scheduler = env.controllers[0].scheduler
        writers, writes = 6, 12
        for index in range(writers):
            scheduler.execute(f"CREATE TABLE wbt_w{index} (id INTEGER PRIMARY KEY, v INTEGER)")
            scheduler.execute(f"INSERT INTO wbt_w{index} (id, v) VALUES (1, -1)")
        errors = []

        def writer(index):
            try:
                for value in range(writes):
                    scheduler.execute(
                        f"UPDATE wbt_w{index} SET v = $v WHERE id = 1", {"v": value}
                    )
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(writers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert errors == []
        # Every write is in the log, in issue order per table (each
        # writer issues sequentially, so its values must appear sorted).
        entries = env.controllers[0].recovery_log.entries_after(0)
        for index in range(writers):
            values = [
                entry.params["v"]
                for entry in entries
                if entry.write_tables == (f"wbt_w{index}",) and "v" in entry.params
            ]
            assert values == sorted(values) and len(values) == writes
        # Replicas converged on the final value.
        for engine in env.replica_engines:
            session = engine.open_session(env.database_name)
            for index in range(writers):
                assert session.execute(f"SELECT v FROM wbt_w{index}").rows == [(writes - 1,)]
        batch_stats = scheduler.stats()["write_batching"]
        assert batch_stats is not None and batch_stats["rounds"] >= 1
        # Every eligible auto-commit write went through the batcher.
        assert batch_stats["batched_statements"] >= writers * writes

    def test_statement_fault_everywhere_blames_statement_not_backends(self, batched_cluster):
        env = batched_cluster
        scheduler = env.controllers[0].scheduler
        scheduler.execute("CREATE TABLE wbt_dup (id INTEGER PRIMARY KEY, v INTEGER)")
        scheduler.execute("INSERT INTO wbt_dup (id, v) VALUES (1, 0)")
        log_before = env.controllers[0].recovery_log.last_index
        with pytest.raises(SchedulerError, match="every backend"):
            scheduler.execute("INSERT INTO wbt_dup (id, v) VALUES (1, 1)")
        # The replicas agreed the statement was bad: nobody was marked
        # failed, and the rejected write never reached the log.
        assert len(scheduler.enabled_backends()) == 2
        assert env.controllers[0].recovery_log.last_index == log_before
        scheduler.execute("UPDATE wbt_dup SET v = 7 WHERE id = 1")
        for engine in env.replica_engines:
            session = engine.open_session(env.database_name)
            assert session.execute("SELECT v FROM wbt_dup").rows == [(7,)]

    def test_batched_writes_racing_resync_converge(self, batched_cluster):
        env = batched_cluster
        controller = env.controllers[0]
        scheduler = controller.scheduler
        writers, writes = 4, 15
        for index in range(writers):
            scheduler.execute(f"CREATE TABLE wbt_rs{index} (id INTEGER PRIMARY KEY, v INTEGER)")
            scheduler.execute(f"INSERT INTO wbt_rs{index} (id, v) VALUES (1, -1)")
        errors = []
        stop = threading.Event()

        def writer(index):
            try:
                for value in range(writes):
                    scheduler.execute(
                        f"UPDATE wbt_rs{index} SET v = $v WHERE id = 1", {"v": value}
                    )
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        def cycler():
            name = "db2"
            while not stop.is_set():
                try:
                    controller.disable_backend(name)
                    time.sleep(0.002)
                    controller.enable_backend(name)
                except SchedulerError:
                    # A transactionless race can still refuse the flip
                    # (e.g. nothing to resync yet); keep cycling.
                    pass
                time.sleep(0.002)

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(writers)]
        cycle_thread = threading.Thread(target=cycler)
        for thread in threads:
            thread.start()
        cycle_thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        stop.set()
        cycle_thread.join(timeout=10.0)
        assert errors == []
        # Whatever mix of batched rounds and resyncs interleaved, both
        # replicas end on every writer's final value.
        controller.enable_backend("db2")
        for engine in env.replica_engines:
            session = engine.open_session(env.database_name)
            for index in range(writers):
                assert session.execute(f"SELECT v FROM wbt_rs{index}").rows == [(writes - 1,)]

    def test_batching_off_is_the_scalar_path(self):
        broadcaster = WriteBroadcaster(parallel=False)
        backends = [Backend("b1", _Recorder), Backend("b2", _Recorder)]
        scheduler = RequestScheduler(
            backends, RecoveryLog(), broadcaster=broadcaster
        )  # write_batching defaults to False at this layer
        try:
            assert scheduler.stats()["write_batching"] is None
            scheduler.execute("INSERT INTO t (id) VALUES (1)")
            scheduler.execute("UPDATE t SET v = 2 WHERE id = 1")
            stats = broadcaster.stats()
            assert stats["batch_broadcasts"] == 0
            assert stats["batched_statements"] == 0
            assert stats["broadcasts"] == 2  # one scalar fan-out each
        finally:
            broadcaster.close()

    def test_controller_option_off_disables_batching(self):
        env = build_cluster(
            replicas=2, controllers=1, controller_options={"write_batching": False}
        )
        try:
            scheduler = env.controllers[0].scheduler
            scheduler.execute("CREATE TABLE wbt_off (id INTEGER PRIMARY KEY)")
            scheduler.execute("INSERT INTO wbt_off (id) VALUES (1)")
            assert scheduler.stats()["write_batching"] is None
        finally:
            env.close()


class TestBatchedResync:
    def test_replay_is_chunked_through_execute_batch(self):
        log = RecoveryLog()
        for value in range(300):
            log.append(f"UPDATE t SET v = {value} WHERE id = 1", write_tables=["t"])
        connection = _NativeBatch()
        backend = Backend("b1", lambda: connection)
        replayed = backend.resync(log.entries_after(0))
        assert replayed == 300
        # 300 entries at the 128-entry chunk size: three round trips.
        assert connection.batch_calls == 3
        assert backend.checkpoint_index == 300
        assert backend.enabled
        assert len(connection.executed) == 300

    def test_chunk_flushes_before_a_skipped_entry_advances_checkpoint(self):
        log = RecoveryLog()
        for value in range(5):
            log.append(f"UPDATE t SET v = {value} WHERE id = 1", write_tables=["t"])
        connection = _NativeBatch()
        backend = Backend("b1", lambda: connection)
        replayed = backend.resync(
            log.entries_after(0), entry_filter=lambda entry: entry.index != 3
        )
        assert replayed == 4
        assert [sql for sql, _ in connection.executed] == [
            f"UPDATE t SET v = {value} WHERE id = 1" for value in (0, 1, 3, 4)
        ]
        assert backend.checkpoint_index == 5
        # The filtered entry forced an early flush: entries 1-2 went out
        # before its checkpoint advance, entries 4-5 in a second batch.
        assert connection.batch_calls == 2


class TestInListKeyScopes:
    def test_classifier_extracts_in_list_keys(self):
        statement = classify("UPDATE t SET v = 1 WHERE id IN (1, 2, 3)")
        assert statement.where_in_lists == (
            ("id", (("value", 1), ("value", 2), ("value", 3))),
        )

    def test_classifier_extracts_params_and_delete(self):
        statement = classify("DELETE FROM t WHERE id IN ($a, $b)")
        assert statement.where_in_lists == (("id", (("param", "a"), ("param", "b"))),)

    def test_not_in_and_subqueries_and_or_never_match(self):
        assert classify("UPDATE t SET v = 1 WHERE id NOT IN (1, 2)").where_in_lists == ()
        assert (
            classify("UPDATE t SET v = 1 WHERE id IN (SELECT id FROM u)").where_in_lists
            == ()
        )
        # A top-level OR widens the matched rows: no conjunct bounds the
        # statement any more.
        assert (
            classify("UPDATE t SET v = 1 WHERE id IN (1, 2) OR v = 3").where_in_lists
            == ()
        )

    def test_in_list_resolves_to_multi_key_scope(self, batched_cluster):
        env = batched_cluster
        scheduler = env.controllers[0].scheduler
        scheduler.execute("CREATE TABLE ks_t (id INTEGER PRIMARY KEY, v INTEGER)")
        spec = scheduler._lock_scope_spec(
            classify("UPDATE ks_t SET v = 2 WHERE id IN (1, '2', 3.0)"), None
        )
        # The engine's comparison coercions collapse 1 / '2' / 3.0 onto
        # integer keys.
        assert isinstance(spec, LockScope)
        assert spec.keys == frozenset({("ks_t", 1), ("ks_t", 2), ("ks_t", 3)})
        spec = scheduler._lock_scope_spec(
            classify("DELETE FROM ks_t WHERE id IN ($a, $b)"), {"a": 4, "b": 5}
        )
        assert spec.keys == frozenset({("ks_t", 4), ("ks_t", 5)})

    def test_one_unresolvable_element_poisons_the_list(self, batched_cluster):
        env = batched_cluster
        scheduler = env.controllers[0].scheduler
        scheduler.execute("CREATE TABLE ks_p (id INTEGER PRIMARY KEY, v INTEGER)")
        # $missing cannot be resolved: the statement may touch a row no
        # listed key covers, so the whole scope falls back to the table.
        spec = scheduler._lock_scope_spec(
            classify("UPDATE ks_p SET v = 1 WHERE id IN (1, $missing)"), None
        )
        assert spec == frozenset({"ks_p"})


@pytest.fixture
def saturated_cluster():
    env = build_cluster(
        replicas=2,
        controllers=1,
        controller_options={
            "max_in_flight_statements": 1,
            "max_session_queue_depth": 4,
            "write_batching": True,
        },
    )
    yield env
    env.close()


def _wait_for(predicate, timeout=5.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return predicate()


class TestAdmissionControl:
    def test_saturation_rejects_new_work_but_never_the_open_transaction(
        self, saturated_cluster
    ):
        env = saturated_cluster
        controller = env.controllers[0]
        runtime = ClusterDriverRuntime(name="adm-driver")
        url = env.client_url()
        tx = runtime.connect(url, network=env.network, busy_retries=0)
        cursor = tx.cursor()
        cursor.execute("CREATE TABLE adm_t (id INTEGER PRIMARY KEY, v INTEGER)")
        cursor.execute("INSERT INTO adm_t (id, v) VALUES (1, 0)")
        tx.begin()
        cursor.execute("UPDATE adm_t SET v = 1 WHERE id = 1")

        # Stall the write path by holding the lock manager's exclusive
        # mode (what a resync or BEGIN holds, stretched out so the test
        # can observe the saturated window deterministically).
        exclusive = controller.scheduler._locks.exclusive()
        exclusive.__enter__()
        blocked = runtime.connect(url, network=env.network, busy_retries=0)
        blocked_done = threading.Event()
        blocked_errors = []

        def blocked_writer():
            try:
                blocked.cursor().execute("INSERT INTO adm_t (id, v) VALUES (2, 0)")
            except Exception as exc:  # noqa: BLE001 - surfaced below
                blocked_errors.append(exc)
            finally:
                blocked_done.set()

        thread = threading.Thread(target=blocked_writer)
        thread.start()
        patient_thread = None
        try:
            # The blocked writer waits on the exclusive lock *while
            # holding the only in-flight slot*: the controller is
            # saturated.
            assert _wait_for(
                lambda: controller.stats()["front_end"]["in_flight_statements"] == 1
            )

            # New work with retries exhausted surfaces the retryable error.
            probe = runtime.connect(url, network=env.network, busy_retries=0)
            with pytest.raises(OperationalError, match="server_busy"):
                probe.cursor().execute("SELECT 1")

            # New work with retries left spins in capped, jittered backoff.
            patient = runtime.connect(
                url,
                network=env.network,
                busy_retries=10_000,
                busy_backoff_ms=1.0,
                busy_backoff_cap_ms=5.0,
            )
            patient_done = threading.Event()
            patient_errors = []

            def patient_reader():
                try:
                    patient.cursor().execute("SELECT 1")
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    patient_errors.append(exc)
                finally:
                    patient_done.set()

            patient_thread = threading.Thread(target=patient_reader)
            patient_thread.start()
            assert _wait_for(lambda: patient.stats()["server_busy_retries"] >= 1)

            # The open transaction's statements bypass admission even at
            # saturation: refusing them while blocked statements fill
            # every slot would deadlock the controller against its own
            # lock holders. With busy_retries=0 a rejection would bounce
            # back within milliseconds — instead the statement is
            # admitted and parks on the exclusive lock like any other
            # lock waiter (and holds no in-flight slot while it waits).
            tx_done = threading.Event()
            tx_errors = []

            def tx_writer():
                try:
                    tx.cursor().execute("UPDATE adm_t SET v = 3 WHERE id = 1")
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    tx_errors.append(exc)
                finally:
                    tx_done.set()

            tx_thread = threading.Thread(target=tx_writer)
            tx_thread.start()
            assert not tx_done.wait(timeout=0.2)
            assert controller.stats()["front_end"]["in_flight_statements"] == 1
        finally:
            exclusive.__exit__(None, None, None)
        assert blocked_done.wait(timeout=10.0)
        assert patient_done.wait(timeout=10.0)
        assert tx_done.wait(timeout=10.0)
        thread.join(timeout=5.0)
        patient_thread.join(timeout=5.0)
        tx_thread.join(timeout=5.0)
        tx.commit()
        assert blocked_errors == [] and patient_errors == [] and tx_errors == []

        stats = controller.stats()["front_end"]
        assert stats["server_busy_rejections"] >= 2
        assert stats["in_flight_peak"] <= 1
        assert patient.stats()["server_busy_retries"] >= 1
        assert patient.stats()["busy_backoff_seconds"] > 0.0
        for connection in (tx, blocked, probe, patient):
            connection.close()

    def test_session_queue_depth_bounds_a_pipelined_flood(self):
        env = build_cluster(
            replicas=2,
            controllers=1,
            controller_options={"max_session_queue_depth": 4},
        )
        try:
            controller = env.controllers[0]
            runtime = ClusterDriverRuntime(name="adm-depth-driver")
            flooder = runtime.connect(env.client_url(), network=env.network)
            assert flooder.multiplexed
            flooder.cursor().execute(
                "CREATE TABLE adm_q (id INTEGER PRIMARY KEY, v INTEGER)"
            )
            exclusive = controller.scheduler._locks.exclusive()
            exclusive.__enter__()
            flood_errors = []
            flood_done = threading.Event()

            def flood():
                try:
                    # The first statement blocks on the exclusive lock
                    # while draining; the rest pile into the session
                    # queue until the depth bound (4) refuses the
                    # overflow.
                    flooder.execute_pipeline(
                        [
                            ("INSERT INTO adm_q (id, v) VALUES ($i, 0)", {"i": value})
                            for value in range(12)
                        ]
                    )
                except OperationalError as exc:
                    flood_errors.append(exc)
                finally:
                    flood_done.set()

            thread = threading.Thread(target=flood)
            thread.start()
            try:
                assert _wait_for(
                    lambda: controller.stats()["front_end"]["server_busy_rejections"]
                    >= 1
                )
            finally:
                exclusive.__exit__(None, None, None)
            assert flood_done.wait(timeout=10.0)
            thread.join(timeout=5.0)
            # The overflow surfaced as the documented mid-pipeline error:
            # not auto-retried, because later statements were already
            # fired behind it.
            assert len(flood_errors) == 1
            assert "server_busy" in str(flood_errors[0])
            assert "may be re-issued" in str(flood_errors[0])
            flooder.close()
        finally:
            env.close()


class TestTransactionPipelining:
    def test_pipeline_inside_transaction_lands_in_order_before_commit(self, batched_cluster):
        env = batched_cluster
        runtime = ClusterDriverRuntime(name="txpipe-driver")
        connection = runtime.connect(env.client_url(), network=env.network)
        assert connection.multiplexed
        cursor = connection.cursor()
        cursor.execute("CREATE TABLE txp_t (id INTEGER PRIMARY KEY, v INTEGER)")
        connection.begin()
        connection.execute_pipeline(
            [
                ("INSERT INTO txp_t (id, v) VALUES ($i, $v)", {"i": n, "v": n * 10})
                for n in range(10)
            ]
        )
        # The log defers buffered transaction writes until COMMIT: only
        # committed statements may ever be replayed by a resync.
        log = env.controllers[0].recovery_log

        def logged_inserts():
            return [
                entry
                for entry in log.entries_after(0)
                if entry.write_tables == ("txp_t",) and "INSERT" in entry.sql
            ]

        assert logged_inserts() == []
        connection.commit()
        assert [entry.params["i"] for entry in logged_inserts()] == list(range(10))
        other = runtime.connect(env.client_url(), network=env.network)
        other_cursor = other.cursor()
        other_cursor.execute("SELECT COUNT(*) FROM txp_t")
        assert other_cursor.fetchone() == (10,)
        for engine in env.replica_engines:
            session = engine.open_session(env.database_name)
            assert session.execute("SELECT v FROM txp_t WHERE id = 7").rows == [(70,)]
        connection.close()
        other.close()

    def test_pipeline_inside_transaction_rolls_back(self, batched_cluster):
        env = batched_cluster
        runtime = ClusterDriverRuntime(name="txpipe-rb-driver")
        connection = runtime.connect(env.client_url(), network=env.network)
        cursor = connection.cursor()
        cursor.execute("CREATE TABLE txp_rb (id INTEGER PRIMARY KEY)")
        connection.begin()
        connection.execute_pipeline(
            [("INSERT INTO txp_rb (id) VALUES ($i)", {"i": n}) for n in range(5)]
        )
        connection.rollback()
        cursor.execute("SELECT COUNT(*) FROM txp_rb")
        assert cursor.fetchone() == (0,)
        # Discarded writes never reach the recovery log.
        entries = env.controllers[0].recovery_log.entries_after(0)
        assert not any(entry.write_tables == ("txp_rb",) and "INSERT" in entry.sql
                       for entry in entries)
        connection.close()


class TestDedicatedChannelUnchanged:
    def test_v2_style_dedicated_connection_works_under_batching(self, batched_cluster):
        env = batched_cluster
        runtime = ClusterDriverRuntime(name="dedicated-driver")
        connection = runtime.connect(
            env.client_url(), network=env.network, multiplexing=False
        )
        assert not connection.multiplexed
        cursor = connection.cursor()
        cursor.execute("CREATE TABLE ded_t (id INTEGER PRIMARY KEY, v INTEGER)")
        cursor.execute("INSERT INTO ded_t (id, v) VALUES (1, 41)")
        cursor.execute("UPDATE ded_t SET v = 42 WHERE id = 1")
        cursor.execute("SELECT v FROM ded_t WHERE id = 1")
        assert cursor.fetchone() == (42,)
        stats = connection.stats()
        assert stats["server_busy_retries"] == 0
        assert stats["busy_backoff_seconds"] == 0.0
        for engine in env.replica_engines:
            session = engine.open_session(env.database_name)
            assert session.execute("SELECT v FROM ded_t").rows == [(42,)]
        connection.close()
