"""Unit tests for the in-memory network."""

import threading

import pytest

from repro.errors import TransportError
from repro.netsim import InMemoryNetwork
from repro.netsim.transport import ChannelServer


@pytest.fixture
def net():
    return InMemoryNetwork()


class TestConnectAndSend:
    def test_basic_roundtrip(self, net):
        listener = net.listen("svc:1")
        client = net.connect("svc:1")
        server = listener.accept(timeout=1.0)
        client.send({"ping": 1})
        assert server.recv(timeout=1.0) == {"ping": 1}
        server.send({"pong": 2})
        assert client.recv(timeout=1.0) == {"pong": 2}

    def test_connect_refused_without_listener(self, net):
        with pytest.raises(TransportError):
            net.connect("nobody:9")

    def test_duplicate_bind_rejected(self, net):
        net.listen("svc:1")
        with pytest.raises(TransportError):
            net.listen("svc:1")

    def test_close_wakes_peer(self, net):
        listener = net.listen("svc:1")
        client = net.connect("svc:1")
        server = listener.accept(timeout=1.0)
        client.close()
        with pytest.raises(TransportError):
            server.recv(timeout=1.0)

    def test_recv_timeout(self, net):
        listener = net.listen("svc:1")
        client = net.connect("svc:1")
        listener.accept(timeout=1.0)
        with pytest.raises(TransportError):
            client.recv(timeout=0.05)

    def test_registered_addresses(self, net):
        net.listen("b:1")
        a = net.listen("a:1")
        assert net.registered_addresses() == ["a:1", "b:1"]
        a.close()
        assert net.registered_addresses() == ["b:1"]

    def test_listener_close_frees_address(self, net):
        listener = net.listen("svc:1")
        listener.close()
        net.listen("svc:1")  # no error


class TestFaultInjection:
    def test_kill_endpoint_blocks_connect(self, net):
        net.listen("svc:1")
        net.kill_endpoint("svc:1")
        with pytest.raises(TransportError):
            net.connect("svc:1")
        net.revive_endpoint("svc:1")
        assert net.connect("svc:1") is not None

    def test_kill_endpoint_blocks_send(self, net):
        listener = net.listen("svc:1")
        client = net.connect("svc:1")
        listener.accept(timeout=1.0)
        net.kill_endpoint("svc:1")
        with pytest.raises(TransportError):
            client.send({"x": 1})

    def test_partition_between_endpoints(self, net):
        listener = net.listen("svc:1")
        client = net.connect("svc:1")
        server = listener.accept(timeout=1.0)
        net.partition(client.local_address, "svc:1")
        with pytest.raises(TransportError):
            client.send({"x": 1})
        net.heal_partition(client.local_address, "svc:1")
        client.send({"x": 1})
        assert server.recv(timeout=1.0) == {"x": 1}

    def test_drop_every_nth_message(self, net):
        listener = net.listen("svc:1")
        client = net.connect("svc:1")
        server = listener.accept(timeout=1.0)
        net.drop_every_nth_message(2)
        client.send({"n": 1})  # dropped (2nd overall counting... deterministic counter)
        client.send({"n": 2})
        received = server.recv(timeout=1.0)
        assert received["n"] in (1, 2)
        net.drop_every_nth_message(0)

    def test_negative_latency_rejected(self, net):
        with pytest.raises(ValueError):
            net.set_latency(-1)


class TestChannelServer:
    def test_handler_dispatch(self, net):
        echoed = []

        def handler(channel):
            message = channel.recv(timeout=1.0)
            echoed.append(message)
            channel.send({"echo": message})

        server = ChannelServer(net.listen("svc:1"), handler, name="echo").start()
        try:
            client = net.connect("svc:1")
            client.send({"hello": "world"})
            assert client.recv(timeout=2.0) == {"echo": {"hello": "world"}}
            assert echoed == [{"hello": "world"}]
        finally:
            server.stop()

    def test_stop_prevents_new_connections(self, net):
        server = ChannelServer(net.listen("svc:1"), lambda ch: None, name="noop").start()
        server.stop()
        with pytest.raises(TransportError):
            net.connect("svc:1")

    def test_concurrent_connections(self, net):
        def handler(channel):
            message = channel.recv(timeout=2.0)
            channel.send({"double": message["n"] * 2})

        server = ChannelServer(net.listen("svc:1"), handler, name="calc").start()
        results = {}

        def worker(n):
            client = net.connect("svc:1")
            client.send({"n": n})
            results[n] = client.recv(timeout=2.0)["double"]

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5.0)
        server.stop()
        assert results == {n: n * 2 for n in range(8)}
