"""Reusable fault-injection helpers for HA, recovery, and failover tests.

Before this module, every test that needed a fault built its own ad-hoc
one (`network.kill_endpoint` + `close_connection` pairs, reaching into
`scheduler._resyncing`, ...). These helpers name the faults once, with
the *correct* composition for each — e.g. crashing a controller must
kill its endpoint *before* stopping it, or the stop's final flush would
run one last replication round the crash is supposed to lose.

Seeding: randomised tests draw their RNG from :func:`seeded_rng`. The
seed comes from ``REPRO_CHAOS_SEED`` when set (replay a failure) or from
entropy otherwise, and is always echoed — both printed at draw time and
attached to the failing test's report by the repo conftest — so any
failing interleaving is reproducible with::

    REPRO_CHAOS_SEED=<seed> python -m pytest tests/test_ha.py -k <test>

On targeting the replication link specifically: the in-memory network's
``partition(a, b)`` matches channels by exact (local, remote) address
pairs, and outbound connections originate from anonymous ``client-N``
addresses — so an address-pair partition between two controller listener
addresses severs *nothing*. Link faults therefore go through the
primary's per-peer ``blocked`` flag (:func:`partitioned_replication_link`)
or whole-endpoint kills, never ``network.partition``.
"""

from __future__ import annotations

import contextlib
import os
import random
import time
from typing import Any, Callable, Iterator, Optional

#: Seed of the most recent seeded_rng() draw, echoed by the repo
#: conftest on test failure so the interleaving can be replayed.
LAST_SEED: Optional[int] = None


def chaos_seed() -> int:
    """The active chaos seed: ``REPRO_CHAOS_SEED`` when set, fresh
    entropy otherwise. Recorded in :data:`LAST_SEED` either way."""
    global LAST_SEED
    env = os.environ.get("REPRO_CHAOS_SEED")
    seed = int(env) if env else random.SystemRandom().randrange(2**32)
    LAST_SEED = seed
    return seed


def seeded_rng() -> "tuple[random.Random, int]":
    """A ``(rng, seed)`` pair for a randomised test; prints the rerun
    line so the seed survives even when only stdout was captured."""
    seed = chaos_seed()
    print(f"chaos seed: {seed} (rerun with REPRO_CHAOS_SEED={seed})")
    return random.Random(seed), seed


# -- controller faults ---------------------------------------------------------


def crash_controller(env: Any, controller: Any) -> None:
    """Kill a controller as a crash would: its endpoint dies first (no
    frame — not even a final replication round — escapes), then the
    process state is torn down without the graceful stop's final log
    flush. This is the fault that strands a primary's unreplicated log
    suffix."""
    env.network.kill_endpoint(controller.address)
    controller.stop(flush=False)


def graceful_stop(env: Any, controller: Any) -> None:
    """Planned shutdown: the final flush (and, on an HA primary, the
    final replication round) runs, then the endpoint goes dark."""
    controller.stop()
    env.network.kill_endpoint(controller.address)


def revive_controller(env: Any, controller: Any) -> None:
    """Bring a killed controller back (endpoint + listener)."""
    env.network.revive_endpoint(controller.address)
    controller.start()


# -- backend (replica database) faults ----------------------------------------


def fail_backend(env: Any, controllers: Any, replica_index: int) -> None:
    """Kill one replica database server and drop every controller's
    pooled connection to it — the composition the recovery tests
    previously spelled out inline (a killed endpoint alone leaves the
    pooled connection working: in-memory channels only fail on the next
    connect)."""
    env.network.kill_endpoint(env.replica_addresses[replica_index])
    if not isinstance(controllers, (list, tuple)):
        controllers = [controllers]
    for controller in controllers:
        for backend in controller.backends():
            backend.close_connection()


def revive_backend(env: Any, replica_index: int) -> None:
    env.network.revive_endpoint(env.replica_addresses[replica_index])


# -- replication-link faults ---------------------------------------------------


@contextlib.contextmanager
def partitioned_replication_link(primary: Any, peer_address: str) -> Iterator[None]:
    """Sever exactly the primary→peer replication link (both directions
    of its request/ack exchange) while leaving every other channel —
    including clients of both nodes — untouched."""
    link = primary.ha_store.peer_link(peer_address)
    link.blocked = True
    try:
        yield
    finally:
        link.blocked = False


@contextlib.contextmanager
def injected_latency(env: Any, seconds: float) -> Iterator[None]:
    """Network-wide per-send latency (the in-memory network has no
    per-link latency), covering the replication link among everything
    else."""
    env.network.set_latency(seconds)
    try:
        yield
    finally:
        env.network.set_latency(0.0)


def drop_every_nth_message(env: Any, n: int) -> None:
    """Deterministically drop every n-th sent message network-wide
    (0 disables)."""
    env.network.drop_every_nth_message(n)


@contextlib.contextmanager
def crash_after_next_replication(env: Any, controller: Any) -> Iterator[Any]:
    """Arm a one-shot crash on ``controller`` (an HA primary) that fires
    *after* its next replication round ships — the
    crash-between-append-and-ack window: followers hold the entries, but
    the primary's endpoint dies before its client learns the write
    committed. Yields a ``fired`` callable reporting whether the window
    triggered; on exit the controller is fully torn down (crash-style,
    no final flush) from the caller's thread — the hook itself only
    kills the endpoint, because a full stop() from inside the very
    worker thread that is mid-flush would tear down its own pool."""
    store = controller.ha_store
    original = store.replicate
    state = {"fired": False}

    def replicate_then_crash(*args: Any, **kwargs: Any) -> Any:
        result = original(*args, **kwargs)
        if not state["fired"]:
            state["fired"] = True
            env.network.kill_endpoint(controller.address)
        return result

    store.replicate = replicate_then_crash
    try:
        yield lambda: state["fired"]
    finally:
        store.replicate = original
        if state["fired"]:
            controller.stop(flush=False)


# -- scheduler-state fakes -----------------------------------------------------


@contextlib.contextmanager
def resync_freeze(controller: Any) -> Iterator[None]:
    """Hold a controller in its 'replaying the recovery log' state (the
    ``controller_recovering`` bounce) without an actual replay — the
    fault the driver-failover tests previously faked by poking
    ``scheduler._resyncing`` inline."""
    controller.scheduler._resyncing = True
    try:
        yield
    finally:
        controller.scheduler._resyncing = False


# -- coordination --------------------------------------------------------------


def wait_until(
    predicate: Callable[[], bool], timeout: float = 5.0, interval: float = 0.002
) -> bool:
    """Bounded condition poll for states that expose no event to wait on
    (session teardown, detector claims...). Returns as soon as the
    predicate holds — unlike a blind ``time.sleep(guess)`` it adds no
    fixed latency and survives slow machines; the timeout keeps a wrong
    predicate from hanging the suite."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()
