"""End-to-end tests: every paper experiment runs and supports its claim."""

import pytest

from repro.experiments import (
    custom_delivery,
    fig1_architecture,
    fig2_legacy_server,
    fig3_heterogeneous,
    fig4_failover,
    fig5_legacy_cluster,
    fig6_hybrid_ha,
    license_server_exp,
    lifecycle,
    overhead,
    partial_replication,
    policy_matrix,
    table5_admin,
)


class TestLifecycleAndTable5:
    def test_e1_lifecycle_one_step_upgrade(self):
        result = lifecycle.run_experiment(client_counts=[1, 10, 100])
        row = result.find_row(clients=100)
        assert row["drivolution_update_ops"] == 1
        assert row["legacy_update_ops"] == 900
        assert row["update_ops_ratio"] == 900.0
        assert any("0 application restarts" in note for note in result.notes)
        assert any("5/5 clients upgraded" in note for note in result.notes)

    def test_e2_table5_step_counts(self):
        result = table5_admin.run_experiment(dba_counts=[2], database_count=3)
        access = result.find_row(task="access new database", dbas=2)
        upgrade = result.find_row(task="driver upgrade", dbas=2)
        assert access["legacy_steps"] == 6 and access["drivolution_steps"] == 2
        assert upgrade["legacy_steps"] == 6 and upgrade["drivolution_steps"] == 2
        assert any("drivers delivered automatically" in note for note in result.notes)


class TestArchitectureExperiments:
    def test_e3_coexistence(self):
        result = fig1_architecture.run_experiment(requests_per_app=10)
        assert len(result.rows) == 3
        assert all(row["requests_failed"] == 0 for row in result.rows)
        drivolution_rows = [row for row in result.rows if row["driver_source"] == "drivolution"]
        assert all(row["bytes_downloaded"] > 0 for row in drivolution_rows)
        conventional = result.find_row(application="app3-conventional")
        assert conventional["bytes_downloaded"] == 0

    def test_e4_external_server(self):
        result = fig2_legacy_server.run_experiment(client_count=2, requests_per_client=4)
        assert all(row["client_machines_modified"] == 0 for row in result.rows)
        bootstrap = result.find_row(phase="bootstrap")
        assert bootstrap["drivers_stored_in_legacy_database"] == 1
        unavailable = result.find_row(phase="Drivolution server unavailable at renewal")
        assert unavailable["requests_failed"] == 0
        assert unavailable["clients_served"] == 2

    def test_e5_heterogeneous_console(self):
        result = fig3_heterogeneous.run_experiment(database_count=3)
        assert len(result.rows) == 3
        assert all(row["connected"] for row in result.rows)
        assert all(row["manual_driver_installs"] == 0 for row in result.rows)
        drivers = {row["driver_delivered"] for row in result.rows}
        assert len(drivers) == 3  # each database delivered its own driver


class TestFailoverAndCluster:
    def test_e6_failover(self):
        result = fig4_failover.run_experiment(client_count=3, requests_per_phase=6)
        drivolution = result.find_row(approach="drivolution")
        manual = result.find_row(approach="manual reconfiguration")
        assert drivolution["failed_requests"] == 0
        assert drivolution["clients_redirected"] == 3
        assert drivolution["per_client_operations"] == 0
        assert drivolution["writes_on_master_after_failover"] == 0
        assert drivolution["writes_on_slave_after_failover"] > 0
        assert manual["per_client_operations"] == 9
        assert manual["failed_requests"] > drivolution["failed_requests"]

    def test_e6b_backend_recovery(self):
        result = fig4_failover.run_recovery_experiment(writes_per_phase=5)
        automatic = result.find_row(approach="recovery subsystem")
        assert automatic["failed_requests"] == 0
        assert automatic["admin_operations"] == 0
        assert automatic["replicas_identical"] is True
        assert automatic["entries_replayed"] > 0
        assert automatic["detector_disables"] == 1
        assert automatic["detector_resyncs"] == 1
        manual = result.find_row(approach="manual operation")
        assert manual["admin_operations"] == 3

    def test_e14_partial_replication_raidb_levels(self):
        result = partial_replication.run_experiment(
            backends=4, tables=4, rows_per_table=3, writes_per_table=5
        )
        full = result.find_row(placement="full")
        hash2 = result.find_row(placement="hash:2")
        raidb0 = result.find_row(placement="raidb0")
        assert full["write_fanout_avg"] == 4.0
        assert hash2["write_fanout_avg"] == 2.0
        assert raidb0["write_fanout_avg"] == 1.0
        assert full["storage_amplification"] == 4.0
        assert raidb0["storage_amplification"] == 1.0

    def test_e14b_partial_replica_recovery(self):
        result = partial_replication.run_recovery_experiment(
            backends=4, tables=4, rows_per_table=3, writes_while_down=8
        )
        row = result.rows[0]
        assert row["cold_starts"] == 1
        assert row["victim_tables_match_placement"] is True
        assert row["replicas_converged"] is True
        assert row["hosts_match_placement"] is True

    @pytest.mark.slow
    def test_e7_legacy_cluster(self):
        result = fig5_legacy_cluster.run_experiment(client_count=2, requests_per_phase=4)
        sequoia = result.find_row(operation="Sequoia driver upgrade (rolling controller restart)")
        database = result.find_row(operation="database driver upgrade (one backend at a time)")
        assert sequoia["failed_requests"] == 0
        assert sequoia["clients_upgraded"] == 2
        assert sequoia["client_machines_modified"] == 0
        assert database["failed_requests"] == 0
        assert any("consistent: True" in note for note in result.notes)

    @pytest.mark.slow
    def test_e8_hybrid_ha(self):
        result = fig6_hybrid_ha.run_experiment(client_count=3, requests_per_phase=4)
        install = result.find_row(phase="install on controller1")
        assert install["replicated_to_all_controllers"] is True
        upgrade = result.find_row(phase="upgrade pushed on controller2")
        assert upgrade["clients_upgraded"] == 3
        failure = result.find_row(phase="controller1 failed")
        assert failure["failed_requests"] == 0


class TestDeliveryLicensesPoliciesOverhead:
    def test_e9_custom_delivery(self):
        result = custom_delivery.run_experiment(payload_size=1024)
        total = result.find_row(client="TOTAL")
        assert total["assembled_bytes"] < total["monolithic_bytes"]
        per_client = [row for row in result.rows if row["client"] != "TOTAL"]
        assert all(row["features_match_request"] for row in per_client)
        plain = result.find_row(client="plain-app")
        assert plain["savings_pct"] > 50

    def test_e10_license_server(self):
        result = license_server_exp.run_experiment(license_count=2, client_count=4)
        static = result.find_row(policy="static")
        dynamic = result.find_row(policy="dynamic")
        assert static["granted"] == 2 and static["denied"] == 2
        assert dynamic["reclaimed_after_crash"] > 0

    def test_e11_policy_matrix(self):
        result = policy_matrix.run_expiration_policy_matrix(clients=2, connections_per_client=2)
        immediate = result.find_row(expiration_policy="IMMEDIATE")
        after_commit = result.find_row(expiration_policy="AFTER_COMMIT")
        after_close = result.find_row(expiration_policy="AFTER_CLOSE")
        assert immediate["aborted_transactions"] == 2
        assert after_commit["aborted_transactions"] == 0
        assert after_commit["closed_after_commit"] == 2
        assert after_close["left_to_application_close"] == 4
        assert after_close["connections_still_open_after_commit_phase"] == 4

    def test_e11_revocation(self):
        result = policy_matrix.run_revocation_study()
        row = result.rows[0]
        assert row["outcome"] == "revoked"
        assert row["new_connections_blocked"] == 1
        assert row["error_mentions_missing_driver"]

    def test_e11_lease_sweep_tradeoff(self):
        result = policy_matrix.run_lease_time_sweep(
            lease_times_ms=[1_000, 10_000], clients=2, observation_window_s=20.0
        )
        short = result.find_row(mode="lease polling", lease_time_ms=1_000)
        long = result.find_row(mode="lease polling", lease_time_ms=10_000)
        push = result.find_row(mode="notification channel")
        assert short["propagation_delay_s"] < long["propagation_delay_s"]
        assert short["server_requests_in_window"] > long["server_requests_in_window"]
        assert push["propagation_delay_s"] == 0.0
        assert push["upgraded_clients"] == 2

    def test_e12_overhead(self):
        result = overhead.run_experiment(statement_count=30, connect_count=5)
        connect_row = result.find_row(metric="connect latency (ms)")
        statement_row = result.find_row(metric="per-statement latency (ms)")
        assert connect_row["bootloader_first"] > 0
        assert statement_row["conventional_driver"] > 0
        # Per-statement cost through the Drivolution-delivered driver is in
        # the same ballpark as the conventional driver (within 3x).
        assert statement_row["bootloader_subsequent"] < statement_row["conventional_driver"] * 3


class TestResultFormatting:
    def test_to_text_renders_columns_and_notes(self):
        result = lifecycle.run_experiment(client_counts=[1])
        text = result.to_text()
        assert "E1" in text
        assert "clients" in text
        assert "note:" in text

    def test_find_row_missing(self):
        result = lifecycle.run_experiment(client_counts=[1])
        assert result.find_row(clients=12345) is None
