"""Tests for the durable recovery subsystem (repro.cluster.recovery)."""

import json
import os

import pytest

import chaos

from repro.cluster import Backend, BackendState, Controller, ControllerConfig
from repro.cluster.recovery import (
    CheckpointRegistry,
    DatabaseDumper,
    FileLogStore,
    LogCompactedError,
    LogEntry,
    MemoryLogStore,
    RecoveryLog,
)
from repro.cluster.recovery.checkpoints import CheckpointError
from repro.cluster.scheduler import SchedulerError
from repro.dbapi import legacy_driver
from repro.errors import DriverError


@pytest.fixture
def cluster_env():
    from repro.experiments.environments import build_cluster

    env = build_cluster(replicas=2, controllers=1)
    yield env
    env.close()


@pytest.fixture
def cached_cluster_env():
    from repro.experiments.environments import build_cluster

    env = build_cluster(
        replicas=2, controllers=1, controller_options={"query_cache_enabled": True}
    )
    yield env
    env.close()


def _select_all(backend_or_engine, env, sql):
    """Rows of ``sql`` on one replica engine (ground truth, no cache)."""
    return backend_or_engine.open_session(env.database_name).execute(sql).rows


class TestLogStores:
    def test_memory_store_truncation_bounds_entries(self):
        store = MemoryLogStore()
        for index in range(1, 11):
            store.append(LogEntry(index=index, sql=f"W{index}"))
        assert store.last_index == 10
        assert store.entry_count == 10
        dropped = store.truncate_through(6)
        assert dropped == 6
        assert store.truncated_through == 6
        assert store.entry_count == 4
        assert [e.index for e in store.entries_after(6)] == [7, 8, 9, 10]
        # last_index survives even when everything is truncated.
        store.truncate_through(10)
        assert store.entry_count == 0
        assert store.last_index == 10

    def test_file_store_persists_across_reopen(self, tmp_path):
        directory = str(tmp_path / "log")
        store = FileLogStore(directory, segment_max_entries=3)
        for index in range(1, 8):
            store.append(LogEntry(index=index, sql=f"INSERT {index}", params={"i": index}))
        store.close()
        reopened = FileLogStore(directory, segment_max_entries=3)
        assert reopened.last_index == 7
        entries = reopened.entries_after(4)
        assert [e.index for e in entries] == [5, 6, 7]
        assert entries[0].params == {"i": 5}
        # Appends continue where the previous process stopped.
        reopened.append(LogEntry(index=8, sql="INSERT 8"))
        assert reopened.last_index == 8
        reopened.close()

    def test_file_store_recovers_from_partial_trailing_line(self, tmp_path):
        directory = str(tmp_path / "log")
        store = FileLogStore(directory, segment_max_entries=100)
        for index in range(1, 4):
            store.append(LogEntry(index=index, sql=f"W{index}"))
        store.close()
        # Simulate a crash mid-append: a torn, newline-less partial record.
        segments = [n for n in os.listdir(directory) if n.endswith(".jsonl")]
        with open(os.path.join(directory, segments[0]), "a", encoding="utf-8") as handle:
            handle.write('{"index": 4, "sql": "INSERT half')
        recovered = FileLogStore(directory)
        assert recovered.recovered_partial_lines == 1
        assert recovered.last_index == 3
        recovered.append(LogEntry(index=4, sql="W4"))
        recovered.close()
        clean = FileLogStore(directory)
        assert [e.sql for e in clean.entries_after(2)] == ["W3", "W4"]
        clean.close()

    def test_file_store_compaction_deletes_whole_segments(self, tmp_path):
        directory = str(tmp_path / "log")
        store = FileLogStore(directory, segment_max_entries=2)
        for index in range(1, 8):
            store.append(LogEntry(index=index, sql=f"W{index}"))
        assert len([n for n in os.listdir(directory) if n.endswith(".jsonl")]) == 4
        dropped = store.truncate_through(5)
        # Whole segments only: [1,2] and [3,4] go, [5,6] survives (holds 6).
        assert dropped == 4
        assert store.truncated_through == 4
        assert len([n for n in os.listdir(directory) if n.endswith(".jsonl")]) == 2
        assert [e.index for e in store.entries_after(4)] == [5, 6, 7]
        store.close()
        # The floor survives restart through the metadata file.
        reopened = FileLogStore(directory)
        assert reopened.truncated_through == 4
        assert reopened.last_index == 7
        reopened.close()

    def test_reopen_survives_crash_between_meta_write_and_segment_delete(self, tmp_path):
        # truncate_through persists the floor *before* deleting files; a
        # crash in between leaves stale segments below the floor that the
        # next open must clean up instead of refusing to load.
        directory = str(tmp_path / "log")
        store = FileLogStore(directory, segment_max_entries=2)
        for index in range(1, 7):
            store.append(LogEntry(index=index, sql=f"W{index}"))
        store.truncate_through(4)
        store.close()
        # Resurrect a segment below the persisted floor (as if os.remove
        # never ran before the crash).
        stale = os.path.join(directory, "segment-00000001.jsonl")
        with open(stale, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(LogEntry(index=1, sql="W1").to_wire()) + "\n")
            handle.write(json.dumps(LogEntry(index=2, sql="W2").to_wire()) + "\n")
        reopened = FileLogStore(directory, segment_max_entries=2)
        assert reopened.truncated_through == 4
        assert reopened.last_index == 6
        assert not os.path.exists(stale)
        reopened.close()

    def test_fsync_on_append(self, tmp_path):
        store = FileLogStore(str(tmp_path / "log"), fsync_on_append=True)
        store.append(LogEntry(index=1, sql="W1"))
        assert store.stats()["fsync_on_append"] is True
        store.close()

    def test_blob_params_roundtrip(self, tmp_path):
        store = FileLogStore(str(tmp_path / "log"))
        store.append(LogEntry(index=1, sql="W", params={"data": b"\x00\xff\x01"}))
        store.close()
        reopened = FileLogStore(str(tmp_path / "log"))
        assert reopened.entries_after(0)[0].params == {"data": b"\x00\xff\x01"}
        reopened.close()


class TestCheckpointRegistry:
    def test_create_release_and_floor(self):
        registry = CheckpointRegistry()
        registry.create("alpha", 5)
        registry.create("beta", 3)
        assert registry.oldest_live_index() == 3
        assert "beta" in registry
        with pytest.raises(CheckpointError):
            registry.create("alpha", 9)
        registry.create("alpha", 9, overwrite=True)
        assert registry.get("alpha").index == 9
        assert registry.release("beta") is True
        assert registry.release("beta") is False
        assert registry.oldest_live_index() == 9

    def test_persistence(self, tmp_path):
        path = str(tmp_path / "checkpoints.json")
        registry = CheckpointRegistry(path)
        registry.create("dump-5", 5)
        reloaded = CheckpointRegistry(path)
        assert reloaded.get("dump-5").index == 5
        assert reloaded.names() == ["dump-5"]


class TestRecoveryLogCompaction:
    def test_compaction_respects_oldest_live_checkpoint(self):
        log = RecoveryLog()
        for i in range(10):
            log.append(f"W{i}")
        log.checkpoint("pin", 4)
        dropped = log.compact()
        assert dropped == 4  # entries 1..4: the checkpoint itself stays replay-from-able
        assert log.first_index == 5
        assert [e.index for e in log.entries_after(4)] == [5, 6, 7, 8, 9, 10]
        with pytest.raises(LogCompactedError):
            log.entries_after(2)
        log.release_checkpoint("pin")
        log.compact()
        assert log.stats()["retained_entries"] == 0
        assert log.last_index == 10

    def test_auto_compaction_bounds_memory(self):
        log = RecoveryLog(auto_compact_every=10)
        for i in range(100):
            log.append(f"W{i}")
        assert log.last_index == 100
        assert log.stats()["retained_entries"] <= 10
        assert log.compactions >= 9

    def test_compaction_never_truncates_past_live_checkpoints(self):
        log = RecoveryLog(auto_compact_every=5)
        log.checkpoint("backend:db1", 0)
        for i in range(50):
            log.append(f"W{i}")
        # The pinned backend can still replay its whole range.
        assert len(log.entries_after(0)) == 50


class TestDatabaseDumper:
    def test_dump_restore_schema_and_values_roundtrip(self, cluster_env):
        env = cluster_env
        scheduler = env.controllers[0].scheduler
        scheduler.execute(
            "CREATE TABLE parent (id INTEGER PRIMARY KEY, note VARCHAR NOT NULL)"
        )
        scheduler.execute(
            "CREATE TABLE child (id INTEGER PRIMARY KEY, pid INTEGER REFERENCES parent(id), "
            "flag BOOLEAN, data BLOB, score DOUBLE)"
        )
        scheduler.execute("INSERT INTO parent (id, note) VALUES (1, 'alpha')")
        scheduler.execute(
            "INSERT INTO child (id, pid, flag, data, score) VALUES ($i, $p, $f, $d, $s)",
            {"i": 10, "p": 1, "f": True, "d": b"\x00\x01\xfe", "s": 2.5},
        )
        source = env.controllers[0].backend("db1")
        dump = DatabaseDumper().dump(source.execute, checkpoint_index=4, source="db1")
        assert dump.checkpoint_index == 4
        assert dump.table_count == 2
        # Parent restores before child (REFERENCES ordering).
        assert [t.name for t in dump.tables] == ["parent", "child"]
        child = dump.tables[1]
        by_name = {c.name: c for c in child.columns}
        assert by_name["pid"].references_table == "parent"
        assert by_name["data"].data_type == "BLOB"
        # Restore into a brand-new replica and compare byte-for-byte.
        backend = env.new_replica()
        DatabaseDumper().restore(dump, backend.execute)
        for sql in ("SELECT * FROM parent", "SELECT * FROM child"):
            _, restored_rows, _ = backend.execute(sql)
            _, source_rows, _ = source.execute(sql)
            assert restored_rows == source_rows

    def test_dump_preserves_schema_qualified_tables(self, cluster_env):
        env = cluster_env
        scheduler = env.controllers[0].scheduler
        scheduler.execute("CREATE TABLE app.users (id INTEGER PRIMARY KEY, name VARCHAR)")
        scheduler.execute("INSERT INTO app.users (id, name) VALUES (1, 'q')")
        source = env.controllers[0].backend("db1")
        dump = DatabaseDumper().dump(source.execute)
        assert [t.name for t in dump.tables] == ["app.users"]
        target = env.new_replica()
        target.execute("CREATE TABLE app.users (id INTEGER PRIMARY KEY, name VARCHAR)")
        target.execute("INSERT INTO app.users (id, name) VALUES (9, 'stale')")
        DatabaseDumper().restore(dump, target.execute)  # wipe drops the qualified table
        _, rows, _ = target.execute("SELECT * FROM app.users")
        assert rows == [(1, "q")]

    def test_restore_wipes_stale_state(self, cluster_env):
        env = cluster_env
        scheduler = env.controllers[0].scheduler
        scheduler.execute("CREATE TABLE keep_t (id INTEGER PRIMARY KEY)")
        scheduler.execute("INSERT INTO keep_t (id) VALUES (1)")
        source = env.controllers[0].backend("db1")
        dump = DatabaseDumper().dump(source.execute)
        target = env.new_replica()
        target.execute("CREATE TABLE stale_t (id INTEGER PRIMARY KEY)")
        DatabaseDumper().restore(dump, target.execute)
        _, rows, _ = target.execute(
            "SELECT table_name FROM information_schema.tables"
        )
        assert ("stale_t",) not in rows
        assert ("keep_t",) in rows


class TestColdStart:
    def test_new_backend_via_dump_plus_tail_replay(self, cluster_env):
        env = cluster_env
        controller = env.controllers[0]
        scheduler = controller.scheduler
        scheduler.execute(
            "CREATE TABLE events (id INTEGER PRIMARY KEY, payload VARCHAR, data BLOB)"
        )
        for i in range(5):
            scheduler.execute(
                "INSERT INTO events (id, payload, data) VALUES ($i, $p, $d)",
                {"i": i, "p": f"row-{i}", "d": bytes([i])},
            )
        dump = controller.dump_database()
        assert dump.checkpoint_name in controller.recovery_log.checkpoints
        # Tail writes land *after* the dump was taken.
        for i in range(5, 9):
            scheduler.execute(
                "INSERT INTO events (id, payload, data) VALUES ($i, $p, $d)",
                {"i": i, "p": f"row-{i}", "d": bytes([i])},
            )
        newcomer = env.new_replica()
        replayed = controller.add_backend_from_dump(newcomer, dump)
        assert replayed == 4  # exactly the tail, not the full history
        assert newcomer.state == BackendState.ENABLED
        assert newcomer in controller.backends()
        # The dump's pin was released after the cold start completed.
        assert dump.checkpoint_name not in controller.recovery_log.checkpoints
        # Byte-identical SELECT results across every replica.
        reference = None
        for backend in controller.backends():
            _, rows, _ = backend.execute("SELECT * FROM events")
            if reference is None:
                reference = rows
            assert rows == reference
        assert len(reference) == 9

    def test_provision_backend_one_call(self, cluster_env):
        env = cluster_env
        controller = env.controllers[0]
        controller.scheduler.execute("CREATE TABLE p_t (id INTEGER PRIMARY KEY)")
        controller.scheduler.execute("INSERT INTO p_t (id) VALUES (1)")
        newcomer = env.new_replica()
        statements = controller.provision_backend(newcomer)
        assert statements >= 2  # CREATE + INSERT
        assert newcomer.enabled
        _, rows, _ = newcomer.execute("SELECT * FROM p_t")
        assert rows == [(1,)]
        assert controller.stats()["recovery"]["cold_starts"] == 1

    def test_resync_falls_back_to_dump_after_compaction(self, cluster_env):
        env = cluster_env
        controller = env.controllers[0]
        scheduler = controller.scheduler
        scheduler.execute("CREATE TABLE c_t (id INTEGER PRIMARY KEY)")
        controller.disable_backend("db1")
        for i in range(10):
            scheduler.execute("INSERT INTO c_t (id) VALUES ($i)", {"i": i})
        # Drop the disabled backend's pin, then compact: its replay range
        # is gone and only a dump can bring it back.
        controller.recovery_log.release_checkpoint("backend:db1")
        controller.compact_recovery_log()
        backend = controller.backend("db1")
        with pytest.raises(SchedulerError):
            scheduler.resync_and_enable(backend)  # no dumper -> refused
        assert backend.state in (BackendState.DISABLED, BackendState.FAILED)
        replayed = controller.enable_backend("db1")  # dump fallback built in
        assert replayed == 0
        assert backend.enabled
        _, rows, _ = backend.execute("SELECT COUNT(*) FROM c_t")
        assert rows == [(10,)]


class TestDurableControllerRestart:
    def _make_controller(self, env, log_dir, backends=None):
        controller = Controller(
            ControllerConfig(
                controller_id="durable-ctrl",
                virtual_database="vdb",
                log_dir=log_dir,
                log_segment_entries=4,
            ),
            env.network,
            "durable-ctrl:25322",
            backends=backends
            or [
                Backend(
                    f"db{i + 1}",
                    (lambda a: lambda: legacy_driver.connect(
                        f"pydb://{a}/{env.database_name}", network=env.network
                    ))(address),
                )
                for i, address in enumerate(env.replica_addresses)
            ],
        )
        return controller

    def test_restart_resumes_pre_crash_last_index(self, cluster_env, tmp_path):
        env = cluster_env
        log_dir = str(tmp_path / "ctrl-log")
        controller = self._make_controller(env, log_dir)
        controller.scheduler.execute("CREATE TABLE d_t (id INTEGER PRIMARY KEY)")
        for i in range(6):
            controller.scheduler.execute("INSERT INTO d_t (id) VALUES ($i)", {"i": i})
        pre_crash = controller.recovery_log.last_index
        assert pre_crash == 7
        controller.recovery_log.close()

        # "Restart": a brand-new controller process on the same directory.
        restarted = self._make_controller(env, log_dir)
        assert restarted.recovery_log.last_index == pre_crash
        restarted.scheduler.execute("INSERT INTO d_t (id) VALUES (100)")
        assert restarted.recovery_log.last_index == pre_crash + 1
        # Disable/enable across the restart boundary still replays the
        # persisted history (checkpoints survive too).
        backend = restarted.backend("db1")
        restarted.disable_backend("db1")
        restarted.scheduler.execute("INSERT INTO d_t (id) VALUES (101)")
        restarted.recovery_log.close()
        second = self._make_controller(env, log_dir)
        second_backend = second.backend("db1")
        second_backend.disable(backend.checkpoint_index)
        assert second.recovery_log.checkpoints.get("backend:db1").index == backend.checkpoint_index
        replayed = second.enable_backend("db1")
        assert replayed == 1
        second.recovery_log.close()


class TestQueryCacheInvalidationOnEnable:
    def test_enable_backend_flushes_query_cache(self, cached_cluster_env):
        # Regression (stale-read hazard): re-enabling a resynced backend
        # used to leave the query cache untouched, so entries cached while
        # the backend was out of rotation could be served against its
        # replayed state. The enable path must flush.
        env = cached_cluster_env
        controller = env.controllers[0]
        scheduler = controller.scheduler
        cache = scheduler.query_cache
        scheduler.execute("CREATE TABLE q_t (id INTEGER PRIMARY KEY)")
        scheduler.execute("INSERT INTO q_t (id) VALUES (1)")
        controller.disable_backend("db1")
        scheduler.execute("SELECT COUNT(*) FROM q_t")
        scheduler.execute("SELECT COUNT(*) FROM q_t")
        assert len(cache) == 1
        assert cache.hits >= 1
        controller.enable_backend("db1")
        assert len(cache) == 0  # flushed: nothing cached pre-enable survives
        columns, rows, _ = scheduler.execute("SELECT COUNT(*) FROM q_t")
        assert rows == [(1,)]


class TestFailureDetector:
    def test_detector_disables_dead_backend_and_resyncs_on_recovery(self, cluster_env):
        env = cluster_env
        controller = env.controllers[0]
        scheduler = controller.scheduler
        scheduler.execute("CREATE TABLE hb_t (id INTEGER PRIMARY KEY)")
        scheduler.execute("INSERT INTO hb_t (id) VALUES (1)")
        # First round: everyone alive, heartbeats recorded.
        report = controller.heartbeat()
        assert report["disabled"] == []
        assert all(b.last_heartbeat_at > 0 for b in controller.backends())

        chaos.fail_backend(env, controller, 0)
        # Default config needs two consecutive misses.
        first = controller.heartbeat()
        assert first["disabled"] == [] and first["pending"] == ["db1"]
        second = controller.heartbeat()
        assert second["disabled"] == ["db1"]
        backend = controller.backend("db1")
        assert backend.state == BackendState.DISABLED
        assert "backend:db1" in controller.recovery_log.checkpoints

        # Writes keep flowing to the healthy replica while db1 is down.
        scheduler.execute("INSERT INTO hb_t (id) VALUES (2)")
        scheduler.execute("INSERT INTO hb_t (id) VALUES (3)")

        chaos.revive_backend(env, 0)
        recovery = controller.heartbeat()
        assert recovery["resynced"] == ["db1"]
        assert backend.enabled
        _, rows, _ = backend.execute("SELECT COUNT(*) FROM hb_t")
        assert rows == [(3,)]
        stats = controller.stats()["recovery"]["failure_detector"]
        assert stats["failures_detected"] == 1
        assert stats["backends_resynced"] == 1

    def test_detector_leaves_admin_disabled_backends_alone(self, cluster_env):
        env = cluster_env
        controller = env.controllers[0]
        controller.scheduler.execute("CREATE TABLE adm_t (id INTEGER PRIMARY KEY)")
        controller.disable_backend("db1")  # operator intent
        report = controller.heartbeat()
        assert report["resynced"] == []
        assert controller.backend("db1").state == BackendState.DISABLED

    def test_admin_disable_overrides_earlier_auto_disable(self, cluster_env):
        # Operator intent outranks liveness even when the detector had
        # already claimed the backend: an explicit disable_backend after
        # an auto-disable must stop the detector from resyncing it.
        env = cluster_env
        controller = env.controllers[0]
        controller.scheduler.execute("CREATE TABLE ovr_t (id INTEGER PRIMARY KEY)")
        chaos.fail_backend(env, controller, 0)
        controller.heartbeat()
        controller.heartbeat()
        assert controller.backend("db1").state == BackendState.DISABLED
        controller.disable_backend("db1")  # operator takes it for maintenance
        chaos.revive_backend(env, 0)
        report = controller.heartbeat()
        assert report["resynced"] == []
        assert controller.backend("db1").state == BackendState.DISABLED

    def test_disable_of_already_disabled_backend_keeps_its_checkpoint(self, cluster_env):
        # Regression: disabling an already-DISABLED/FAILED backend used to
        # re-record the checkpoint at the current log head, so the next
        # resync skipped every write it missed — silent divergence.
        env = cluster_env
        controller = env.controllers[0]
        scheduler = controller.scheduler
        scheduler.execute("CREATE TABLE ckpt_t (id INTEGER PRIMARY KEY)")
        chaos.fail_backend(env, controller, 0)
        controller.heartbeat()
        controller.heartbeat()  # auto-disable at checkpoint 1
        original = controller.backend("db1").checkpoint_index
        scheduler.execute("INSERT INTO ckpt_t (id) VALUES (1)")
        scheduler.execute("INSERT INTO ckpt_t (id) VALUES (2)")
        controller.disable_backend("db1")  # must NOT advance to the head
        assert controller.backend("db1").checkpoint_index == original
        assert controller.recovery_log.checkpoints.get("backend:db1").index == original
        chaos.revive_backend(env, 0)
        replayed = controller.enable_backend("db1")
        assert replayed == 2
        _, rows, _ = controller.backend("db1").execute("SELECT COUNT(*) FROM ckpt_t")
        assert rows == [(2,)]

    def test_detector_resyncs_write_path_failures(self, cluster_env):
        env = cluster_env
        controller = env.controllers[0]
        scheduler = controller.scheduler
        scheduler.execute("CREATE TABLE wf_t (id INTEGER PRIMARY KEY)")
        chaos.fail_backend(env, controller, 0)
        scheduler.execute("INSERT INTO wf_t (id) VALUES (1)")  # marks db1 FAILED
        assert controller.backend("db1").state == BackendState.FAILED
        chaos.revive_backend(env, 0)
        report = controller.heartbeat()
        assert report["resynced"] == ["db1"]
        _, rows, _ = controller.backend("db1").execute("SELECT COUNT(*) FROM wf_t")
        assert rows == [(1,)]

    def test_background_heartbeat_thread_lifecycle(self, cluster_env):
        env = cluster_env
        controller = Controller(
            ControllerConfig(
                controller_id="hb-ctrl",
                virtual_database="vdb",
                failure_detector_enabled=True,
                heartbeat_interval=0.01,
            ),
            env.network,
            "hb-ctrl:25322",
            backends=[
                Backend(
                    "db1",
                    lambda: legacy_driver.connect(
                        f"pydb://{env.replica_addresses[0]}/{env.database_name}",
                        network=env.network,
                    ),
                )
            ],
        )
        controller.start()
        try:
            assert chaos.wait_until(lambda: controller.failure_detector.checks > 0)
        finally:
            controller.stop()
        assert controller._heartbeat_thread is None
