"""Setup shim for environments without the ``wheel`` package.

The project metadata lives in ``pyproject.toml``; this file only enables
legacy editable installs (``pip install -e . --no-use-pep517``) in offline
environments that lack the wheel build backend.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
