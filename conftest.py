"""Repo-level pytest configuration: a deadlock watchdog + chaos seeds.

The lock manager's failure mode is not a wrong answer but a silent hang
(the self-deadlock this PR fixes hung exactly this way), and a hung CI
job idles until the runner's global timeout with no clue where it
stuck. pytest-timeout is not installable in this environment, so a
stdlib ``faulthandler`` watchdog arms before every test: any single
test exceeding ``REPRO_TEST_TIMEOUT`` seconds (default 120) gets every
thread's stack dumped to stderr and the process killed — the dump shows
which locks the threads are parked on.

Set ``REPRO_TEST_TIMEOUT=0`` to disable (e.g. when stepping through a
test under a debugger).

Seeded chaos tests (tests/chaos.py): when a test that drew a chaos seed
fails, the seed is attached to its report as a ``chaos seed`` section,
so the failing interleaving is replayable with
``REPRO_CHAOS_SEED=<seed>`` even when captured stdout was swallowed.
"""

from __future__ import annotations

import faulthandler
import os
import sys

import pytest

_TIMEOUT_S = float(os.environ.get("REPRO_TEST_TIMEOUT", "120"))


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_protocol(item, nextitem):
    if _TIMEOUT_S > 0:
        faulthandler.dump_traceback_later(_TIMEOUT_S, exit=True)
    try:
        yield
    finally:
        if _TIMEOUT_S > 0:
            faulthandler.cancel_dump_traceback_later()


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when != "call" or not report.failed:
        return
    chaos = sys.modules.get("chaos") or sys.modules.get("tests.chaos")
    seed = getattr(chaos, "LAST_SEED", None) if chaos else None
    if seed is not None:
        report.sections.append(
            ("chaos seed", f"rerun this interleaving with REPRO_CHAOS_SEED={seed}")
        )
