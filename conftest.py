"""Repo-level pytest configuration: a deadlock watchdog.

The lock manager's failure mode is not a wrong answer but a silent hang
(the self-deadlock this PR fixes hung exactly this way), and a hung CI
job idles until the runner's global timeout with no clue where it
stuck. pytest-timeout is not installable in this environment, so a
stdlib ``faulthandler`` watchdog arms before every test: any single
test exceeding ``REPRO_TEST_TIMEOUT`` seconds (default 120) gets every
thread's stack dumped to stderr and the process killed — the dump shows
which locks the threads are parked on.

Set ``REPRO_TEST_TIMEOUT=0`` to disable (e.g. when stepping through a
test under a debugger).
"""

from __future__ import annotations

import faulthandler
import os

import pytest

_TIMEOUT_S = float(os.environ.get("REPRO_TEST_TIMEOUT", "120"))


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_protocol(item, nextitem):
    if _TIMEOUT_S > 0:
        faulthandler.dump_traceback_later(_TIMEOUT_S, exit=True)
    try:
        yield
    finally:
        if _TIMEOUT_S > 0:
            faulthandler.cancel_dump_traceback_later()
