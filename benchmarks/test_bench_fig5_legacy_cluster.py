"""E7 — Figure 5: standalone Drivolution server for a legacy Sequoia cluster."""

from benchmarks.conftest import run_and_report
from repro.experiments import fig5_legacy_cluster


def test_bench_e7_fig5(benchmark):
    result = run_and_report(
        benchmark, fig5_legacy_cluster.run_experiment, client_count=3, requests_per_phase=6
    )
    assert all(row["failed_requests"] == 0 for row in result.rows)
    assert all(row["client_machines_modified"] == 0 for row in result.rows)
