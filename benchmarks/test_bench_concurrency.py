"""Concurrency benchmarks (E15 + E16): conflict-aware parallel write
scheduling vs the single global write lock, key-level locking vs
whole-table locks on a same-table disjoint-key workload, plus
replica-divergence checks under concurrent writers racing a resync.

The interesting shape: with table-level locks, disjoint-table writers
overlap and aggregate write throughput scales with the partition count,
while a conflicting workload (every writer on one table) stays at the
serialised baseline — parallelism exactly where no conflict exists.
Key-level locks repeat the pattern one granularity step down: writers
on disjoint *rows* of one table overlap, writers on the same row stay
serialised. E18 adds the batched-round-trip dimension: concurrent
disjoint auto-commit writers coalesce into one broadcast round trip per
batch (vs one per statement), with a divergence run under racing resyncs
and an admission-control saturation run (bounded p99, retryable
server_busy, zero lost writes). Results are written to
``BENCH_concurrency.json`` so CI can archive them next to the other
benchmark artifacts.
"""

from __future__ import annotations

import json
import os

from benchmarks.conftest import run_and_report
from repro.experiments import concurrency

WRITERS = 4

_OUT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_concurrency.json"
)


def _merge_payload(**sections):
    """Update BENCH_concurrency.json in place: the two benchmark tests
    each own their sections of the one artifact."""
    payload = {}
    if os.path.exists(_OUT_PATH):
        with open(_OUT_PATH, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    payload.update(sections)
    with open(_OUT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)


def test_bench_concurrency(benchmark):
    result = run_and_report(
        benchmark,
        concurrency.run_experiment,
        writers=WRITERS,
        writes_per_writer=25,
        latency_ms=3.0,
    )
    baseline = result.find_row(mode="global-lock")
    parallel = result.find_row(mode="conflict-aware")
    conflicting = result.find_row(mode="conflict-aware/conflicting")
    # Same work, same log size — only the ordering model differs.
    assert baseline["log_entries"] == parallel["log_entries"] == conflicting["log_entries"]
    # The point of the lock manager: disjoint writers overlap. Ideal is
    # ~4x on 4 writers; the gate is the issue's 1.5x floor so a loaded
    # CI runner cannot flake it while lost parallelism still fails.
    assert result.parameters["speedup_x"] >= 1.5
    assert parallel["wall_s"] < baseline["wall_s"]
    # Conflicting writers must NOT overlap: a single table serialises on
    # its lock, so one writer's latency bounds throughput from below.
    assert conflicting["wall_s"] >= parallel["wall_s"]
    # Observability: the parallel modes acquired table locks, the
    # baseline only ever took the exclusive mode.
    assert baseline["table_acquisitions"] == 0
    assert parallel["table_acquisitions"] == WRITERS * 25

    divergence = run_and_report(
        benchmark=_NullBenchmark(), run_experiment=concurrency.run_divergence_experiment
    )
    row = divergence.rows[0]
    # Safety under the concurrent workload: every write logged, every
    # hosting replica identical after resyncs raced the writers, and the
    # log's per-table sequences strictly increasing.
    assert row["logged"] == row["writes"]
    assert row["replicas_converged"] is True
    assert row["per_table_order_ok"] is True
    assert row["hosts_match_placement"] is True

    _merge_payload(
        experiment_id=result.experiment_id,
        title=result.title,
        parameters=result.parameters,
        rows=result.rows,
        notes=result.notes,
        divergence={
            "experiment_id": divergence.experiment_id,
            "parameters": divergence.parameters,
            "rows": divergence.rows,
            "notes": divergence.notes,
        },
    )


def test_bench_key_locking(benchmark):
    result = run_and_report(
        benchmark,
        concurrency.run_key_experiment,
        writers=WRITERS,
        writes_per_writer=25,
        latency_ms=3.0,
    )
    baseline = result.find_row(mode="table-locks")
    keyed = result.find_row(mode="key-level")
    conflicting = result.find_row(mode="key-level/conflicting")
    # Same work, same log size — only the lock granularity differs.
    assert baseline["log_entries"] == keyed["log_entries"] == conflicting["log_entries"]
    # The point of key-level locking: disjoint rows of ONE table overlap.
    # Ideal is ~4x on 4 writers; the issue's gate is the 2x floor so a
    # loaded CI runner cannot flake it while lost parallelism still fails.
    assert result.parameters["speedup_x"] >= 2.0
    assert keyed["wall_s"] < baseline["wall_s"]
    # Writers on the same row must NOT overlap: conflicting keys
    # serialise at the table-lock baseline's pace, not the parallel one.
    assert conflicting["wall_s"] >= keyed["wall_s"]
    # Observability: the keyed modes acquired key locks, the baseline
    # stayed at table granularity (key_level_locking=False).
    assert baseline["key_acquisitions"] == 0
    assert baseline["table_acquisitions"] == WRITERS * 25
    assert keyed["key_acquisitions"] == WRITERS * 25
    assert keyed["table_acquisitions"] == 0

    divergence = run_and_report(
        benchmark=_NullBenchmark(),
        run_experiment=concurrency.run_key_divergence_experiment,
    )
    row = divergence.rows[0]
    # Safety: every write logged, every replica identical after resyncs
    # raced the same-table writers, per-table log sequences monotone —
    # key-parallel broadcasts may execute in different orders on
    # different replicas, so convergence is exactly what commuting
    # disjoint-row statements must buy.
    assert row["logged"] == row["writes"]
    assert row["replicas_converged"] is True
    assert row["final_rows_ok"] is True
    assert row["per_table_order_ok"] is True
    assert row["key_acquisitions"] > 0

    _merge_payload(
        key_locking={
            "experiment_id": result.experiment_id,
            "title": result.title,
            "parameters": result.parameters,
            "rows": result.rows,
            "notes": result.notes,
        },
        key_divergence={
            "experiment_id": divergence.experiment_id,
            "parameters": divergence.parameters,
            "rows": divergence.rows,
            "notes": divergence.notes,
        },
    )


class _NullBenchmark:
    """Runs the target once without pytest-benchmark accounting (the
    module's single `benchmark` fixture is already consumed by the
    throughput comparison above)."""

    def pedantic(self, target, rounds=1, iterations=1):
        return target()


def test_bench_session_scaling(benchmark):
    """E17 — the massive-concurrency front end (docs/wire.md).

    Gates the tentpole's acceptance criteria: 5k+ logical sessions
    multiplexed over a handful of channels with the controller's thread
    count bounded by the fixed pools (not O(sessions)), and group commit
    buying >=2x auto-commit write throughput over per-statement fsync on
    a durable FileLogStore with a realistic fsync cost."""
    SESSIONS = 5000
    CHANNELS = 8
    WORKER_POOL = 16
    result = run_and_report(
        benchmark,
        concurrency.run_session_scaling_experiment,
        sessions=SESSIONS,
        channels=CHANNELS,
        worker_pool_size=WORKER_POOL,
    )
    mux = result.find_row(mode="multiplexed")
    baseline = result.find_row(mode="thread-per-connection")
    # The headline: 5k logical sessions actually open, all multiplexed
    # over the configured number of physical channels.
    assert mux["sessions"] >= 5000
    assert mux["active_sessions"] == mux["sessions"]
    assert mux["physical_channels"] == CHANNELS
    assert mux["pipeline_ok"] is True
    # Thread ceiling: the whole client+controller footprint for 5k
    # sessions stays under channels (driver readers) + channels
    # (controller readers) + worker pool + slack — a fixed bound that
    # does not move with the session count.
    thread_ceiling = 2 * CHANNELS + WORKER_POOL + 8
    assert mux["thread_delta"] <= thread_ceiling
    assert mux["controller_worker_threads"] <= WORKER_POOL
    assert mux["controller_reader_threads"] <= CHANNELS
    # The baseline grows ~1 thread per connection (the server handler),
    # which is what makes 5k dedicated sessions untenable.
    assert baseline["threads_per_session"] >= 0.9
    assert baseline["projected_threads_at_target"] >= SESSIONS * 0.9
    # And the pool still serves interactively under the probe load.
    assert mux["probe_p99_ms"] < 1000.0

    group = run_and_report(
        benchmark=_NullBenchmark(),
        run_experiment=concurrency.run_group_commit_experiment,
    )
    per_stmt = group.find_row(mode="fsync-per-statement")
    grouped = group.find_row(mode="group-commit")
    # Durability parity: both modes logged every write.
    assert per_stmt["log_entries"] == grouped["log_entries"]
    # The point of group commit: far fewer fsyncs, >=2x the throughput
    # (ideal is ~writers x; the 2x floor keeps a loaded CI runner from
    # flaking while a lost batching path still fails).
    assert grouped["fsyncs"] < per_stmt["fsyncs"] / 2
    assert group.parameters["speedup_x"] >= 2.0
    assert grouped["fsync_groups"] == grouped["fsyncs"]

    _merge_payload(
        session_scaling={
            "experiment_id": result.experiment_id,
            "title": result.title,
            "parameters": result.parameters,
            "rows": result.rows,
            "notes": result.notes,
        },
        group_commit={
            "experiment_id": group.experiment_id,
            "parameters": group.parameters,
            "rows": group.rows,
            "notes": group.notes,
        },
    )


def test_bench_write_batching(benchmark):
    """E18 — batched backend round trips (docs/scheduling.md).

    Gates the issue's acceptance criteria: 8 disjoint auto-commit writers
    at an injected per-round-trip latency gain >=2x from cross-session
    write batching (one broadcast round trip per coalesced batch), the
    batched path stays safe under racing disable/resync cycles, and a
    saturation run against the admission bounds shows bounded p99 with
    retryable server_busy rejections — degradation, not collapse."""
    result = run_and_report(
        benchmark,
        concurrency.run_write_batching_experiment,
        writers=8,
        writes_per_writer=20,
        round_trip_ms=2.0,
    )
    per_stmt = result.find_row(mode="per-statement")
    batched = result.find_row(mode="batched")
    # Durability parity: both modes logged every write.
    assert per_stmt["log_entries"] == batched["log_entries"] == 8 * 20
    # The point of batching: far fewer round trips, >=2x the throughput
    # (ideal is ~writers x; the 2x floor keeps a loaded CI runner from
    # flaking while a lost batching path still fails).
    assert result.parameters["speedup_x"] >= 2.0
    assert batched["round_trips"] < per_stmt["round_trips"]
    assert batched["writes_per_round_trip"] > 1.0
    assert batched["batch_rounds"] > 0
    assert batched["max_batch_size"] > 1

    divergence = run_and_report(
        benchmark=_NullBenchmark(),
        run_experiment=concurrency.run_batched_divergence_experiment,
    )
    row = divergence.rows[0]
    # Safety: batched writes racing disable/resync cycles lose nothing —
    # every write logged, every hosting replica identical, per-table log
    # sequences strictly increasing, and the batcher actually ran rounds.
    assert row["all_writes_logged"] is True
    assert row["replicas_converged"] is True
    assert row["per_table_order_ok"] is True
    assert row["batch_rounds"] > 0

    admission = run_and_report(
        benchmark=_NullBenchmark(),
        run_experiment=concurrency.run_admission_experiment,
    )
    saturated = admission.rows[0]
    # Saturation was real (statements actually refused and retried), the
    # configured bound held, and no write was lost to a rejection.
    assert saturated["server_busy_rejections"] > 0
    assert saturated["server_busy_retries"] > 0
    assert saturated["in_flight_peak"] <= admission.parameters["max_in_flight_statements"]
    assert saturated["all_writes_logged"] is True
    assert saturated["replicas_converged"] is True
    assert saturated["final_rows_ok"] is True
    # Bounded degradation: client-observed p99 (including backoff) stays
    # interactive instead of collapsing into unbounded queueing.
    assert saturated["p99_ms"] < 1000.0

    _merge_payload(
        write_batching={
            "experiment_id": result.experiment_id,
            "title": result.title,
            "parameters": result.parameters,
            "rows": result.rows,
            "notes": result.notes,
        },
        batched_divergence={
            "experiment_id": divergence.experiment_id,
            "parameters": divergence.parameters,
            "rows": divergence.rows,
            "notes": divergence.notes,
        },
        admission={
            "experiment_id": admission.experiment_id,
            "parameters": admission.parameters,
            "rows": admission.rows,
            "notes": admission.notes,
        },
    )
