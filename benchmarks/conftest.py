"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables/figures/case studies
(see DESIGN.md's experiment index). The experiment result table is printed
so running ``pytest benchmarks/ --benchmark-only -s`` shows the same rows
that EXPERIMENTS.md records; pytest-benchmark reports how long each
scenario takes to regenerate.
"""

from __future__ import annotations


def run_and_report(benchmark, run_experiment, rounds: int = 1, **kwargs):
    """Run ``run_experiment(**kwargs)`` under pytest-benchmark and print its table."""
    result_holder = {}

    def target():
        result_holder["result"] = run_experiment(**kwargs)
        return result_holder["result"]

    benchmark.pedantic(target, rounds=rounds, iterations=1)
    result = result_holder["result"]
    print()
    print(result.to_text())
    return result
