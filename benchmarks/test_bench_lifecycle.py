"""E1 — lifecycle step counts (paper Section 2 vs Section 3.2)."""

from benchmarks.conftest import run_and_report
from repro.experiments import lifecycle


def test_bench_e1_lifecycle(benchmark):
    result = run_and_report(benchmark, lifecycle.run_experiment, client_counts=[1, 10, 100, 1000])
    row = result.find_row(clients=1000)
    assert row["drivolution_update_ops"] == 1
    assert row["legacy_update_ops"] == 9000
