"""E4 — Figure 2: external Drivolution server for a legacy database."""

from benchmarks.conftest import run_and_report
from repro.experiments import fig2_legacy_server


def test_bench_e4_fig2(benchmark):
    result = run_and_report(benchmark, fig2_legacy_server.run_experiment, client_count=3, requests_per_client=10)
    assert all(row["client_machines_modified"] == 0 for row in result.rows)
