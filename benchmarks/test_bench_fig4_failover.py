"""E6 — Figure 4: master/slave failover by pushing a pre-configured driver."""

from benchmarks.conftest import run_and_report
from repro.experiments import fig4_failover


def test_bench_e6_fig4(benchmark):
    result = run_and_report(
        benchmark, fig4_failover.run_experiment, client_count=5, requests_per_phase=10
    )
    drivolution = result.find_row(approach="drivolution")
    manual = result.find_row(approach="manual reconfiguration")
    assert drivolution["failed_requests"] < manual["failed_requests"]
    assert drivolution["per_client_operations"] == 0
