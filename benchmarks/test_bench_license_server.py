"""E10 — Section 5.4.2: Drivolution as a license server."""

from benchmarks.conftest import run_and_report
from repro.experiments import license_server_exp


def test_bench_e10_license_server(benchmark):
    result = run_and_report(
        benchmark, license_server_exp.run_experiment, license_count=3, client_count=5
    )
    dynamic = result.find_row(policy="dynamic")
    assert dynamic["reclaimed_after_crash"] > 0
