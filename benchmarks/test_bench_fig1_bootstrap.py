"""E3 — Figure 1: bootstrap protocol and coexistence with conventional drivers."""

from benchmarks.conftest import run_and_report
from repro.experiments import fig1_architecture


def test_bench_e3_fig1(benchmark):
    result = run_and_report(benchmark, fig1_architecture.run_experiment, requests_per_app=20)
    assert all(row["requests_failed"] == 0 for row in result.rows)
