"""E2 — Table 5: heterogeneous DBA administration steps."""

from benchmarks.conftest import run_and_report
from repro.experiments import table5_admin


def test_bench_e2_table5(benchmark):
    result = run_and_report(benchmark, table5_admin.run_experiment, dba_counts=[2, 5, 10], database_count=4)
    paper_row = result.find_row(task="driver upgrade", dbas=2)
    assert paper_row["legacy_steps"] == 6
    assert paper_row["drivolution_steps"] == 2
