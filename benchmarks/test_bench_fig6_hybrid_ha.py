"""E8 — Figure 6: replicated Drivolution servers embedded in the controllers."""

from benchmarks.conftest import run_and_report
from repro.experiments import fig6_hybrid_ha


def test_bench_e8_fig6(benchmark):
    result = run_and_report(
        benchmark, fig6_hybrid_ha.run_experiment, client_count=4, requests_per_phase=6
    )
    assert result.find_row(phase="install on controller1")["replicated_to_all_controllers"] is True
    assert result.find_row(phase="controller1 failed")["failed_requests"] == 0
