"""E11/E13 — policy matrices.

E11: Tables 3/4 and Section 3.3 (policies, revocation, lease-time sweep).
E13a: the request-scheduling policy matrix — every read load-balancing
policy × query cache on/off on the refactored cluster scheduler.
"""

from benchmarks.conftest import run_and_report
from repro.experiments import policy_matrix


def test_bench_e11a_expiration_policy_matrix(benchmark):
    result = run_and_report(
        benchmark, policy_matrix.run_expiration_policy_matrix, clients=4, connections_per_client=3
    )
    immediate = result.find_row(expiration_policy="IMMEDIATE")
    after_close = result.find_row(expiration_policy="AFTER_CLOSE")
    assert immediate["aborted_transactions"] > 0
    assert after_close["aborted_transactions"] == 0


def test_bench_e11b_revocation(benchmark):
    result = run_and_report(benchmark, policy_matrix.run_revocation_study)
    assert result.rows[0]["outcome"] == "revoked"


def test_bench_e11c_lease_time_sweep(benchmark):
    result = run_and_report(
        benchmark,
        policy_matrix.run_lease_time_sweep,
        lease_times_ms=[500, 2_000, 10_000, 60_000],
        clients=5,
        observation_window_s=60.0,
    )
    rows = [row for row in result.rows if row["mode"] == "lease polling"]
    delays = [row["propagation_delay_s"] for row in rows]
    traffic = [row["server_requests_in_window"] for row in rows]
    assert delays == sorted(delays)
    assert traffic == sorted(traffic, reverse=True)


def test_bench_e13a_scheduling_policy_matrix(benchmark):
    result = run_and_report(
        benchmark,
        policy_matrix.run_scheduling_policy_matrix,
        policies=("round_robin", "least_pending", "weighted"),
        cache_modes=(False, True),
        clients=3,
        requests_per_client=40,
        replicas=3,
    )
    # Every policy x cache combination ran the full workload cleanly.
    policies_seen = {row["read_policy"] for row in result.rows}
    assert policies_seen == {"round_robin", "least_pending", "weighted"}
    assert len(result.rows) == 6
    assert all(row["failed"] == 0 for row in result.rows)
    # Tail-latency percentiles are reported and ordered.
    assert all(row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"] for row in result.rows)
    # The query cache actually absorbs repeated SELECTs.
    for policy in policies_seen:
        cached = result.find_row(read_policy=policy, query_cache=True)
        uncached = result.find_row(read_policy=policy, query_cache=False)
        assert cached["cache_hits"] > 0
        assert uncached["cache_hits"] == 0
