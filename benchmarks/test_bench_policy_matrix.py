"""E11 — Tables 3/4 and Section 3.3: policies, revocation, lease-time sweep."""

from benchmarks.conftest import run_and_report
from repro.experiments import policy_matrix


def test_bench_e11a_expiration_policy_matrix(benchmark):
    result = run_and_report(
        benchmark, policy_matrix.run_expiration_policy_matrix, clients=4, connections_per_client=3
    )
    immediate = result.find_row(expiration_policy="IMMEDIATE")
    after_close = result.find_row(expiration_policy="AFTER_CLOSE")
    assert immediate["aborted_transactions"] > 0
    assert after_close["aborted_transactions"] == 0


def test_bench_e11b_revocation(benchmark):
    result = run_and_report(benchmark, policy_matrix.run_revocation_study)
    assert result.rows[0]["outcome"] == "revoked"


def test_bench_e11c_lease_time_sweep(benchmark):
    result = run_and_report(
        benchmark,
        policy_matrix.run_lease_time_sweep,
        lease_times_ms=[500, 2_000, 10_000, 60_000],
        clients=5,
        observation_window_s=60.0,
    )
    rows = [row for row in result.rows if row["mode"] == "lease polling"]
    delays = [row["propagation_delay_s"] for row in rows]
    traffic = [row["server_requests_in_window"] for row in rows]
    assert delays == sorted(delays)
    assert traffic == sorted(traffic, reverse=True)
