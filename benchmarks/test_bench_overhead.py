"""E12 — bootloader overhead: connect and per-statement latency."""

from benchmarks.conftest import run_and_report
from repro.cluster.wire import make_result
from repro.experiments import overhead


def test_bench_e12_overhead(benchmark):
    result = run_and_report(
        benchmark, overhead.run_experiment, statement_count=200, connect_count=20
    )
    connect_row = result.find_row(metric="connect latency (ms)")
    assert connect_row["bootloader_first"] >= connect_row["bootloader_subsequent"]

    # Wire-frame overhead: make_result must not copy an already
    # list-of-lists row set — the controller's hot reply path builds one
    # frame per statement, and the row copy was pure overhead whenever
    # the scheduler already produced the wire shape.
    shaped = [[1, "a"], [2, "b"]]
    assert make_result(["id", "name"], shaped, 2)["rows"] is shaped
    mixed = [(1, "a"), (2, "b")]
    reshaped = make_result(["id", "name"], mixed, 2)["rows"]
    assert reshaped is not mixed and reshaped == [[1, "a"], [2, "b"]]
