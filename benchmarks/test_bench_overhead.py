"""E12 — bootloader overhead: connect and per-statement latency, plus
dispatch-layer micro-checks (wire-frame shaping, batched dispatch) and
the tracing-overhead gate from docs/observability.md."""

import time

from benchmarks.conftest import run_and_report
from repro.cluster.backend import Backend
from repro.cluster.broadcaster import WriteBroadcaster
from repro.cluster.driver import ClusterDriverRuntime
from repro.cluster.wire import make_result
from repro.experiments import overhead


def test_bench_e12_overhead(benchmark):
    result = run_and_report(
        benchmark, overhead.run_experiment, statement_count=200, connect_count=20
    )
    connect_row = result.find_row(metric="connect latency (ms)")
    assert connect_row["bootloader_first"] >= connect_row["bootloader_subsequent"]

    # Wire-frame overhead: make_result must not copy an already
    # list-of-lists row set — the controller's hot reply path builds one
    # frame per statement, and the row copy was pure overhead whenever
    # the scheduler already produced the wire shape.
    shaped = [[1, "a"], [2, "b"]]
    assert make_result(["id", "name"], shaped, 2)["rows"] is shaped
    mixed = [(1, "a"), (2, "b")]
    reshaped = make_result(["id", "name"], mixed, 2)["rows"]
    assert reshaped is not mixed and reshaped == [[1, "a"], [2, "b"]]


class _CountingConnection:
    """Fake DB-API connection counting how it is driven: ``calls`` is
    per-statement executes, ``batch_calls`` native batch round trips."""

    threadsafety = 1

    def __init__(self):
        self.calls = 0
        self.batch_calls = 0
        self.closed = False
        self.driver_info = {"name": "counting"}

    def cursor(self):
        connection = self

        class _Cursor:
            description = [("ok", None, None, None, None, None, None)]
            rowcount = 1

            def execute(self, sql, params=None):
                connection.calls += 1

            def fetchall(self):
                return [[1]]

            def close(self):
                pass

        return _Cursor()

    def execute_batch(self, pairs):
        self.batch_calls += 1
        return [(["ok"], [[1]], 1) for _ in pairs]

    def close(self):
        self.closed = True


def test_bench_batch_dispatch(benchmark):
    """Batched dispatch micro-bench: broadcasting N statements as one
    batch costs exactly one native round trip on the connection, where
    the per-statement loop pays N — counted, not timed, so a loaded CI
    runner cannot flake it."""
    BATCH = 16
    connection = _CountingConnection()
    backend = Backend("b1", lambda: connection)
    broadcaster = WriteBroadcaster(parallel=False)
    statements = [(f"UPDATE t SET v = {i} WHERE id = {i}", None) for i in range(BATCH)]

    def dispatch_batch():
        return broadcaster.broadcast_batch([backend], statements)

    batched = benchmark.pedantic(dispatch_batch, rounds=1, iterations=1)
    assert connection.batch_calls == 1
    assert connection.calls == 0
    assert batched.statement_count == BATCH
    assert all(
        outcome.ok for per_backend in batched.outcomes for outcome in per_backend
    )
    # Statement-major re-slicing matches the scalar outcome shape.
    assert batched.per_statement(0).result == (["ok"], [[1]], 1)

    for sql, params in statements:
        broadcaster.broadcast([backend], sql, params)
    assert connection.calls == BATCH  # one round trip per statement
    assert connection.batch_calls == 1  # unchanged
    stats = broadcaster.stats()
    assert stats["batch_broadcasts"] == 1
    assert stats["batched_statements"] == BATCH
    # Each broadcast (batched or not) counts as one fan-out round.
    assert stats["broadcasts"] == 1 + BATCH
    broadcaster.close()


def _traced_bench_cluster(tracing: bool):
    """A real two-replica cluster (in-memory network, real SQL engine
    backends) + driver connection for the tracing-overhead gate; returns
    ``(env, controller, connection)``."""
    from repro.experiments.environments import build_cluster

    env = build_cluster(
        replicas=2,
        controllers=1,
        controller_options={"tracing": True} if tracing else None,
    )
    runtime = ClusterDriverRuntime(name=f"bench-trace-{'on' if tracing else 'off'}")
    options = {"trace": "true"} if tracing else {}
    connection = runtime.connect(env.client_url(), network=env.network, **options)
    cursor = connection.cursor()
    cursor.execute("CREATE TABLE bench_events (id INT PRIMARY KEY, v TEXT)")
    # Pre-seeded rows so the measured workload is UPDATE/SELECT only:
    # steady-state statements whose cost does not grow with the rounds
    # (INSERTs would grow the table and skew later rounds slower).
    for row in range(50):
        cursor.execute(f"INSERT INTO bench_events VALUES ({row}, 'seed')")
    return env, env.controllers[0], connection


def test_bench_tracing_overhead(benchmark):
    """Tracing-overhead gate (docs/observability.md), on the real
    cluster stack — in-memory network, real SQL engine backends: the
    system as shipped, not a zero-cost fake that would measure pure
    dispatch.

    Two modes are gated separately:

    * ``ControllerConfig(tracing=True)`` alone — server spans on every
      stage, slow-log capture, histogram observation — must stay within
      **10%** of the untraced path. This is the knob an operator leaves
      on in production.
    * A connection that additionally asks for the spans back on every
      reply (``trace=true``) pays serialisation plus bigger frames on
      top; that per-statement debug mode is gated at **15%**.

    Methodology: short statement chunks alternate between the
    configurations, so a loaded CI runner's transient stalls hit all
    sides equally; each side is then scored by the sum of its fastest
    half of chunks (per-chunk minima are too noisy, full sums let one
    GC pause or scheduler stall on either side decide the verdict)."""
    CHUNK = 10
    CHUNKS = 50
    EPSILON = 0.002  # absolute seconds of slack on the summed halves

    def run_chunk(connection, base: int) -> float:
        cursor = connection.cursor()
        started = time.perf_counter()
        for offset in range(CHUNK):
            index = base + offset
            if index % 3 == 2:
                cursor.execute("SELECT * FROM bench_events WHERE id = 5")
            else:
                cursor.execute(
                    f"UPDATE bench_events SET v = 'x' WHERE id = {index % 50}"
                )
        return time.perf_counter() - started

    plain_env, plain_controller, plain = _traced_bench_cluster(tracing=False)
    traced_env, traced_controller, traced = _traced_bench_cluster(tracing=True)
    # Same traced controller, but the connection does not ask for spans
    # on its replies: the cost of the tracing *knob* by itself.
    server_runtime = ClusterDriverRuntime(name="bench-trace-server-only")
    server_only = server_runtime.connect(traced_env.client_url(), network=traced_env.network)
    try:
        assert plain.tracing is False and traced.tracing is True
        assert server_only.tracing is False  # spans stay server-side
        for base in range(0, 10 * CHUNK, CHUNK):  # warm pools and PK cache
            run_chunk(plain, base)
            run_chunk(server_only, base)
            run_chunk(traced, base)
        plain_times, server_times, wire_times = [], [], []
        for base in range(0, CHUNKS * CHUNK, CHUNK):
            plain_times.append(run_chunk(plain, base))
            server_times.append(run_chunk(server_only, base))
            wire_times.append(run_chunk(traced, base))
        benchmark.pedantic(run_chunk, args=(traced, 0), rounds=1, iterations=1)
        # The traced sides really traced: spans came back on the wire
        # for the requesting connection, and the controller counted
        # every statement of both traced connections.
        assert traced.last_trace is not None and traced.last_trace["spans"]
        assert traced_controller.stats()["obs"]["traced_statements"] > 0
        assert plain_controller.stats()["obs"]["traced_statements"] == 0
        half = CHUNKS // 2
        plain_sum = sum(sorted(plain_times)[:half])
        server_sum = sum(sorted(server_times)[:half])
        wire_sum = sum(sorted(wire_times)[:half])
        per_round = f"per {half}x{CHUNK}-statement best-half"
        assert server_sum <= plain_sum * 1.10 + EPSILON, (
            f"tracing knob overhead gate: traced {server_sum * 1000:.2f} ms vs "
            f"untraced {plain_sum * 1000:.2f} ms {per_round}"
        )
        assert wire_sum <= plain_sum * 1.15 + EPSILON, (
            f"wire span-return overhead gate: traced {wire_sum * 1000:.2f} ms vs "
            f"untraced {plain_sum * 1000:.2f} ms {per_round}"
        )
    finally:
        plain.close()
        server_only.close()
        traced.close()
        plain_env.close()
        traced_env.close()
