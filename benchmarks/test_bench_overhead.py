"""E12 — bootloader overhead: connect and per-statement latency, plus
dispatch-layer micro-checks (wire-frame shaping, batched dispatch)."""

from benchmarks.conftest import run_and_report
from repro.cluster.backend import Backend
from repro.cluster.broadcaster import WriteBroadcaster
from repro.cluster.wire import make_result
from repro.experiments import overhead


def test_bench_e12_overhead(benchmark):
    result = run_and_report(
        benchmark, overhead.run_experiment, statement_count=200, connect_count=20
    )
    connect_row = result.find_row(metric="connect latency (ms)")
    assert connect_row["bootloader_first"] >= connect_row["bootloader_subsequent"]

    # Wire-frame overhead: make_result must not copy an already
    # list-of-lists row set — the controller's hot reply path builds one
    # frame per statement, and the row copy was pure overhead whenever
    # the scheduler already produced the wire shape.
    shaped = [[1, "a"], [2, "b"]]
    assert make_result(["id", "name"], shaped, 2)["rows"] is shaped
    mixed = [(1, "a"), (2, "b")]
    reshaped = make_result(["id", "name"], mixed, 2)["rows"]
    assert reshaped is not mixed and reshaped == [[1, "a"], [2, "b"]]


class _CountingConnection:
    """Fake DB-API connection counting how it is driven: ``calls`` is
    per-statement executes, ``batch_calls`` native batch round trips."""

    threadsafety = 1

    def __init__(self):
        self.calls = 0
        self.batch_calls = 0
        self.closed = False
        self.driver_info = {"name": "counting"}

    def cursor(self):
        connection = self

        class _Cursor:
            description = [("ok", None, None, None, None, None, None)]
            rowcount = 1

            def execute(self, sql, params=None):
                connection.calls += 1

            def fetchall(self):
                return [[1]]

            def close(self):
                pass

        return _Cursor()

    def execute_batch(self, pairs):
        self.batch_calls += 1
        return [(["ok"], [[1]], 1) for _ in pairs]

    def close(self):
        self.closed = True


def test_bench_batch_dispatch(benchmark):
    """Batched dispatch micro-bench: broadcasting N statements as one
    batch costs exactly one native round trip on the connection, where
    the per-statement loop pays N — counted, not timed, so a loaded CI
    runner cannot flake it."""
    BATCH = 16
    connection = _CountingConnection()
    backend = Backend("b1", lambda: connection)
    broadcaster = WriteBroadcaster(parallel=False)
    statements = [(f"UPDATE t SET v = {i} WHERE id = {i}", None) for i in range(BATCH)]

    def dispatch_batch():
        return broadcaster.broadcast_batch([backend], statements)

    batched = benchmark.pedantic(dispatch_batch, rounds=1, iterations=1)
    assert connection.batch_calls == 1
    assert connection.calls == 0
    assert batched.statement_count == BATCH
    assert all(
        outcome.ok for per_backend in batched.outcomes for outcome in per_backend
    )
    # Statement-major re-slicing matches the scalar outcome shape.
    assert batched.per_statement(0).result == (["ok"], [[1]], 1)

    for sql, params in statements:
        broadcaster.broadcast([backend], sql, params)
    assert connection.calls == BATCH  # one round trip per statement
    assert connection.batch_calls == 1  # unchanged
    stats = broadcaster.stats()
    assert stats["batch_broadcasts"] == 1
    assert stats["batched_statements"] == BATCH
    # Each broadcast (batched or not) counts as one fan-out round.
    assert stats["broadcasts"] == 1 + BATCH
    broadcaster.close()
