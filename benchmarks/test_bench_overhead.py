"""E12 — bootloader overhead: connect and per-statement latency."""

from benchmarks.conftest import run_and_report
from repro.experiments import overhead


def test_bench_e12_overhead(benchmark):
    result = run_and_report(
        benchmark, overhead.run_experiment, statement_count=200, connect_count=20
    )
    connect_row = result.find_row(metric="connect latency (ms)")
    assert connect_row["bootloader_first"] >= connect_row["bootloader_subsequent"]
