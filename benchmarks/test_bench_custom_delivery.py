"""E9 — Section 5.4.1: per-client driver assembly vs monolithic delivery."""

from benchmarks.conftest import run_and_report
from repro.experiments import custom_delivery


def test_bench_e9_custom_delivery(benchmark):
    result = run_and_report(benchmark, custom_delivery.run_experiment, payload_size=4096)
    total = result.find_row(client="TOTAL")
    assert total["assembled_bytes"] < total["monolithic_bytes"]
