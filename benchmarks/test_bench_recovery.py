"""Recovery-subsystem benchmarks: resync throughput and recovery time
vs. log length, with compaction (dump-based cold start) on and off,
plus the E19 controller-failover bench (docs/ha.md): kill the HA
primary under a sustained write storm and measure crash-to-first-
successful-write, gating zero lost / zero duplicated acked writes.

The interesting shape: log-replay recovery time grows linearly with the
number of missed writes, while a dump-based cold start scales with the
*data* size — an update-heavy workload (long log, small table) is exactly
where compaction + dump wins. Results are also written to
``BENCH_recovery.json`` so CI can archive them as an artifact.
"""

from __future__ import annotations

import json
import os
import threading
import time

from benchmarks.conftest import run_and_report
from repro.experiments.harness import ExperimentResult


def _merge_into_bench_json(update):
    """Merge ``update`` into BENCH_recovery.json, keeping other keys.

    Both tests in this file write to the same artifact — the recovery
    experiment owns the top-level keys, the failover experiment its own
    ``"failover"`` key — so each does read-update-write instead of
    clobbering whatever the other produced this run (or a prior one).
    """
    out_path = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_recovery.json",
    )
    data = {}
    if os.path.exists(out_path):
        try:
            with open(out_path, encoding="utf-8") as handle:
                data = json.load(handle)
        except (ValueError, OSError):
            data = {}
    if not isinstance(data, dict):
        data = {}
    data.update(update)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2)

#: Rows in the table (fixed) — the log is UPDATE-heavy on purpose.
TABLE_ROWS = 20


def _build(controller_options=None):
    from repro.experiments.environments import build_cluster

    return build_cluster(replicas=2, controllers=1, controller_options=controller_options or {})


def _populate(scheduler, rows=TABLE_ROWS):
    scheduler.execute(
        "CREATE TABLE bench_t (id INTEGER NOT NULL PRIMARY KEY, v INTEGER)"
    )
    for i in range(rows):
        scheduler.execute("INSERT INTO bench_t (id, v) VALUES ($i, 0)", {"i": i})


def _write_log_tail(scheduler, length):
    for n in range(length):
        scheduler.execute(
            "UPDATE bench_t SET v = $v WHERE id = $i", {"v": n, "i": n % TABLE_ROWS}
        )


def _verify_identical(env):
    counts = set()
    for engine in env.replica_engines:
        session = engine.open_session(env.database_name)
        rows = tuple(sorted(session.execute("SELECT * FROM bench_t").rows))
        counts.add(rows)
    assert len(counts) == 1, "replicas diverged after recovery"


def run_recovery_benchmark(log_lengths=(100, 400)) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="BENCH-recovery",
        title="Recovery time vs log length: tail replay vs compaction + dump cold start",
        parameters={"log_lengths": list(log_lengths), "table_rows": TABLE_ROWS},
    )
    for log_length in log_lengths:
        for compaction in (False, True):
            env = _build()
            try:
                controller = env.controllers[0]
                scheduler = controller.scheduler
                _populate(scheduler)
                controller.disable_backend("db1")
                _write_log_tail(scheduler, log_length)
                if compaction:
                    # Release the disabled backend's pin and compact: the
                    # replay range is gone, recovery must cold-start from
                    # a dump of the healthy replica.
                    controller.recovery_log.release_checkpoint("backend:db1")
                    controller.compact_recovery_log()
                retained = controller.recovery_log.stats()["retained_entries"]
                started = time.perf_counter()
                replayed = controller.enable_backend("db1")
                elapsed = time.perf_counter() - started
                _verify_identical(env)
                result.add_row(
                    mode="dump cold start" if compaction else "tail replay",
                    log_length=log_length,
                    recovery_seconds=round(elapsed, 6),
                    entries_replayed=replayed,
                    replay_throughput_per_s=(
                        round(replayed / elapsed, 1) if replayed and elapsed > 0 else "n/a"
                    ),
                    retained_log_entries=retained,
                    cold_starts=controller.scheduler.cold_starts,
                )
            finally:
                env.close()
    result.add_note(
        "tail-replay recovery grows with log length; compaction keeps the "
        "retained log bounded and dump cold start scales with table size instead"
    )
    return result


def test_bench_recovery(benchmark):
    result = run_and_report(benchmark, run_recovery_benchmark)
    replay_rows = [row for row in result.rows if row["mode"] == "tail replay"]
    dump_rows = [row for row in result.rows if row["mode"] == "dump cold start"]
    # Tail replay replays exactly the missed writes; the dump path none.
    for row in replay_rows:
        assert row["entries_replayed"] == row["log_length"]
    for row in dump_rows:
        assert row["entries_replayed"] == 0
        assert row["cold_starts"] == 1
        # Compaction kept the retained log bounded (the pin was released,
        # so everything up to the head was truncatable).
        assert row["retained_log_entries"] == 0
    _merge_into_bench_json(
        {
            "experiment_id": result.experiment_id,
            "title": result.title,
            "parameters": result.parameters,
            "rows": result.rows,
            "notes": result.notes,
        }
    )


#: E19 storm shape: writers stream until told to stop; the bench stops
#: them once the post-crash probe write succeeds.
FAILOVER_WRITERS = 2
FAILOVER_MIN_ACKED_BEFORE_CRASH = 20
FAILOVER_WRITES_CAP = 500


def run_failover_benchmark() -> ExperimentResult:
    """E19: crash the HA primary mid-storm, measure failover seconds.

    ``benchmarks/`` is importable without ``tests/`` on ``sys.path``, so
    the crash is inlined here with the same semantics as
    ``tests/chaos.crash_controller``: endpoint dies first (nothing
    escapes, not even a final replication round), then the process
    state.
    """
    from repro.cluster.driver import ClusterDriverRuntime
    from repro.dbapi import legacy_driver
    from repro.experiments.environments import build_cluster

    result = ExperimentResult(
        experiment_id="BENCH-failover",
        title="E19: primary crash under write storm — failover time, zero-loss convergence",
        parameters={
            "controllers": 3,
            "replicas": 2,
            "writers": FAILOVER_WRITERS,
            "min_acked_before_crash": FAILOVER_MIN_ACKED_BEFORE_CRASH,
        },
    )
    env = build_cluster(replicas=2, controllers=3, ha=True)
    try:
        setup = ClusterDriverRuntime(name="e19-setup").connect(
            env.client_url(), network=env.network
        )
        setup.cursor().execute("CREATE TABLE e19_t (id INTEGER PRIMARY KEY)")
        setup.close()
        primary = next(c for c in env.controllers if c.ha_store.is_primary)

        stop = threading.Event()
        acked = [[] for _ in range(FAILOVER_WRITERS)]
        ambiguous = [[] for _ in range(FAILOVER_WRITERS)]

        def writer(slot):
            conn = ClusterDriverRuntime(name=f"e19-{slot}").connect(
                env.client_url(), network=env.network
            )
            for n in range(FAILOVER_WRITES_CAP):
                if stop.is_set():
                    break
                write_id = slot * 100000 + n
                try:
                    conn.cursor().execute(
                        f"INSERT INTO e19_t (id) VALUES ({write_id})"
                    )
                except Exception:
                    # Durability unknown (crash window / retry hitting
                    # its own earlier duplicate): not acked.
                    ambiguous[slot].append(write_id)
                    if conn.closed:
                        conn = ClusterDriverRuntime(
                            name=f"e19-{slot}-re{n}"
                        ).connect(env.client_url(), network=env.network)
                else:
                    acked[slot].append(write_id)
            try:
                conn.close()
            except Exception:
                pass

        threads = [
            threading.Thread(target=writer, args=(slot,), name=f"e19-writer-{slot}")
            for slot in range(FAILOVER_WRITERS)
        ]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 30.0
        while (
            sum(len(ids) for ids in acked) < FAILOVER_MIN_ACKED_BEFORE_CRASH
            and time.monotonic() < deadline
        ):
            time.sleep(0.005)
        assert (
            sum(len(ids) for ids in acked) >= FAILOVER_MIN_ACKED_BEFORE_CRASH
        ), "storm never got going"

        # Crash: endpoint first, then state, no final flush.
        crashed_at = time.perf_counter()
        env.network.kill_endpoint(primary.address)
        primary.stop(flush=False)

        # Probe from a fresh client until a write lands on the promoted
        # sibling: that's the cluster's observed write outage.
        probe = ClusterDriverRuntime(name="e19-probe").connect(
            env.client_url(), network=env.network
        )
        attempt = 0
        while True:
            attempt += 1
            try:
                probe.cursor().execute(
                    f"INSERT INTO e19_t (id) VALUES ({10_000_000 + attempt})"
                )
            except Exception:
                if probe.closed:
                    probe = ClusterDriverRuntime(name=f"e19-probe-{attempt}").connect(
                        env.client_url(), network=env.network
                    )
                assert attempt < 1000, "no write succeeded after the crash"
            else:
                break
        failover_seconds = time.perf_counter() - crashed_at
        probe.close()
        stop.set()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not any(thread.is_alive() for thread in threads)

        survivors = [c for c in env.controllers if c is not primary]
        new_primaries = [c for c in survivors if c.ha_store.is_primary]
        assert len(new_primaries) == 1, "exactly one sibling must be promoted"
        new_primary = new_primaries[0]

        # Ground truth per physical replica: every acked id present
        # exactly once on every replica.
        acked_ids = sorted(wid for ids in acked for wid in ids)
        lost = 0
        duplicated = 0
        for replica_index in range(len(env.replica_engines)):
            conn = legacy_driver.connect(
                env.replica_url(replica_index), network=env.network
            )
            cursor = conn.cursor()
            cursor.execute("SELECT id FROM e19_t")
            present = [row[0] for row in cursor.fetchall()]
            conn.close()
            duplicated += len(present) - len(set(present))
            lost += len(set(acked_ids) - set(present))
        heads = {c.ha_store.last_index for c in survivors}

        ha = new_primary.stats()["ha"]
        result.add_row(
            failover_seconds=round(failover_seconds, 6),
            probe_attempts=attempt,
            acked_writes=len(acked_ids),
            ambiguous_writes=sum(len(ids) for ids in ambiguous),
            lost_acked_writes=lost,
            duplicated_rows=duplicated,
            new_primary=new_primary.config.controller_id,
            epoch=ha["epoch"],
            replication_rounds=ha["rounds"],
            survivor_heads_converged=len(heads) == 1,
        )
        result.add_note(
            "failover_seconds is crash-to-first-successful-write as a client "
            "sees it: channel drop, driver failover, inline election, retry"
        )
    finally:
        env.close()
    return result


def test_bench_failover(benchmark):
    result = run_and_report(benchmark, run_failover_benchmark)
    (row,) = result.rows
    # The gates docs/ha.md advertises: zero acked writes lost, zero
    # duplicated rows, exactly one promoted sibling at a fresh epoch,
    # surviving logs converged.
    assert row["lost_acked_writes"] == 0
    assert row["duplicated_rows"] == 0
    assert row["epoch"] > 1
    assert row["survivor_heads_converged"]
    assert row["failover_seconds"] > 0
    _merge_into_bench_json(
        {
            "failover": {
                "experiment_id": result.experiment_id,
                "title": result.title,
                "parameters": result.parameters,
                "rows": result.rows,
                "notes": result.notes,
            }
        }
    )
