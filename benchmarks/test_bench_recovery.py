"""Recovery-subsystem benchmarks: resync throughput and recovery time
vs. log length, with compaction (dump-based cold start) on and off.

The interesting shape: log-replay recovery time grows linearly with the
number of missed writes, while a dump-based cold start scales with the
*data* size — an update-heavy workload (long log, small table) is exactly
where compaction + dump wins. Results are also written to
``BENCH_recovery.json`` so CI can archive them as an artifact.
"""

from __future__ import annotations

import json
import os
import time

from benchmarks.conftest import run_and_report
from repro.experiments.harness import ExperimentResult

#: Rows in the table (fixed) — the log is UPDATE-heavy on purpose.
TABLE_ROWS = 20


def _build(controller_options=None):
    from repro.experiments.environments import build_cluster

    return build_cluster(replicas=2, controllers=1, controller_options=controller_options or {})


def _populate(scheduler, rows=TABLE_ROWS):
    scheduler.execute(
        "CREATE TABLE bench_t (id INTEGER NOT NULL PRIMARY KEY, v INTEGER)"
    )
    for i in range(rows):
        scheduler.execute("INSERT INTO bench_t (id, v) VALUES ($i, 0)", {"i": i})


def _write_log_tail(scheduler, length):
    for n in range(length):
        scheduler.execute(
            "UPDATE bench_t SET v = $v WHERE id = $i", {"v": n, "i": n % TABLE_ROWS}
        )


def _verify_identical(env):
    counts = set()
    for engine in env.replica_engines:
        session = engine.open_session(env.database_name)
        rows = tuple(sorted(session.execute("SELECT * FROM bench_t").rows))
        counts.add(rows)
    assert len(counts) == 1, "replicas diverged after recovery"


def run_recovery_benchmark(log_lengths=(100, 400)) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="BENCH-recovery",
        title="Recovery time vs log length: tail replay vs compaction + dump cold start",
        parameters={"log_lengths": list(log_lengths), "table_rows": TABLE_ROWS},
    )
    for log_length in log_lengths:
        for compaction in (False, True):
            env = _build()
            try:
                controller = env.controllers[0]
                scheduler = controller.scheduler
                _populate(scheduler)
                controller.disable_backend("db1")
                _write_log_tail(scheduler, log_length)
                if compaction:
                    # Release the disabled backend's pin and compact: the
                    # replay range is gone, recovery must cold-start from
                    # a dump of the healthy replica.
                    controller.recovery_log.release_checkpoint("backend:db1")
                    controller.compact_recovery_log()
                retained = controller.recovery_log.stats()["retained_entries"]
                started = time.perf_counter()
                replayed = controller.enable_backend("db1")
                elapsed = time.perf_counter() - started
                _verify_identical(env)
                result.add_row(
                    mode="dump cold start" if compaction else "tail replay",
                    log_length=log_length,
                    recovery_seconds=round(elapsed, 6),
                    entries_replayed=replayed,
                    replay_throughput_per_s=(
                        round(replayed / elapsed, 1) if replayed and elapsed > 0 else "n/a"
                    ),
                    retained_log_entries=retained,
                    cold_starts=controller.scheduler.cold_starts,
                )
            finally:
                env.close()
    result.add_note(
        "tail-replay recovery grows with log length; compaction keeps the "
        "retained log bounded and dump cold start scales with table size instead"
    )
    return result


def test_bench_recovery(benchmark):
    result = run_and_report(benchmark, run_recovery_benchmark)
    replay_rows = [row for row in result.rows if row["mode"] == "tail replay"]
    dump_rows = [row for row in result.rows if row["mode"] == "dump cold start"]
    # Tail replay replays exactly the missed writes; the dump path none.
    for row in replay_rows:
        assert row["entries_replayed"] == row["log_length"]
    for row in dump_rows:
        assert row["entries_replayed"] == 0
        assert row["cold_starts"] == 1
        # Compaction kept the retained log bounded (the pin was released,
        # so everything up to the head was truncatable).
        assert row["retained_log_entries"] == 0
    payload = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "parameters": result.parameters,
        "rows": result.rows,
        "notes": result.notes,
    }
    out_path = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_recovery.json")
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
