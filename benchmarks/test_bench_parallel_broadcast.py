"""E13b — parallel write broadcast vs sequential on latency-injected backends.

Four simulated replicas each charge a fixed per-statement latency, so a
sequential broadcast pays the latency once per backend per write while
the thread-pooled broadcaster pays it roughly once per write.
"""

from benchmarks.conftest import run_and_report
from repro.experiments import policy_matrix


def test_bench_e13b_parallel_beats_sequential_broadcast(benchmark):
    result = run_and_report(
        benchmark,
        policy_matrix.run_broadcast_comparison,
        backends=4,
        writes=25,
        latency_ms=3.0,
    )
    sequential = result.find_row(mode="sequential")
    parallel = result.find_row(mode="parallel")
    assert sequential["backends"] == 4
    # The point of the refactor: parallel broadcast wins wall-clock.
    assert parallel["wall_s"] < sequential["wall_s"]
    # With 4 backends at 3ms each the sequential path costs ~12ms per
    # write and parallel ~3-4ms (typically 3.5-4x faster). Assert a loose
    # margin so a contended CI runner's thread-wakeup latency cannot flake
    # the gate while a real regression (lost parallelism) still fails.
    assert parallel["per_write_ms"] < sequential["per_write_ms"] * 0.75
    assert result.parameters["speedup_x"] >= 1.3
