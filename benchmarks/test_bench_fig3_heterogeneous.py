"""E5 — Figure 3: DBA console over heterogeneous Drivolution-compliant databases."""

from benchmarks.conftest import run_and_report
from repro.experiments import fig3_heterogeneous


def test_bench_e5_fig3(benchmark):
    result = run_and_report(benchmark, fig3_heterogeneous.run_experiment, database_count=4)
    assert all(row["connected"] for row in result.rows)
    assert all(row["manual_driver_installs"] == 0 for row in result.rows)
