"""Placement benchmarks (E14): RAIDb-1 vs hash-2 vs RAIDb-0 write
throughput and per-backend load, plus partial-replica recovery from a
table-subset dump with placement-filtered replay.

The interesting shape: write fan-out is the whole cluster under full
replication and exactly the hosting subset under partial placement, so
aggregate write capacity grows with cluster size instead of being
cloned. Results are written to ``BENCH_placement.json`` so CI can
archive them next to the other benchmark artifacts.
"""

from __future__ import annotations

import json
import os

from benchmarks.conftest import run_and_report
from repro.experiments import partial_replication

BACKENDS = 4


def test_bench_placement(benchmark):
    result = run_and_report(
        benchmark,
        partial_replication.run_experiment,
        backends=BACKENDS,
        tables=8,
        writes_per_table=25,
    )
    full = result.find_row(placement="full")
    hash2 = result.find_row(placement="hash:2")
    raidb0 = result.find_row(placement="raidb0")
    # RAIDb-1 broadcasts every write to the whole cluster…
    assert full["write_fanout_avg"] == float(BACKENDS)
    assert full["storage_amplification"] == float(BACKENDS)
    # …hash-2 touches exactly the two hosting backends per write…
    assert hash2["write_fanout_avg"] == 2.0
    assert hash2["storage_amplification"] == 2.0
    # …and RAIDb-0 exactly one, with every table pinned.
    assert raidb0["write_fanout_avg"] == 1.0
    assert raidb0["storage_amplification"] == 1.0
    assert hash2["pinned_tables"] == raidb0["pinned_tables"] == 8
    assert full["pinned_tables"] == 0

    recovery = run_and_report(benchmark=_NullBenchmark(), run_experiment=partial_replication.run_recovery_experiment)
    row = recovery.rows[0]
    # The partial replica cold-started from a table-subset dump: it holds
    # exactly its hosted tables, the filtered tail replay skipped foreign
    # entries, and the cross-backend checksum agrees everywhere.
    assert row["cold_starts"] == 1
    assert row["victim_tables_match_placement"] is True
    assert row["replicas_converged"] is True
    assert row["hosts_match_placement"] is True
    assert row["victim_restored_tables"] < row["total_tables"]

    payload = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "parameters": result.parameters,
        "rows": result.rows,
        "notes": result.notes,
        "recovery": {
            "experiment_id": recovery.experiment_id,
            "parameters": recovery.parameters,
            "rows": recovery.rows,
            "notes": recovery.notes,
        },
    }
    out_path = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_placement.json"
    )
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)


class _NullBenchmark:
    """Runs the target once without pytest-benchmark accounting (the
    module's single `benchmark` fixture is already consumed by the
    throughput comparison above)."""

    def pedantic(self, target, rounds=1, iterations=1):
        return target()
