"""Reusable experiment environments.

Every experiment needs some combination of databases, database servers, a
Drivolution server and client bootloaders, all wired to the same in-memory
network and simulated clock. These builders construct (and tear down) the
recurring combinations so individual experiment modules stay focused on
the scenario they reproduce.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.cluster import Backend, Controller, ControllerConfig, ControllerGroup
from repro.core import (
    Bootloader,
    BootloaderConfig,
    DrivolutionAdmin,
    DrivolutionServer,
    InDatabaseServerBinding,
    StandaloneServerBinding,
)
from repro.core.clock import SimulatedClock
from repro.dbapi import legacy_driver
from repro.dbserver import DatabaseServer, ServerConfig
from repro.netsim import InMemoryNetwork
from repro.sqlengine import Engine

_env_counter = itertools.count(1)


@dataclass
class SingleDatabaseEnvironment:
    """One database engine + server with an in-database Drivolution server."""

    clock: SimulatedClock
    network: InMemoryNetwork
    engine: Engine
    database_name: str
    db_address: str
    db_server: DatabaseServer
    drivolution: DrivolutionServer
    admin: DrivolutionAdmin
    _cleanup: List[Callable[[], None]] = field(default_factory=list)

    @property
    def url(self) -> str:
        return f"pydb://{self.db_address}/{self.database_name}"

    def new_bootloader(self, config: Optional[BootloaderConfig] = None) -> Bootloader:
        return Bootloader(config or BootloaderConfig(), network=self.network, clock=self.clock)

    def legacy_connect(self, **kwargs: Any):
        return legacy_driver.connect(self.url, network=self.network, **kwargs)

    def open_sql_session(self):
        return self.engine.open_session(self.database_name)

    def close(self) -> None:
        for cleanup in self._cleanup:
            cleanup()
        self.db_server.stop()


def build_single_database(
    database_name: str = "appdb",
    lease_time_ms: int = 60_000,
    server_name: Optional[str] = None,
) -> SingleDatabaseEnvironment:
    """A database with its Drivolution server sharing the same listener."""
    index = next(_env_counter)
    clock = SimulatedClock()
    network = InMemoryNetwork()
    engine = Engine(name=server_name or f"db{index}", clock=clock)
    engine.create_database(database_name)
    db_address = f"{engine.name}:5432"
    db_server = DatabaseServer(engine, network, db_address, ServerConfig(name=engine.name)).start()
    binding = InDatabaseServerBinding(engine, database_name, clock=clock)
    drivolution = DrivolutionServer(binding, network=network, clock=clock, server_id=f"drivo-{engine.name}")
    drivolution.attach_to_database_server(db_server)
    admin = DrivolutionAdmin([drivolution], default_lease_time_ms=lease_time_ms)
    return SingleDatabaseEnvironment(
        clock=clock,
        network=network,
        engine=engine,
        database_name=database_name,
        db_address=db_address,
        db_server=db_server,
        drivolution=drivolution,
        admin=admin,
    )


@dataclass
class ClusterEnvironment:
    """Replicated databases behind Sequoia-like controllers."""

    clock: SimulatedClock
    network: InMemoryNetwork
    replica_engines: List[Engine]
    replica_servers: List[DatabaseServer]
    replica_addresses: List[str]
    controllers: List[Controller]
    group: ControllerGroup
    database_name: str
    standalone_drivolution: Optional[DrivolutionServer] = None

    def client_url(self) -> str:
        hosts = ",".join(controller.address for controller in self.controllers)
        return f"sequoia://{hosts}/{self.controllers[0].config.virtual_database}"

    def replica_url(self, index: int) -> str:
        return f"pydb://{self.replica_addresses[index]}/{self.database_name}"

    def new_bootloader(self, config: Optional[BootloaderConfig] = None) -> Bootloader:
        return Bootloader(config or BootloaderConfig(api_name="SEQUOIA"), network=self.network, clock=self.clock)

    def new_replica(self, name: Optional[str] = None) -> Backend:
        """Provision a brand-new, *empty* replica (engine + server) and
        return a Backend for it — not yet attached to any controller.

        This is the raw material for dump-based cold start: hand the
        backend to ``controller.provision_backend`` or
        ``controller.add_backend_from_dump`` to bring it into the
        rotation without replaying the full write history."""
        replica_index = len(self.replica_engines) + 1
        engine = Engine(name=name or f"extra-db{replica_index}-{next(_env_counter)}", clock=self.clock)
        engine.create_database(self.database_name)
        address = f"{engine.name}:5432"
        server = DatabaseServer(engine, self.network, address, ServerConfig(name=engine.name)).start()
        self.replica_engines.append(engine)
        self.replica_servers.append(server)
        self.replica_addresses.append(address)
        url = f"pydb://{address}/{self.database_name}"
        return Backend(
            f"db{replica_index}",
            lambda: legacy_driver.connect(url, network=self.network),
        )

    def close(self) -> None:
        self.group.stop()
        for server in self.replica_servers:
            server.stop()
        if self.standalone_drivolution is not None:
            self.standalone_drivolution.stop()


def build_cluster(
    replicas: int = 2,
    controllers: int = 2,
    database_name: str = "appdb",
    virtual_database: str = "vdb",
    embedded_drivolution: bool = False,
    standalone_drivolution: bool = False,
    drivolution_address: str = "drivolution:8000",
    controller_options: Optional[Dict[str, Any]] = None,
    ha: bool = False,
) -> ClusterEnvironment:
    """Build a Sequoia-like cluster.

    ``embedded_drivolution`` embeds one Drivolution server per controller
    (Figure 6); ``standalone_drivolution`` starts a single standalone
    distribution service on its own address (Figure 5).
    ``controller_options`` are extra :class:`ControllerConfig` fields, e.g.
    ``{"read_policy": "least_pending", "query_cache_enabled": True}``.
    ``ha=True`` wires every controller's recovery log into a replicated
    HA group (each controller gets the others as ``ha_peers`` — see
    docs/ha.md; use ``controllers=3`` so a single death keeps a
    majority). ``controller1`` starts as the primary.
    """
    index = next(_env_counter)
    clock = SimulatedClock()
    network = InMemoryNetwork()

    replica_engines: List[Engine] = []
    replica_servers: List[DatabaseServer] = []
    replica_addresses: List[str] = []
    for replica_index in range(replicas):
        engine = Engine(name=f"cluster{index}-db{replica_index + 1}", clock=clock)
        engine.create_database(database_name)
        address = f"{engine.name}:5432"
        server = DatabaseServer(engine, network, address, ServerConfig(name=engine.name)).start()
        replica_engines.append(engine)
        replica_servers.append(server)
        replica_addresses.append(address)

    def backend_factory(address: str) -> Callable[[], Any]:
        return lambda: legacy_driver.connect(
            f"pydb://{address}/{database_name}", network=network
        )

    controller_addresses = [
        f"cluster{index}-controller{n + 1}:25322" for n in range(controllers)
    ]
    controller_list: List[Controller] = []
    for controller_index in range(controllers):
        options = dict(controller_options or {})
        if ha and controllers > 1:
            options.setdefault(
                "ha_peers",
                [
                    address
                    for address in controller_addresses
                    if address != controller_addresses[controller_index]
                ],
            )
        controller = Controller(
            ControllerConfig(
                controller_id=f"controller{controller_index + 1}",
                virtual_database=virtual_database,
                **options,
            ),
            network,
            controller_addresses[controller_index],
            backends=[
                Backend(f"db{replica_index + 1}", backend_factory(address))
                for replica_index, address in enumerate(replica_addresses)
            ],
            clock=clock,
        )
        if embedded_drivolution:
            embedded = DrivolutionServer(
                StandaloneServerBinding(clock=clock),
                clock=clock,
                server_id=f"drivo-{controller.config.controller_id}",
            )
            controller.embed_drivolution(embedded)
        controller_list.append(controller)

    group = ControllerGroup(controller_list).start()

    standalone: Optional[DrivolutionServer] = None
    if standalone_drivolution:
        standalone = DrivolutionServer(
            StandaloneServerBinding(clock=clock),
            network=network,
            address=drivolution_address,
            clock=clock,
            server_id="drivo-standalone",
        ).start()

    return ClusterEnvironment(
        clock=clock,
        network=network,
        replica_engines=replica_engines,
        replica_servers=replica_servers,
        replica_addresses=replica_addresses,
        controllers=controller_list,
        group=group,
        database_name=database_name,
        standalone_drivolution=standalone,
    )
