"""E10 — Section 5.4.2: Drivolution as a license server.

Per-user licensing (the paper's DB2 example) means each client application
must hold a license key delivered next to the driver. The experiment
compares the strategies the paper describes:

- **static** assignment: each client always receives the same license —
  no conflicts, but clients without an assignment are denied and idle
  licenses cannot be reused;
- **dynamic** assignment: licenses are leased from a pool, returned on
  release, and *reclaimed* when a client disappears without releasing
  (the lease-expiry failure detector).
"""

from __future__ import annotations

from repro.core.clock import SimulatedClock
from repro.core.license_server import LicenseError, LicensePolicy, LicenseServer
from repro.experiments.harness import ExperimentResult


def run_experiment(
    license_count: int = 3, client_count: int = 5, lease_time_ms: int = 2_000
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E10",
        title="Section 5.4.2: license management strategies",
        parameters={
            "licenses": license_count,
            "clients": client_count,
            "lease_time_ms": lease_time_ms,
        },
    )
    clock = SimulatedClock()
    keys = [f"LIC-{index:03d}" for index in range(1, license_count + 1)]
    clients = [f"app-{index}" for index in range(1, client_count + 1)]

    # -- static assignment: only the first `license_count` clients have keys.
    static_server = LicenseServer(
        keys,
        policy=LicensePolicy.STATIC,
        lease_time_ms=lease_time_ms,
        clock=clock,
        static_assignments={client: key for client, key in zip(clients, keys)},
    )
    static_granted = 0
    static_denied = 0
    for client in clients:
        try:
            static_server.acquire(client)
            static_granted += 1
        except LicenseError:
            static_denied += 1
    result.add_row(
        policy="static",
        granted=static_granted,
        denied=static_denied,
        reclaimed_after_crash=0,
        pool_size=license_count,
        clients=client_count,
    )

    # -- dynamic assignment with release and crash reclamation.
    dynamic_server = LicenseServer(
        keys, policy=LicensePolicy.DYNAMIC, lease_time_ms=lease_time_ms, clock=clock
    )
    dynamic_granted = 0
    dynamic_denied = 0
    for client in clients:
        try:
            dynamic_server.acquire(client)
            dynamic_granted += 1
        except LicenseError:
            dynamic_denied += 1
    # One client releases voluntarily: a waiting client gets its license.
    dynamic_server.release(clients[0])
    late_client_granted = False
    try:
        dynamic_server.acquire("late-app")
        late_client_granted = True
        dynamic_granted += 1
    except LicenseError:
        dynamic_denied += 1
    # Another client crashes without releasing: after its lease expires the
    # license returns to the pool.
    clock.advance(lease_time_ms / 1000.0 + 1.0)
    reclaimed = dynamic_server.reclaim_expired()
    post_reclaim_available = dynamic_server.available_count()
    result.add_row(
        policy="dynamic",
        granted=dynamic_granted,
        denied=dynamic_denied,
        reclaimed_after_crash=reclaimed,
        pool_size=license_count,
        clients=client_count + 1,
    )
    result.add_note(
        f"voluntary release made a license available to a late client: {late_client_granted}"
    )
    result.add_note(
        f"licenses reclaimed by the lease-expiry failure detector: {reclaimed}; "
        f"available afterwards: {post_reclaim_available}/{license_count}"
    )
    result.add_note(
        "licenses can be renewed or upgraded dynamically without interrupting client applications"
    )
    return result
