"""E3 — Figure 1: the Drivolution architecture and bootstrap protocol.

Figure 1 shows three applications against one database: two use
Drivolution bootloaders (one served by the in-database server, one by a
standalone server), and one keeps using a conventional driver. The points
this experiment verifies and quantifies:

- the bootstrap protocol round (REQUEST → OFFER → FILE_REQUEST →
  FILE_DATA) delivers a working driver to bootloader clients,
- Drivolution and conventional clients coexist against the same database
  (the Drivolution protocol is separate from the database protocol),
- the standalone external server can serve the same driver as the
  in-database one,
- the number of protocol messages and bytes transferred per bootstrap.
"""

from __future__ import annotations

from repro.core import (
    Bootloader,
    BootloaderConfig,
    DrivolutionAdmin,
    DrivolutionServer,
    StandaloneServerBinding,
)
from repro.dbapi.driver_factory import build_pydb_driver
from repro.experiments.environments import build_single_database
from repro.experiments.harness import ExperimentResult
from repro.workloads import ClientApplication, WorkloadSpec


def run_experiment(requests_per_app: int = 20) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E3",
        title="Figure 1: bootstrap protocol and coexistence with conventional drivers",
        parameters={"requests_per_app": requests_per_app},
    )
    env = build_single_database(lease_time_ms=60_000)
    standalone = DrivolutionServer(
        StandaloneServerBinding(clock=env.clock),
        network=env.network,
        address="drivolution-standalone:8000",
        clock=env.clock,
        server_id="drivo-standalone",
    ).start()
    try:
        package = build_pydb_driver("pydb-2.0.0", driver_version=(2, 0, 0))
        env.admin.install_driver(package, database=env.database_name)
        DrivolutionAdmin([standalone]).install_driver(package, database=env.database_name)

        spec = WorkloadSpec(table="fig1_events", write_ratio=0.5)

        # Application 1: bootloader against the in-database Drivolution server.
        bootloader1 = env.new_bootloader(BootloaderConfig())
        app1 = ClientApplication(
            "app1-indb",
            bootloader1.connect,
            env.url,
            spec=spec,
            clock=env.clock,
        )
        # Application 2: bootloader against the standalone Drivolution server
        # (dual-URL configuration: Drivolution server != database host).
        bootloader2 = Bootloader(
            BootloaderConfig(drivolution_servers=["drivolution-standalone:8000"]),
            network=env.network,
            clock=env.clock,
        )
        app2 = ClientApplication(
            "app2-standalone",
            bootloader2.connect,
            env.url,
            spec=spec,
            clock=env.clock,
        )
        # Application 3: conventional driver, no Drivolution at all.
        from repro.dbapi import legacy_driver

        def conventional_connect(url, **kwargs):
            return legacy_driver.connect(url, network=env.network, **kwargs)

        app3 = ClientApplication(
            "app3-conventional",
            conventional_connect,
            env.url,
            spec=spec,
            clock=env.clock,
        )

        app1.ensure_schema()
        for app in (app1, app2, app3):
            app.run_requests(requests_per_app)

        for app, bootloader, server in (
            (app1, bootloader1, env.drivolution),
            (app2, bootloader2, standalone),
        ):
            summary = app.metrics.summary()
            result.add_row(
                application=app.name,
                driver_source="drivolution",
                driver=bootloader.driver_info().get("driver_name", ""),
                requests_ok=summary.succeeded,
                requests_failed=summary.failed,
                protocol_messages=4,  # REQUEST, OFFER, FILE_REQUEST, FILE_DATA
                bytes_downloaded=bootloader.stats.bytes_downloaded,
            )
        summary3 = app3.metrics.summary()
        result.add_row(
            application=app3.name,
            driver_source="conventional (locally installed)",
            driver="pydb-legacy",
            requests_ok=summary3.succeeded,
            requests_failed=summary3.failed,
            protocol_messages=0,
            bytes_downloaded=0,
        )
        result.add_note(
            "in-database server stats: "
            f"requests={env.drivolution.stats.requests}, offers={env.drivolution.stats.offers}, "
            f"files_served={env.drivolution.stats.files_served}"
        )
        result.add_note(
            "conventional and Drivolution clients executed against the same database "
            "concurrently — the Drivolution protocol is separate from the database protocol"
        )
        for app in (app1, app2, app3):
            app.close()
    finally:
        standalone.stop()
        env.close()
    return result
