"""Experiment harness.

One module per paper element (table, figure or case study), each exposing
a ``run_experiment(...)`` function that builds the scenario on the
simulated substrate, runs it, and returns an
:class:`~repro.experiments.harness.ExperimentResult` whose rows are what
``benchmarks/`` and ``EXPERIMENTS.md`` report.

Experiment index (see DESIGN.md for the full mapping):

====  ==========================================  =================================
id    paper element                               module
====  ==========================================  =================================
E1    Section 2 vs 3.2 lifecycle                  :mod:`repro.experiments.lifecycle`
E2    Table 5 (heterogeneous DBA admin)           :mod:`repro.experiments.table5_admin`
E3    Figure 1 (architecture / bootstrap)         :mod:`repro.experiments.fig1_architecture`
E4    Figure 2 (external server, legacy DB)       :mod:`repro.experiments.fig2_legacy_server`
E5    Figure 3 (heterogeneous DBMSes)             :mod:`repro.experiments.fig3_heterogeneous`
E6    Figure 4 (master/slave failover)            :mod:`repro.experiments.fig4_failover`
E7    Figure 5 (legacy Sequoia cluster)           :mod:`repro.experiments.fig5_legacy_cluster`
E8    Figure 6 (hybrid HA, embedded servers)      :mod:`repro.experiments.fig6_hybrid_ha`
E9    Section 5.4.1 (custom driver delivery)      :mod:`repro.experiments.custom_delivery`
E10   Section 5.4.2 (license server)              :mod:`repro.experiments.license_server_exp`
E11   Tables 3/4 + Section 3.3 (policies, leases) :mod:`repro.experiments.policy_matrix`
E12   Section 3.1.1 (bootloader overhead)         :mod:`repro.experiments.overhead`
E13   Request-scheduling subsystem (policy matrix :mod:`repro.experiments.policy_matrix`
      + parallel write broadcast; docs/scheduling.md)
E14   Partial replication (RAIDb-0/2 placement,   :mod:`repro.experiments.partial_replication`
      subset-dump recovery; docs/placement.md)
E15   Conflict-aware parallel write scheduling    :mod:`repro.experiments.concurrency`
      (+ E15b divergence; docs/scheduling.md)
E16   Key-level locking (+ E16b divergence;       :mod:`repro.experiments.concurrency`
      docs/scheduling.md)
E17   Multiplexed session scaling + group commit  :mod:`repro.experiments.concurrency`
      (E17b; docs/wire.md)
E18   Cross-session write batching (+ E18b        :mod:`repro.experiments.concurrency`
      divergence, E18c admission control;
      docs/scheduling.md)
====  ==========================================  =================================
"""

from repro.experiments.harness import ExperimentResult

__all__ = ["ExperimentResult"]
