"""E9 — Section 5.4.1: assembling drivers on demand.

Drivers are split into a base package plus optional extensions (NLS
locales, GIS, Kerberos security libraries). Without Drivolution, every
client installs the monolithic driver with every extension. With
Drivolution, the server assembles per client exactly the base plus the
extensions that client needs (statically from its connection URL, or
lazily when a feature probe fails).

The experiment measures the bytes delivered to each client under both
strategies and verifies that an assembled driver actually provides the
requested features (and only those).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core import DriverLoader
from repro.dbapi.driver_factory import pydb_assembler
from repro.experiments.harness import ExperimentResult

#: Client profiles straight out of the paper's examples: a GIS application,
#: a localized application, one needing Kerberos, and a plain one.
DEFAULT_CLIENT_PROFILES: Dict[str, Sequence[str]] = {
    "gis-app": ("gis",),
    "french-app": ("nls-fr",),
    "kerberos-app": ("kerberos",),
    "plain-app": (),
    "japanese-gis-app": ("gis", "nls-ja"),
}


def run_experiment(
    client_profiles: Dict[str, Sequence[str]] = None, payload_size: int = 4096
) -> ExperimentResult:
    profiles = dict(client_profiles or DEFAULT_CLIENT_PROFILES)
    result = ExperimentResult(
        experiment_id="E9",
        title="Section 5.4.1: per-client driver assembly vs monolithic delivery",
        parameters={"payload_size": payload_size, "clients": len(profiles)},
    )
    assembler = pydb_assembler(payload_size=payload_size)
    monolithic = assembler.assemble_monolithic()
    loader = DriverLoader()

    total_assembled = 0
    total_monolithic = 0
    for client, extensions in profiles.items():
        package = assembler.assemble(extensions=extensions)
        loaded = loader.load(package)
        features = sorted(loaded.module.FEATURES)
        requested = sorted(extensions)
        total_assembled += package.size_bytes
        total_monolithic += monolithic.size_bytes
        result.add_row(
            client=client,
            extensions=",".join(requested) if requested else "(none)",
            assembled_bytes=package.size_bytes,
            monolithic_bytes=monolithic.size_bytes,
            savings_pct=round(100.0 * (1 - package.size_bytes / monolithic.size_bytes), 1),
            features_present=",".join(features) if features else "(none)",
            features_match_request=features == requested,
        )
    result.add_row(
        client="TOTAL",
        extensions="",
        assembled_bytes=total_assembled,
        monolithic_bytes=total_monolithic,
        savings_pct=round(100.0 * (1 - total_assembled / total_monolithic), 1),
        features_present="",
        features_match_request=True,
    )

    # Lazy path: a client that only discovers it needs GIS at runtime asks
    # for the corresponding extension afterwards.
    plain = assembler.assemble(extensions=())
    loaded_plain = loader.load(plain)
    missing_feature = "gis" not in loaded_plain.module.FEATURES
    extension = assembler.resolve_missing_feature("gis")
    upgraded = assembler.assemble(extensions=("gis",))
    loaded_upgraded = loader.load(upgraded)
    result.add_note(
        "lazy extension delivery: plain driver lacked the GIS feature "
        f"({missing_feature}), the server resolved the missing feature to extension "
        f"{extension.name!r} and the re-assembled driver provides it "
        f"({'gis' in loaded_upgraded.module.FEATURES})"
    )
    result.add_note(
        "clients no longer load unnecessary large drivers: every client received only its own "
        "extensions, while the monolithic baseline ships all of them to everyone"
    )
    return result
