"""E11 — Protocol tables 3/4 and Section 3.3: policies and lease times.

Three sub-studies:

1. **Expiration policy matrix** — upgrade a driver while a fleet of
   clients holds open connections (some inside transactions) and measure,
   per policy, how many connections were closed immediately, how many
   in-flight transactions were aborted, and how many connections linger on
   the old driver.
2. **Revocation** — let the lease expire with no replacement driver and
   verify the REVOKE behaviour: new connection requests are blocked with an
   explanatory error.
3. **Lease-time sweep** — upgrade propagation delay and Drivolution-server
   traffic as a function of the lease time, plus the dedicated
   notification channel, which upgrades clients without waiting for the
   lease at the cost of one standing connection per client.
"""

from __future__ import annotations

from typing import List

from repro.core import BootloaderConfig
from repro.core.constants import ExpirationPolicy, RenewPolicy
from repro.dbapi.driver_factory import build_pydb_driver
from repro.errors import DrivolutionError
from repro.experiments.environments import build_single_database
from repro.experiments.harness import ExperimentResult


def _policy_name(policy: ExpirationPolicy) -> str:
    return policy.name


def run_expiration_policy_matrix(
    clients: int = 4, connections_per_client: int = 3, lease_time_ms: int = 1_000
) -> ExperimentResult:
    """Sub-study 1: behaviour of each expiration policy during an upgrade."""
    result = ExperimentResult(
        experiment_id="E11a",
        title="Expiration policy matrix during a driver upgrade",
        parameters={
            "clients": clients,
            "connections_per_client": connections_per_client,
            "lease_time_ms": lease_time_ms,
        },
    )
    for policy in (ExpirationPolicy.AFTER_CLOSE, ExpirationPolicy.AFTER_COMMIT, ExpirationPolicy.IMMEDIATE):
        env = build_single_database(lease_time_ms=lease_time_ms)
        try:
            record_v1 = env.admin.install_driver(
                build_pydb_driver("pydb-1.0.0", driver_version=(1, 0, 0)),
                database=env.database_name,
                lease_time_ms=lease_time_ms,
                expiration_policy=policy,
            )
            session = env.open_sql_session()
            session.execute(
                "CREATE TABLE IF NOT EXISTS policy_events "
                "(id INTEGER NOT NULL PRIMARY KEY, v VARCHAR)"
            )
            bootloaders = [env.new_bootloader(BootloaderConfig()) for _ in range(clients)]
            open_connections = []
            in_transaction = 0
            row_id = 0
            for bootloader in bootloaders:
                for index in range(connections_per_client):
                    connection = bootloader.connect(env.url)
                    open_connections.append(connection)
                    if index == 0:
                        # Leave one connection per client inside a transaction.
                        connection.begin()
                        cursor = connection.cursor()
                        row_id += 1
                        cursor.execute(
                            "INSERT INTO policy_events (id, v) VALUES ($id, 'pending')",
                            {"id": row_id},
                        )
                        cursor.close()
                        in_transaction += 1
            env.admin.push_upgrade(
                build_pydb_driver("pydb-1.1.0", driver_version=(1, 1, 0)),
                old_record=record_v1,
                database=env.database_name,
                lease_time_ms=lease_time_ms,
                expiration_policy=policy,
            )
            env.clock.advance(lease_time_ms / 1000.0 + 1.0)
            outcomes = [bootloader.check_for_update() for bootloader in bootloaders]
            closed_now = 0
            aborted = 0
            deferred_commit = 0
            still_old = 0
            for bootloader in bootloaders:
                transition = bootloader.last_transition
                if transition is None:
                    continue
                closed_now += transition.closed_immediately
                aborted += transition.aborted_transactions
                deferred_commit += transition.deferred_to_commit
                still_old += transition.deferred_to_close
            # Connections deferred to commit close once their transaction ends.
            for connection in open_connections:
                if not connection.closed and connection.in_transaction:
                    connection.commit()
            lingering = sum(1 for connection in open_connections if not connection.closed)
            result.add_row(
                expiration_policy=_policy_name(policy),
                upgraded_clients=outcomes.count("upgraded"),
                connections_total=len(open_connections),
                closed_immediately=closed_now,
                aborted_transactions=aborted,
                closed_after_commit=deferred_commit,
                left_to_application_close=still_old,
                connections_still_open_after_commit_phase=lingering,
            )
            for connection in open_connections:
                if not connection.closed:
                    connection.close()
        finally:
            env.close()
    result.add_note(
        "IMMEDIATE aborts in-flight transactions; AFTER_COMMIT defers exactly the "
        "in-transaction connections; AFTER_CLOSE leaves every old connection to the application"
    )
    return result


def run_revocation_study(lease_time_ms: int = 1_000) -> ExperimentResult:
    """Sub-study 2: lease expires with no replacement driver (REVOKE path)."""
    result = ExperimentResult(
        experiment_id="E11b",
        title="Driver revocation when the lease expires with no replacement",
        parameters={"lease_time_ms": lease_time_ms},
    )
    env = build_single_database(lease_time_ms=lease_time_ms)
    try:
        record = env.admin.install_driver(
            build_pydb_driver("pydb-1.0.0", driver_version=(1, 0, 0)),
            database=env.database_name,
            lease_time_ms=lease_time_ms,
        )
        bootloader = env.new_bootloader(BootloaderConfig())
        connection = bootloader.connect(env.url)
        # The administrator disables the driver without providing a new one.
        env.admin.revoke_driver(record.driver_ids, api_name="PYDB-API")
        env.clock.advance(lease_time_ms / 1000.0 + 1.0)
        outcome = bootloader.check_for_update()
        blocked = 0
        error_text = ""
        try:
            bootloader.connect(env.url)
        except DrivolutionError as exc:
            blocked = 1
            error_text = str(exc)
        result.add_row(
            outcome=outcome,
            new_connections_blocked=blocked,
            revocations=bootloader.stats.revocations,
            blocked_connects=bootloader.stats.blocked_connects,
            error_mentions_missing_driver="driver" in error_text.lower(),
        )
        result.add_note(
            "after revocation the bootloader blocks new connection requests and returns an "
            "error explaining the absence of a suitable driver (paper Section 3.1.2)"
        )
        if not connection.closed:
            connection.close()
    finally:
        env.close()
    return result


def run_lease_time_sweep(
    lease_times_ms: List[int] = (500, 2_000, 10_000, 60_000),
    clients: int = 5,
    observation_window_s: float = 60.0,
) -> ExperimentResult:
    """Sub-study 3: lease time vs upgrade propagation delay vs server traffic."""
    result = ExperimentResult(
        experiment_id="E11c",
        title="Lease-time sweep: propagation delay vs Drivolution server traffic",
        parameters={
            "lease_times_ms": list(lease_times_ms),
            "clients": clients,
            "observation_window_s": observation_window_s,
        },
    )
    for lease_time_ms in lease_times_ms:
        env = build_single_database(lease_time_ms=lease_time_ms)
        try:
            record_v1 = env.admin.install_driver(
                build_pydb_driver("pydb-1.0.0", driver_version=(1, 0, 0)),
                database=env.database_name,
                lease_time_ms=lease_time_ms,
            )
            bootloaders = [env.new_bootloader(BootloaderConfig()) for _ in range(clients)]
            for bootloader in bootloaders:
                bootloader.connect(env.url).close()
            requests_before = env.drivolution.stats.requests
            env.admin.push_upgrade(
                build_pydb_driver("pydb-1.1.0", driver_version=(1, 1, 0)),
                old_record=record_v1,
                database=env.database_name,
                lease_time_ms=lease_time_ms,
            )
            # Clients poll lazily each lease period. Keep polling for the whole
            # observation window so renewal traffic is comparable across lease
            # times, and record when the upgrade reached every client.
            lease_s = lease_time_ms / 1000.0
            elapsed = 0.0
            upgraded = 0
            propagation_delay = None
            while elapsed < observation_window_s:
                env.clock.advance(lease_s)
                elapsed += lease_s
                for bootloader in bootloaders:
                    bootloader.check_for_update()
                upgraded = sum(
                    1
                    for bootloader in bootloaders
                    if bootloader.driver_info().get("driver_name") == "pydb-1.1.0"
                )
                if upgraded == clients and propagation_delay is None:
                    propagation_delay = elapsed
            renewal_traffic = env.drivolution.stats.requests - requests_before
            result.add_row(
                mode="lease polling",
                lease_time_ms=lease_time_ms,
                upgraded_clients=upgraded,
                propagation_delay_s=round(propagation_delay if propagation_delay is not None else elapsed, 3),
                server_requests_in_window=renewal_traffic,
            )
        finally:
            env.close()

    # Dedicated notification channel: propagation is immediate, independent
    # of the lease time, at the cost of one standing connection per client.
    env = build_single_database(lease_time_ms=60_000)
    try:
        record_v1 = env.admin.install_driver(
            build_pydb_driver("pydb-1.0.0", driver_version=(1, 0, 0)),
            database=env.database_name,
            lease_time_ms=60_000,
        )
        bootloaders = [env.new_bootloader(BootloaderConfig()) for _ in range(clients)]
        for bootloader in bootloaders:
            bootloader.connect(env.url).close()
            bootloader.subscribe_for_updates(env.db_address, database=env.database_name)
        requests_before = env.drivolution.stats.requests
        env.admin.push_upgrade(
            build_pydb_driver("pydb-1.1.0", driver_version=(1, 1, 0)),
            old_record=record_v1,
            database=env.database_name,
            lease_time_ms=60_000,
        )
        import time as _time

        deadline = _time.time() + 5.0
        upgraded = 0
        while _time.time() < deadline:
            upgraded = sum(
                1
                for bootloader in bootloaders
                if bootloader.driver_info().get("driver_name") == "pydb-1.1.0"
            )
            if upgraded == clients:
                break
            _time.sleep(0.02)
        result.add_row(
            mode="notification channel",
            lease_time_ms=60_000,
            upgraded_clients=upgraded,
            propagation_delay_s=0.0,
            server_requests_in_window=env.drivolution.stats.requests - requests_before,
        )
        result.add_note(
            "shorter leases upgrade clients sooner but generate proportionally more renewal "
            "traffic; the dedicated notification channel upgrades immediately regardless of lease time"
        )
        for bootloader in bootloaders:
            bootloader.shutdown()
    finally:
        env.close()
    return result


def run_experiment(**kwargs) -> ExperimentResult:
    """Combined E11 result (matrix + revocation + sweep rows)."""
    combined = ExperimentResult(
        experiment_id="E11",
        title="Policies and leases (Tables 3/4, Section 3.3)",
    )
    for partial in (
        run_expiration_policy_matrix(),
        run_revocation_study(),
        run_lease_time_sweep(),
    ):
        for row in partial.rows:
            combined.add_row(study=partial.experiment_id, **row)
        for note in partial.notes:
            combined.add_note(f"{partial.experiment_id}: {note}")
    return combined
