"""E11/E13 — policy matrices.

E11 (protocol tables 3/4, Section 3.3) studies *driver lease* policies;
E13 studies the *request-scheduling* policies of the refactored cluster
scheduler: read load-balancing policy × query cache, and parallel versus
sequential write broadcast.

E11's three sub-studies:

1. **Expiration policy matrix** — upgrade a driver while a fleet of
   clients holds open connections (some inside transactions) and measure,
   per policy, how many connections were closed immediately, how many
   in-flight transactions were aborted, and how many connections linger on
   the old driver.
2. **Revocation** — let the lease expire with no replacement driver and
   verify the REVOKE behaviour: new connection requests are blocked with an
   explanatory error.
3. **Lease-time sweep** — upgrade propagation delay and Drivolution-server
   traffic as a function of the lease time, plus the dedicated
   notification channel, which upgrades clients without waiting for the
   lease at the cost of one standing connection per client.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cluster import Backend, ClusterDriverRuntime, RecoveryLog, RequestScheduler, WriteBroadcaster
from repro.core import BootloaderConfig
from repro.core.constants import ExpirationPolicy, RenewPolicy
from repro.dbapi.driver_factory import build_pydb_driver
from repro.errors import DrivolutionError
from repro.experiments.environments import build_cluster, build_single_database
from repro.experiments.harness import ExperimentResult
from repro.workloads import ClientApplication, WorkloadSpec, percentile


def _policy_name(policy: ExpirationPolicy) -> str:
    return policy.name


def run_expiration_policy_matrix(
    clients: int = 4, connections_per_client: int = 3, lease_time_ms: int = 1_000
) -> ExperimentResult:
    """Sub-study 1: behaviour of each expiration policy during an upgrade."""
    result = ExperimentResult(
        experiment_id="E11a",
        title="Expiration policy matrix during a driver upgrade",
        parameters={
            "clients": clients,
            "connections_per_client": connections_per_client,
            "lease_time_ms": lease_time_ms,
        },
    )
    for policy in (ExpirationPolicy.AFTER_CLOSE, ExpirationPolicy.AFTER_COMMIT, ExpirationPolicy.IMMEDIATE):
        env = build_single_database(lease_time_ms=lease_time_ms)
        try:
            record_v1 = env.admin.install_driver(
                build_pydb_driver("pydb-1.0.0", driver_version=(1, 0, 0)),
                database=env.database_name,
                lease_time_ms=lease_time_ms,
                expiration_policy=policy,
            )
            session = env.open_sql_session()
            session.execute(
                "CREATE TABLE IF NOT EXISTS policy_events "
                "(id INTEGER NOT NULL PRIMARY KEY, v VARCHAR)"
            )
            bootloaders = [env.new_bootloader(BootloaderConfig()) for _ in range(clients)]
            open_connections = []
            in_transaction = 0
            row_id = 0
            for bootloader in bootloaders:
                for index in range(connections_per_client):
                    connection = bootloader.connect(env.url)
                    open_connections.append(connection)
                    if index == 0:
                        # Leave one connection per client inside a transaction.
                        connection.begin()
                        cursor = connection.cursor()
                        row_id += 1
                        cursor.execute(
                            "INSERT INTO policy_events (id, v) VALUES ($id, 'pending')",
                            {"id": row_id},
                        )
                        cursor.close()
                        in_transaction += 1
            env.admin.push_upgrade(
                build_pydb_driver("pydb-1.1.0", driver_version=(1, 1, 0)),
                old_record=record_v1,
                database=env.database_name,
                lease_time_ms=lease_time_ms,
                expiration_policy=policy,
            )
            env.clock.advance(lease_time_ms / 1000.0 + 1.0)
            outcomes = [bootloader.check_for_update() for bootloader in bootloaders]
            closed_now = 0
            aborted = 0
            deferred_commit = 0
            still_old = 0
            for bootloader in bootloaders:
                transition = bootloader.last_transition
                if transition is None:
                    continue
                closed_now += transition.closed_immediately
                aborted += transition.aborted_transactions
                deferred_commit += transition.deferred_to_commit
                still_old += transition.deferred_to_close
            # Connections deferred to commit close once their transaction ends.
            for connection in open_connections:
                if not connection.closed and connection.in_transaction:
                    connection.commit()
            lingering = sum(1 for connection in open_connections if not connection.closed)
            result.add_row(
                expiration_policy=_policy_name(policy),
                upgraded_clients=outcomes.count("upgraded"),
                connections_total=len(open_connections),
                closed_immediately=closed_now,
                aborted_transactions=aborted,
                closed_after_commit=deferred_commit,
                left_to_application_close=still_old,
                connections_still_open_after_commit_phase=lingering,
            )
            for connection in open_connections:
                if not connection.closed:
                    connection.close()
        finally:
            env.close()
    result.add_note(
        "IMMEDIATE aborts in-flight transactions; AFTER_COMMIT defers exactly the "
        "in-transaction connections; AFTER_CLOSE leaves every old connection to the application"
    )
    return result


def run_revocation_study(lease_time_ms: int = 1_000) -> ExperimentResult:
    """Sub-study 2: lease expires with no replacement driver (REVOKE path)."""
    result = ExperimentResult(
        experiment_id="E11b",
        title="Driver revocation when the lease expires with no replacement",
        parameters={"lease_time_ms": lease_time_ms},
    )
    env = build_single_database(lease_time_ms=lease_time_ms)
    try:
        record = env.admin.install_driver(
            build_pydb_driver("pydb-1.0.0", driver_version=(1, 0, 0)),
            database=env.database_name,
            lease_time_ms=lease_time_ms,
        )
        bootloader = env.new_bootloader(BootloaderConfig())
        connection = bootloader.connect(env.url)
        # The administrator disables the driver without providing a new one.
        env.admin.revoke_driver(record.driver_ids, api_name="PYDB-API")
        env.clock.advance(lease_time_ms / 1000.0 + 1.0)
        outcome = bootloader.check_for_update()
        blocked = 0
        error_text = ""
        try:
            bootloader.connect(env.url)
        except DrivolutionError as exc:
            blocked = 1
            error_text = str(exc)
        result.add_row(
            outcome=outcome,
            new_connections_blocked=blocked,
            revocations=bootloader.stats.revocations,
            blocked_connects=bootloader.stats.blocked_connects,
            error_mentions_missing_driver="driver" in error_text.lower(),
        )
        result.add_note(
            "after revocation the bootloader blocks new connection requests and returns an "
            "error explaining the absence of a suitable driver (paper Section 3.1.2)"
        )
        if not connection.closed:
            connection.close()
    finally:
        env.close()
    return result


def run_lease_time_sweep(
    lease_times_ms: List[int] = (500, 2_000, 10_000, 60_000),
    clients: int = 5,
    observation_window_s: float = 60.0,
) -> ExperimentResult:
    """Sub-study 3: lease time vs upgrade propagation delay vs server traffic."""
    result = ExperimentResult(
        experiment_id="E11c",
        title="Lease-time sweep: propagation delay vs Drivolution server traffic",
        parameters={
            "lease_times_ms": list(lease_times_ms),
            "clients": clients,
            "observation_window_s": observation_window_s,
        },
    )
    for lease_time_ms in lease_times_ms:
        env = build_single_database(lease_time_ms=lease_time_ms)
        try:
            record_v1 = env.admin.install_driver(
                build_pydb_driver("pydb-1.0.0", driver_version=(1, 0, 0)),
                database=env.database_name,
                lease_time_ms=lease_time_ms,
            )
            bootloaders = [env.new_bootloader(BootloaderConfig()) for _ in range(clients)]
            for bootloader in bootloaders:
                bootloader.connect(env.url).close()
            requests_before = env.drivolution.stats.requests
            env.admin.push_upgrade(
                build_pydb_driver("pydb-1.1.0", driver_version=(1, 1, 0)),
                old_record=record_v1,
                database=env.database_name,
                lease_time_ms=lease_time_ms,
            )
            # Clients poll lazily each lease period. Keep polling for the whole
            # observation window so renewal traffic is comparable across lease
            # times, and record when the upgrade reached every client.
            lease_s = lease_time_ms / 1000.0
            elapsed = 0.0
            upgraded = 0
            propagation_delay = None
            while elapsed < observation_window_s:
                env.clock.advance(lease_s)
                elapsed += lease_s
                for bootloader in bootloaders:
                    bootloader.check_for_update()
                upgraded = sum(
                    1
                    for bootloader in bootloaders
                    if bootloader.driver_info().get("driver_name") == "pydb-1.1.0"
                )
                if upgraded == clients and propagation_delay is None:
                    propagation_delay = elapsed
            renewal_traffic = env.drivolution.stats.requests - requests_before
            result.add_row(
                mode="lease polling",
                lease_time_ms=lease_time_ms,
                upgraded_clients=upgraded,
                propagation_delay_s=round(propagation_delay if propagation_delay is not None else elapsed, 3),
                server_requests_in_window=renewal_traffic,
            )
        finally:
            env.close()

    # Dedicated notification channel: propagation is immediate, independent
    # of the lease time, at the cost of one standing connection per client.
    env = build_single_database(lease_time_ms=60_000)
    try:
        record_v1 = env.admin.install_driver(
            build_pydb_driver("pydb-1.0.0", driver_version=(1, 0, 0)),
            database=env.database_name,
            lease_time_ms=60_000,
        )
        bootloaders = [env.new_bootloader(BootloaderConfig()) for _ in range(clients)]
        for bootloader in bootloaders:
            bootloader.connect(env.url).close()
            bootloader.subscribe_for_updates(env.db_address, database=env.database_name)
        requests_before = env.drivolution.stats.requests
        env.admin.push_upgrade(
            build_pydb_driver("pydb-1.1.0", driver_version=(1, 1, 0)),
            old_record=record_v1,
            database=env.database_name,
            lease_time_ms=60_000,
        )
        import time as _time

        deadline = _time.time() + 5.0
        upgraded = 0
        while _time.time() < deadline:
            upgraded = sum(
                1
                for bootloader in bootloaders
                if bootloader.driver_info().get("driver_name") == "pydb-1.1.0"
            )
            if upgraded == clients:
                break
            _time.sleep(0.02)
        result.add_row(
            mode="notification channel",
            lease_time_ms=60_000,
            upgraded_clients=upgraded,
            propagation_delay_s=0.0,
            server_requests_in_window=env.drivolution.stats.requests - requests_before,
        )
        result.add_note(
            "shorter leases upgrade clients sooner but generate proportionally more renewal "
            "traffic; the dedicated notification channel upgrades immediately regardless of lease time"
        )
        for bootloader in bootloaders:
            bootloader.shutdown()
    finally:
        env.close()
    return result


# -- E13: request-scheduling policy matrix -----------------------------------------


def run_scheduling_policy_matrix(
    policies: Sequence[str] = ("round_robin", "least_pending", "weighted"),
    cache_modes: Sequence[bool] = (False, True),
    clients: int = 3,
    requests_per_client: int = 40,
    replicas: int = 3,
    write_ratio: float = 0.2,
) -> ExperimentResult:
    """E13a: every read policy × query cache on/off on one controller.

    Each combination drives a fleet of client applications through the
    cluster driver against a fresh cluster and reports throughput-side
    metrics (success counts, p50/p95/p99 latency) plus the scheduler's own
    stats (cache hit rate, per-backend read distribution).
    """
    result = ExperimentResult(
        experiment_id="E13a",
        title="Request-scheduling policy matrix: read policy x query cache",
        parameters={
            "policies": list(policies),
            "cache_modes": [bool(mode) for mode in cache_modes],
            "clients": clients,
            "requests_per_client": requests_per_client,
            "replicas": replicas,
            "write_ratio": write_ratio,
        },
    )
    for policy in policies:
        for cache_enabled in cache_modes:
            controller_options: Dict[str, Any] = {
                "read_policy": policy,
                "query_cache_enabled": bool(cache_enabled),
            }
            if policy == "weighted":
                # Skewed weights (N:...:2:1) so the weighted cell actually
                # demonstrates weighting instead of degenerating to uniform.
                controller_options["policy_options"] = {
                    "weights": {
                        f"db{index + 1}": float(replicas - index)
                        for index in range(replicas)
                    }
                }
            env = build_cluster(
                replicas=replicas,
                controllers=1,
                controller_options=controller_options,
            )
            apps: List[ClientApplication] = []
            try:
                controller = env.controllers[0]
                runtime = ClusterDriverRuntime(name=f"sched-{policy}")
                apps = [
                    ClientApplication(
                        name=f"app{app_index}",
                        connect=runtime.connect,
                        url=env.client_url(),
                        spec=WorkloadSpec(table="sched_events", write_ratio=write_ratio),
                        connect_kwargs={"network": env.network},
                    )
                    for app_index in range(clients)
                ]
                apps[0].ensure_schema()
                for app in apps:
                    app.run_requests(requests_per_client)
                summaries = [app.metrics.summary() for app in apps]
                # Fleet-wide percentiles over every successful request, not
                # an aggregate of per-client percentiles.
                latencies = [
                    record.latency
                    for app in apps
                    for record in app.metrics.records()
                    if record.ok and record.latency > 0
                ]
                stats = controller.stats()
                cache_stats = stats["scheduler"]["query_cache"] or {}
                reads_per_backend = [
                    backend["statements_executed"]
                    for backend in stats["scheduler"]["backends"]
                ]
                result.add_row(
                    read_policy=policy,
                    query_cache=bool(cache_enabled),
                    requests=sum(summary.total for summary in summaries),
                    ok=sum(summary.succeeded for summary in summaries),
                    failed=sum(summary.failed for summary in summaries),
                    p50_ms=round(percentile(latencies, 50) * 1000, 3),
                    p95_ms=round(percentile(latencies, 95) * 1000, 3),
                    p99_ms=round(percentile(latencies, 99) * 1000, 3),
                    cache_hits=cache_stats.get("hits", 0),
                    cache_hit_rate=round(cache_stats.get("hit_rate", 0.0), 3),
                    backend_spread=max(reads_per_backend) - min(reads_per_backend),
                )
            finally:
                for app in apps:
                    app.close()
                env.close()
    result.add_note(
        "every policy serves the full workload without failures; the query cache "
        "converts repeated SELECTs into hits and the spread column shows how evenly "
        "each policy distributes statements over the backends"
    )
    return result


class _LatencyConnection:
    """Synthetic backend connection that sleeps per statement.

    Models a replica a fixed network+execution latency away, so the
    broadcast comparison measures scheduling structure, not SQL speed.
    """

    def __init__(self, latency_s: float) -> None:
        self._latency_s = latency_s
        self.closed = False
        self.driver_info = {"name": "latency-sim"}

    def cursor(self) -> "_LatencyCursor":
        return _LatencyCursor(self._latency_s)

    def close(self) -> None:
        self.closed = True


class _LatencyCursor:
    description = [("ok", None, None, None, None, None, None)]
    rowcount = 1

    def __init__(self, latency_s: float) -> None:
        self._latency_s = latency_s

    def execute(self, sql: str, params: Optional[Dict[str, Any]] = None) -> None:
        time.sleep(self._latency_s)

    def fetchall(self) -> List[Tuple[Any, ...]]:
        return [(1,)]

    def close(self) -> None:
        pass


def _latency_backends(count: int, latency_s: float) -> List[Backend]:
    return [
        Backend(f"sim{index + 1}", lambda: _LatencyConnection(latency_s))
        for index in range(count)
    ]


def run_broadcast_comparison(
    backends: int = 4, writes: int = 25, latency_ms: float = 3.0
) -> ExperimentResult:
    """E13b: parallel vs sequential write broadcast wall-clock.

    Each of ``backends`` simulated replicas charges ``latency_ms`` per
    statement; sequential broadcast pays it ``backends`` times per write,
    the thread-pooled broadcaster pays it roughly once.
    """
    result = ExperimentResult(
        experiment_id="E13b",
        title="Parallel vs sequential write broadcast",
        parameters={"backends": backends, "writes": writes, "latency_ms": latency_ms},
    )
    latency_s = latency_ms / 1000.0
    timings: Dict[str, float] = {}
    for parallel in (False, True):
        scheduler = RequestScheduler(
            _latency_backends(backends, latency_s),
            RecoveryLog(),
            broadcaster=WriteBroadcaster(parallel=parallel, max_workers=backends),
        )
        try:
            started = time.perf_counter()
            for index in range(writes):
                scheduler.execute(
                    "INSERT INTO bench_t (id) VALUES ($id)", {"id": index}
                )
            wall = time.perf_counter() - started
        finally:
            scheduler.close()
        mode = "parallel" if parallel else "sequential"
        timings[mode] = wall
        result.add_row(
            mode=mode,
            backends=backends,
            writes=writes,
            injected_latency_ms=latency_ms,
            wall_s=round(wall, 4),
            per_write_ms=round(wall / writes * 1000, 3),
        )
    speedup = timings["sequential"] / timings["parallel"] if timings["parallel"] else 0.0
    result.parameters["speedup_x"] = round(speedup, 2)
    result.add_note(
        f"parallel broadcast is {speedup:.1f}x faster than sequential on "
        f"{backends} backends with {latency_ms}ms per-statement latency"
    )
    return result


def run_experiment(**kwargs) -> ExperimentResult:
    """Combined E11 result (matrix + revocation + sweep rows)."""
    combined = ExperimentResult(
        experiment_id="E11",
        title="Policies and leases (Tables 3/4, Section 3.3)",
    )
    for partial in (
        run_expiration_policy_matrix(),
        run_revocation_study(),
        run_lease_time_sweep(),
    ):
        for row in partial.rows:
            combined.add_row(study=partial.experiment_id, **row)
        for note in partial.notes:
            combined.add_note(f"{partial.experiment_id}: {note}")
    return combined
