"""E8 — Figure 6 / Section 5.3.2: Drivolution servers embedded in Sequoia controllers.

Each controller embeds a Drivolution server; client bootloaders simply use
the multi-controller Sequoia URL (no dual-URL configuration needed).
Driver installations performed on one controller are replicated to the
others through the controller group, so the Drivolution service has no
single point of failure.

Reproduced claims:

- a driver added on one controller is instantly available from every
  controller,
- clients upgrade regardless of which controller they are connected to,
- after a controller failure, new clients can still bootstrap and existing
  clients can still renew (compare with the standalone server of E7),
- each controller's embedded server also distributes the database drivers
  its own backends use.
"""

from __future__ import annotations

from repro.core import Bootloader, BootloaderConfig
from repro.dbapi.driver_factory import build_pydb_driver, build_sequoia_driver
from repro.experiments.environments import build_cluster
from repro.experiments.harness import ExperimentResult
from repro.workloads import ClientApplication, WorkloadSpec


def run_experiment(client_count: int = 4, requests_per_phase: int = 6, lease_time_ms: int = 2_000) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E8",
        title="Figure 6: replicated Drivolution servers embedded in the controllers",
        parameters={"clients": client_count, "lease_time_ms": lease_time_ms},
    )
    env = build_cluster(replicas=2, controllers=2, embedded_drivolution=True)
    try:
        virtual_database = env.controllers[0].config.virtual_database
        sequoia_v1 = build_sequoia_driver("sequoia-emb-1.0", driver_version=(1, 0, 0))
        # Install on controller 1 only; group communication replicates it.
        env.controllers[0].install_driver_cluster_wide(
            sequoia_v1, database=virtual_database, lease_time_ms=lease_time_ms
        )
        drivers_per_controller = {
            controller.config.controller_id: [
                package.name for _id, package in controller.drivolution.registry.list_drivers()
            ]
            for controller in env.controllers
        }
        result.add_row(
            phase="install on controller1",
            replicated_to_all_controllers=all(
                "sequoia-emb-1.0" in names for names in drivers_per_controller.values()
            ),
            drivers_per_controller=str(drivers_per_controller),
            clients_upgraded=0,
            failed_requests=0,
        )

        # Clients: no dual URL — the controller addresses are both the
        # database endpoints and the Drivolution servers.
        bootloaders = []
        apps = []
        for index in range(client_count):
            bootloader = Bootloader(
                BootloaderConfig(api_name="SEQUOIA"), network=env.network, clock=env.clock
            )
            bootloaders.append(bootloader)
            app = ClientApplication(
                f"hybrid-client{index + 1}",
                bootloader.connect,
                env.client_url(),
                spec=WorkloadSpec(table="fig6_events", write_ratio=0.5),
                clock=env.clock,
            )
            apps.append(app)
        apps[0].ensure_schema()
        for app in apps:
            app.run_requests(requests_per_phase, tag="phase0")
        served_by = sorted(
            {bootloader.current_lease.server_id for bootloader in bootloaders if bootloader.current_lease}
        )
        result.add_row(
            phase="bootstrap via controller URLs",
            replicated_to_all_controllers=True,
            drivers_per_controller=str(served_by),
            clients_upgraded=sum(1 for b in bootloaders if b.current_driver is not None),
            failed_requests=sum(app.metrics.summary().failed for app in apps),
        )

        # Upgrade pushed on controller 2 this time; every client upgrades no
        # matter which controller granted its lease.
        sequoia_v2 = build_sequoia_driver("sequoia-emb-2.0", driver_version=(2, 0, 0))
        env.controllers[1].install_driver_cluster_wide(
            sequoia_v2, database=virtual_database, lease_time_ms=lease_time_ms
        )
        env.clock.advance(lease_time_ms / 1000.0 + 1.0)
        upgraded = sum(1 for bootloader in bootloaders if bootloader.check_for_update() == "upgraded")
        result.add_row(
            phase="upgrade pushed on controller2",
            replicated_to_all_controllers=True,
            drivers_per_controller="",
            clients_upgraded=upgraded,
            failed_requests=0,
        )

        # Kill controller 1: the Drivolution service survives because it is
        # replicated in controller 2.
        env.controllers[0].stop()
        env.network.kill_endpoint(env.controllers[0].address)
        new_client = Bootloader(BootloaderConfig(api_name="SEQUOIA"), network=env.network, clock=env.clock)
        new_connection = new_client.connect(env.client_url())
        cursor = new_connection.cursor()
        cursor.execute("SELECT COUNT(*) FROM fig6_events")
        cursor.close()
        env.clock.advance(lease_time_ms / 1000.0 + 1.0)
        renewal_outcomes = [bootloader.check_for_update() for bootloader in bootloaders]
        result.add_row(
            phase="controller1 failed",
            replicated_to_all_controllers=True,
            drivers_per_controller="",
            clients_upgraded=sum(1 for outcome in renewal_outcomes if outcome in ("renewed", "upgraded")),
            failed_requests=0 if not new_connection.closed else 1,
        )
        result.add_note(
            "new clients bootstrapped and existing clients renewed after a controller failure: "
            "the embedded, replicated deployment removes the single point of failure of E7"
        )
        new_connection.close()
        for app in apps:
            app.close()
        # Each controller's embedded server can also hold the database
        # drivers for its own backends (driver table is per controller).
        surviving = env.controllers[1]
        backend_driver = build_pydb_driver("pydb-backend-emb-1.0", driver_version=(1, 0, 0))
        surviving.install_driver_cluster_wide(
            backend_driver, database=env.database_name, lease_time_ms=lease_time_ms, replicate=False
        )
        result.add_note(
            "controller2's embedded Drivolution server also stores the backend database driver "
            f"({backend_driver.name}), easing backend transfer between controllers"
        )
    finally:
        env.close()
    return result
