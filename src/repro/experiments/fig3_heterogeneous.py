"""E5 — Figure 3 / Section 5.1: one DBA console, many heterogeneous databases.

Several databases — different engines, different protocol versions,
different drivers — all support Drivolution natively. The DBA's management
console carries only the generic bootloader; each database hands it the
driver that matches that database. The experiment measures the Table-5
claims in executable form:

- number of manual driver installations/configurations on the console: 0,
- every database reached successfully, each through its own driver,
- a driver upgrade on one database propagates to the console without
  restarting it, and does not disturb access to the other databases.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core import Bootloader, BootloaderConfig, DrivolutionAdmin, DrivolutionServer, InDatabaseServerBinding
from repro.core.clock import SimulatedClock
from repro.dbapi.driver_factory import build_pydb_driver
from repro.dbserver import DatabaseServer, ServerConfig
from repro.dbserver.wire import PROTOCOL_VERSION
from repro.experiments.harness import ExperimentResult
from repro.netsim import InMemoryNetwork
from repro.sqlengine import Engine


class DbaConsole:
    """The management console: one generic bootloader per target database.

    The paper's JDBC bootloader multiplexes drivers inside one process; the
    console models that by holding a bootloader (and thus a loaded driver)
    per database it manages, all sharing the same configuration and no
    manually installed drivers.
    """

    def __init__(self, network: InMemoryNetwork, clock: SimulatedClock) -> None:
        self._network = network
        self._clock = clock
        self._bootloaders: Dict[str, Bootloader] = {}
        self.manual_driver_installs = 0  # stays 0 by construction

    def bootloader_for(self, url: str) -> Bootloader:
        if url not in self._bootloaders:
            self._bootloaders[url] = Bootloader(
                BootloaderConfig(), network=self._network, clock=self._clock
            )
        return self._bootloaders[url]

    def connect(self, url: str):
        return self.bootloader_for(url).connect(url)

    def drivers_in_use(self) -> List[str]:
        return [
            bootloader.driver_info().get("driver_name", "")
            for bootloader in self._bootloaders.values()
        ]


def run_experiment(database_count: int = 4, lease_time_ms: int = 1_000) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E5",
        title="Figure 3: DBA console over heterogeneous Drivolution-compliant databases",
        parameters={"databases": database_count, "lease_time_ms": lease_time_ms},
    )
    clock = SimulatedClock()
    network = InMemoryNetwork()
    console = DbaConsole(network, clock)

    servers: List[DatabaseServer] = []
    drivolution_servers: List[DrivolutionServer] = []
    admins: List[DrivolutionAdmin] = []
    urls: List[str] = []
    try:
        for index in range(1, database_count + 1):
            engine = Engine(name=f"hdb{index}", clock=clock)
            engine.create_database("corp")
            # Heterogeneity: each engine speaks a slightly different wire
            # protocol range, so a single static driver could not serve all.
            config = ServerConfig(
                name=engine.name,
                min_protocol_version=PROTOCOL_VERSION - 1,
                max_protocol_version=PROTOCOL_VERSION,
            )
            db_server = DatabaseServer(engine, network, f"hdb{index}:5432", config).start()
            servers.append(db_server)
            binding = InDatabaseServerBinding(engine, "corp", clock=clock)
            drivolution = DrivolutionServer(binding, network=network, clock=clock, server_id=f"drivo-hdb{index}")
            drivolution.attach_to_database_server(db_server)
            drivolution_servers.append(drivolution)
            admin = DrivolutionAdmin([drivolution], default_lease_time_ms=lease_time_ms)
            admin.install_driver(
                build_pydb_driver(f"hdb{index}-driver", driver_version=(index, 0, 0)),
                database="corp",
                lease_time_ms=lease_time_ms,
            )
            admins.append(admin)
            urls.append(f"pydb://hdb{index}:5432/corp")

        # Task 1: access every database from the console.
        for index, url in enumerate(urls, start=1):
            connection = console.connect(url)
            cursor = connection.cursor()
            cursor.execute("SELECT 1")
            cursor.close()
            result.add_row(
                database=f"hdb{index}",
                driver_delivered=console.bootloader_for(url).driver_info()["driver_name"],
                connected=not connection.closed,
                manual_driver_installs=console.manual_driver_installs,
            )
            connection.close()

        # Task 2: upgrade one database's driver; only that database's driver
        # changes on the console, with no console restart.
        target_url = urls[0]
        admins[0].install_driver(
            build_pydb_driver("hdb1-driver-v2", driver_version=(1, 1, 0)),
            database="corp",
            lease_time_ms=lease_time_ms,
        )
        clock.advance(lease_time_ms / 1000.0 + 1.0)
        outcome = console.bootloader_for(target_url).check_for_update()
        connection = console.connect(target_url)
        connection.close()
        other_drivers = [
            console.bootloader_for(url).driver_info()["driver_name"] for url in urls[1:]
        ]
        result.add_note(
            f"driver upgrade on hdb1: outcome={outcome}, console now uses "
            f"{console.bootloader_for(target_url).driver_info()['driver_name']}; other databases "
            f"unchanged: {other_drivers}; console restarts: 0"
        )
    finally:
        for server in servers:
            server.stop()
    return result
