"""E2 — Table 5: driver upgrades in a heterogeneous database, 2 DBAs.

The paper's Table 5 compares the procedures two DBAs must follow to
(a) access a new database from their management console and (b) upgrade a
database driver, with and without Drivolution:

===============  ======================  ============
task             current state-of-the-art  Drivolution
===============  ======================  ============
access new db    6 steps                 2 steps
driver upgrade   6 steps                 2 steps
===============  ======================  ============

This experiment reproduces those counts and generalises them to N DBAs
and M databases, then executes the Drivolution side: each DBA console is a
bootloader that connects to every database and transparently receives each
database's own driver.
"""

from __future__ import annotations

from typing import List

from repro.core import Bootloader, BootloaderConfig, DrivolutionAdmin
from repro.dbapi.driver_factory import build_pydb_driver
from repro.experiments.environments import build_single_database
from repro.experiments.harness import ExperimentResult

#: Steps from Table 5, current state-of-the-art, per DBA.
LEGACY_ACCESS_STEPS_PER_DBA = 3   # download driver, configure console, connect
LEGACY_UPGRADE_STEPS_PER_DBA = 3  # copy driver, remove old driver, restart console
#: Steps from Table 5, Drivolution.
DRIVOLUTION_ACCESS_STEPS_PER_DBA = 1  # connect
DRIVOLUTION_UPGRADE_STEPS_TOTAL = 2   # insert drivers in database, revoke old driver


def run_experiment(dba_counts: List[int] = (2, 5), database_count: int = 4) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E2",
        title="Table 5: administration steps with and without Drivolution",
        parameters={"dba_counts": list(dba_counts), "databases": database_count},
    )
    for dbas in dba_counts:
        result.add_row(
            task="access new database",
            dbas=dbas,
            databases=1,
            legacy_steps=LEGACY_ACCESS_STEPS_PER_DBA * dbas,
            drivolution_steps=DRIVOLUTION_ACCESS_STEPS_PER_DBA * dbas,
        )
        result.add_row(
            task="driver upgrade",
            dbas=dbas,
            databases=1,
            legacy_steps=LEGACY_UPGRADE_STEPS_PER_DBA * dbas,
            drivolution_steps=DRIVOLUTION_UPGRADE_STEPS_TOTAL,
        )
        # Generalisation: the legacy cost scales with DBAs x databases,
        # Drivolution's upgrade cost stays constant per database.
        result.add_row(
            task="driver upgrade (all databases)",
            dbas=dbas,
            databases=database_count,
            legacy_steps=LEGACY_UPGRADE_STEPS_PER_DBA * dbas * database_count,
            drivolution_steps=DRIVOLUTION_UPGRADE_STEPS_TOTAL * database_count,
        )

    # Executable Drivolution side: one console bootloader, several databases,
    # each serving its own driver — the console never configures a driver.
    environments = [
        build_single_database(database_name=f"db{i}", server_name=f"hetero{i}")
        for i in range(1, database_count + 1)
    ]
    try:
        drivers_delivered = []
        for index, env in enumerate(environments, start=1):
            env.admin.install_driver(
                build_pydb_driver(f"driver-for-db{index}", driver_version=(index, 0, 0)),
                database=env.database_name,
            )
        for index, env in enumerate(environments, start=1):
            console = Bootloader(BootloaderConfig(), network=env.network, clock=env.clock)
            connection = console.connect(env.url)
            cursor = connection.cursor()
            cursor.execute("SELECT 1")
            cursor.close()
            drivers_delivered.append(console.driver_info()["driver_name"])
            connection.close()
        result.add_note(
            "executable check: a DBA console (generic bootloaders, no manual driver "
            f"installs or configuration) accessed {database_count} databases; "
            f"drivers delivered automatically: {drivers_delivered}"
        )
    finally:
        for env in environments:
            env.close()
    return result
