"""E14 — partial replication across the RAIDb spectrum (docs/placement.md).

The paper's middleware defines RAIDb-0 (partitioning), RAIDb-1 (full
replication) and RAIDb-2 (partial replication); the reproduction
hardwired RAIDb-1 until the placement subsystem. This experiment runs the
same multi-table write workload under ``full``, ``hash:2`` and ``raidb0``
placement on one cluster size and measures what the RAIDb levels trade:

- **write fan-out** — how many backends each write touches (RAIDb-1 pays
  the whole cluster per write; hash-2 pays two backends; RAIDb-0 one),
- **per-backend load** — write statements executed per backend,
- **storage amplification** — rows stored across the cluster divided by
  logical rows (N× under full replication, 2× under hash-2, 1× under
  RAIDb-0).

``run_recovery_experiment`` exercises the partial-replica recovery path:
on a hash-2 cluster a backend is disabled, writes continue, the log is
compacted past its checkpoint, and re-enabling it cold-starts the
replica from a *table-subset* dump assembled from the siblings hosting
each of its tables, plus a placement-filtered tail replay. Convergence
is verified with a cross-backend checksum: every hosting backend of
every table holds identical rows, and the partial replica holds exactly
the tables it hosts.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence, Tuple

from repro.experiments.environments import ClusterEnvironment, build_cluster
from repro.experiments.harness import ExperimentResult


def _populate(scheduler, tables: int, rows_per_table: int) -> None:
    for table_index in range(tables):
        scheduler.execute(
            f"CREATE TABLE part_t{table_index} "
            "(id INTEGER NOT NULL PRIMARY KEY, v INTEGER)"
        )
        for row in range(rows_per_table):
            scheduler.execute(
                f"INSERT INTO part_t{table_index} (id, v) VALUES ($i, $v)",
                {"i": row, "v": 0},
            )


def _write_phase(scheduler, tables: int, writes_per_table: int) -> float:
    started = time.perf_counter()
    for round_index in range(writes_per_table):
        for table_index in range(tables):
            scheduler.execute(
                f"UPDATE part_t{table_index} SET v = $v WHERE id = $i",
                {"v": round_index, "i": round_index % 5},
            )
    return time.perf_counter() - started


def cluster_checksums(env: ClusterEnvironment) -> Dict[str, Dict[str, Tuple]]:
    """table → backend name → sorted row tuple, for every user table on
    every replica (the cross-backend convergence checksum)."""
    checksums: Dict[str, Dict[str, Tuple]] = {}
    for index, engine in enumerate(env.replica_engines):
        backend_name = f"db{index + 1}"
        session = engine.open_session(env.database_name)
        tables = session.execute(
            "SELECT table_name, table_schema FROM information_schema.tables"
        ).rows
        for table_name, table_schema in tables:
            if table_schema == "information_schema":
                continue
            rows = tuple(sorted(session.execute(f"SELECT * FROM {table_name}").rows))
            checksums.setdefault(str(table_name), {})[backend_name] = rows
    return checksums


def run_experiment(
    backends: int = 4,
    tables: int = 6,
    rows_per_table: int = 5,
    writes_per_table: int = 20,
    placements: Sequence[str] = ("full", "hash:2", "raidb0"),
) -> ExperimentResult:
    """Write workload under each placement; returns one row per RAIDb level."""
    result = ExperimentResult(
        experiment_id="E14",
        title="Partial replication (RAIDb-0/1/2): write fan-out, per-backend load, storage",
        parameters={
            "backends": backends,
            "tables": tables,
            "rows_per_table": rows_per_table,
            "writes_per_table": writes_per_table,
        },
    )
    for placement in placements:
        env = build_cluster(
            replicas=backends,
            controllers=1,
            controller_options={"placement": placement},
        )
        try:
            controller = env.controllers[0]
            scheduler = controller.scheduler
            _populate(scheduler, tables, rows_per_table)
            before = {
                backend.name: backend.statements_executed
                for backend in scheduler.backends()
            }
            elapsed = _write_phase(scheduler, tables, writes_per_table)
            per_backend = {
                backend.name: backend.statements_executed - before[backend.name]
                for backend in scheduler.backends()
            }
            writes = tables * writes_per_table
            executed = sum(per_backend.values())
            checksums = cluster_checksums(env)
            stored_rows = sum(
                len(rows) for copies in checksums.values() for rows in copies.values()
            )
            logical_rows = tables * rows_per_table
            result.add_row(
                placement=placement,
                writes=writes,
                write_fanout_avg=round(executed / writes, 2),
                per_backend_min=min(per_backend.values()),
                per_backend_max=max(per_backend.values()),
                storage_amplification=round(stored_rows / logical_rows, 2),
                writes_per_s=round(writes / elapsed, 1) if elapsed > 0 else "n/a",
                pinned_tables=controller.placement.stats()["pinned_tables"],
            )
        finally:
            env.close()
    result.add_note(
        "write fan-out shrinks from the whole cluster (RAIDb-1) to the hosting "
        "subset (hash:2) to a single backend (RAIDb-0), while storage "
        "amplification falls from Nx to 2x to 1x"
    )
    return result


def run_recovery_experiment(
    backends: int = 4,
    tables: int = 6,
    rows_per_table: int = 5,
    writes_while_down: int = 30,
) -> ExperimentResult:
    """Partial-replica recovery on hash-2: subset dump + filtered replay."""
    result = ExperimentResult(
        experiment_id="E14b",
        title="Partial-replica recovery: table-subset dump + placement-filtered replay",
        parameters={
            "backends": backends,
            "tables": tables,
            "writes_while_down": writes_while_down,
        },
    )
    env = build_cluster(
        replicas=backends, controllers=1, controller_options={"placement": "hash:2"}
    )
    try:
        controller = env.controllers[0]
        scheduler = controller.scheduler
        _populate(scheduler, tables, rows_per_table)
        placement = controller.placement
        victim = "db1"
        hosted = sorted(placement.tables_hosted_by(victim))
        controller.disable_backend(victim)
        for round_index in range(writes_while_down):
            table_index = round_index % tables
            scheduler.execute(
                f"UPDATE part_t{table_index} SET v = $v WHERE id = $i",
                {"v": 100 + round_index, "i": round_index % rows_per_table},
            )
        # Compact the victim's replay range away so recovery must take the
        # dump-based cold-start path (the interesting one for a partial
        # replica: the dump is assembled from its tables' hosting peers).
        controller.recovery_log.release_checkpoint(f"backend:{victim}")
        compacted = controller.compact_recovery_log()
        started = time.perf_counter()
        replayed = controller.enable_backend(victim)
        recovery_seconds = time.perf_counter() - started
        checksums = cluster_checksums(env)
        victim_tables = sorted(
            table for table, copies in checksums.items() if victim in copies
        )
        converged = all(
            len(set(copies.values())) == 1 for copies in checksums.values()
        )
        hosts_match_placement = all(
            set(copies) == set(placement.hosts(table))
            for table, copies in checksums.items()
        )
        result.add_row(
            victim=victim,
            hosted_tables=len(hosted),
            total_tables=tables,
            entries_compacted=compacted,
            entries_replayed=replayed,
            cold_starts=scheduler.cold_starts,
            recovery_seconds=round(recovery_seconds, 6),
            victim_restored_tables=len(victim_tables),
            victim_tables_match_placement=victim_tables == hosted,
            replicas_converged=converged,
            hosts_match_placement=hosts_match_placement,
        )
        result.add_note(
            "the cold start dumped only the victim's hosted tables (not the whole "
            "database) and the tail replay skipped entries for tables it does not host"
        )
    finally:
        env.close()
    return result
