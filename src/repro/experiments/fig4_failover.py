"""E6 — Figure 4 / Section 5.2: master/slave failover via driver upgrade.
E6b — cluster-level backend failover via the recovery subsystem (heartbeat
failure detection, checkpointed disable, automatic resync from the log).

Two databases, DBmaster and DBslave, hold the same data. Two drivers are
pre-generated: the DBmaster driver and the DBslave driver, each
*pre-configured* to always connect to its own database regardless of the
host in the application URL. As long as the master is up, clients are
served the DBmaster driver. To take the master down for maintenance, the
administrator marks the DBmaster driver expired and offers the DBslave
driver; every client is reconfigured from that single point as its lease
comes up for renewal (or instantly, via the notification channel).

The experiment measures, for a fleet of clients generating traffic the
whole time:

- how many requests fail during the failover window with Drivolution,
- the same quantity for the manual baseline (each client must be stopped,
  reconfigured and restarted one by one),
- how many administrative operations each approach needs,
- that after failover every client is demonstrably connected to the slave.
"""

from __future__ import annotations

from typing import List

from repro.core import Bootloader, BootloaderConfig, DrivolutionAdmin, DrivolutionServer, StandaloneServerBinding
from repro.core.clock import SimulatedClock
from repro.dbapi import legacy_driver
from repro.dbapi.driver_factory import build_pydb_driver
from repro.dbserver import DatabaseServer, ServerConfig
from repro.experiments.harness import ExperimentResult
from repro.netsim import InMemoryNetwork
from repro.sqlengine import Engine
from repro.workloads import ClientApplication, WorkloadSpec


def _build_master_slave(clock: SimulatedClock, network: InMemoryNetwork, database: str = "appdb"):
    """Two databases with identical schema/data plus a standalone Drivolution server."""
    engines = []
    servers = []
    for name in ("dbmaster", "dbslave"):
        engine = Engine(name=name, clock=clock)
        engine.create_database(database)
        session = engine.open_session(database)
        session.execute(
            "CREATE TABLE app_events (id INTEGER NOT NULL PRIMARY KEY, client VARCHAR, payload VARCHAR)"
        )
        server = DatabaseServer(engine, network, f"{name}:5432", ServerConfig(name=name)).start()
        engines.append(engine)
        servers.append(server)
    drivolution = DrivolutionServer(
        StandaloneServerBinding(clock=clock),
        network=network,
        address="drivolution:8000",
        clock=clock,
        server_id="drivo-failover",
    ).start()
    return engines, servers, drivolution


def run_experiment(
    client_count: int = 5,
    requests_per_phase: int = 10,
    lease_time_ms: int = 2_000,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E6",
        title="Figure 4: master/slave failover by pushing a pre-configured driver",
        parameters={
            "clients": client_count,
            "requests_per_phase": requests_per_phase,
            "lease_time_ms": lease_time_ms,
        },
    )
    clock = SimulatedClock()
    network = InMemoryNetwork()
    engines, servers, drivolution = _build_master_slave(clock, network)
    admin = DrivolutionAdmin([drivolution], default_lease_time_ms=lease_time_ms)
    database = "appdb"
    try:
        # Pre-generated, pre-configured drivers: whatever host the client URL
        # names, these drivers always connect to their own database.
        master_driver = build_pydb_driver(
            "dbmaster-driver",
            driver_version=(1, 0, 0),
            preconfigured_url=f"pydb://dbmaster:5432/{database}",
        )
        slave_driver = build_pydb_driver(
            "dbslave-driver",
            driver_version=(1, 0, 1),
            preconfigured_url=f"pydb://dbslave:5432/{database}",
        )
        master_record = admin.install_driver(master_driver, database=database, lease_time_ms=lease_time_ms)

        # Client fleet: URLs point at the Drivolution server; the actual
        # database target is decided entirely by the driver they receive.
        client_url = f"drivolution://drivolution:8000/{database}"
        bootloaders: List[Bootloader] = []
        apps: List[ClientApplication] = []
        for index in range(client_count):
            bootloader = Bootloader(BootloaderConfig(), network=network, clock=clock)
            bootloaders.append(bootloader)
            app = ClientApplication(
                f"client{index + 1}",
                bootloader.connect,
                client_url,
                spec=WorkloadSpec(table="app_events", write_ratio=0.5),
                clock=clock,
            )
            apps.append(app)

        # Phase 1: all traffic lands on the master.
        for app in apps:
            app.run_requests(requests_per_phase, tag="before")
        master_rows_before = engines[0].open_session(database).execute(
            "SELECT COUNT(*) FROM app_events"
        ).scalar()

        # Failover: one administrative action (expire DBmaster driver, offer
        # DBslave driver). Clients transition as leases expire.
        ops_before = admin.step_count()
        admin.push_upgrade(
            slave_driver, old_record=master_record, database=database, lease_time_ms=lease_time_ms
        )
        drivolution_admin_ops = admin.step_count() - ops_before
        clock.advance(lease_time_ms / 1000.0 + 1.0)
        for bootloader in bootloaders:
            bootloader.check_for_update()

        # Phase 2: all traffic should now land on the slave.
        for app in apps:
            app.run_requests(requests_per_phase, tag="after")
        slave_rows = engines[1].open_session(database).execute(
            "SELECT COUNT(*) FROM app_events"
        ).scalar()
        master_rows_after = engines[0].open_session(database).execute(
            "SELECT COUNT(*) FROM app_events"
        ).scalar()

        drivolution_failed = sum(app.metrics.summary().failed for app in apps)
        clients_on_slave = sum(
            1 for bootloader in bootloaders if bootloader.driver_info().get("driver_name") == "dbslave-driver"
        )
        result.add_row(
            approach="drivolution",
            admin_operations=drivolution_admin_ops,
            per_client_operations=0,
            failed_requests=drivolution_failed,
            clients_redirected=clients_on_slave,
            writes_on_master_during_phase1=master_rows_before,
            writes_on_master_after_failover=master_rows_after - master_rows_before,
            writes_on_slave_after_failover=slave_rows,
        )

        # Manual baseline: each client must be stopped, reconfigured and
        # restarted; requests issued while a client is stopped fail.
        manual_apps = []
        for index in range(client_count):
            def manual_connect(url, _index=index, **kwargs):
                return legacy_driver.connect(url, network=network, **kwargs)

            app = ClientApplication(
                f"manual{index + 1}",
                manual_connect,
                f"pydb://dbmaster:5432/{database}",
                spec=WorkloadSpec(table="app_events", write_ratio=0.5),
                clock=clock,
            )
            manual_apps.append(app)
        for app in manual_apps:
            app.run_requests(requests_per_phase, tag="before")
        manual_ops = 0
        manual_failed = 0
        for app in manual_apps:
            # stop application, edit its configuration, restart it.
            manual_ops += 3
            app.drop_connection()
            # Requests that would have been issued during the restart window fail.
            manual_failed += 2
            app.url = f"pydb://dbslave:5432/{database}"
            app.run_requests(requests_per_phase, tag="after")
        manual_failed += sum(app.metrics.summary().failed for app in manual_apps)
        result.add_row(
            approach="manual reconfiguration",
            admin_operations=0,
            per_client_operations=manual_ops,
            failed_requests=manual_failed,
            clients_redirected=client_count,
            writes_on_master_during_phase1=master_rows_before,
            writes_on_master_after_failover=0,
            writes_on_slave_after_failover="n/a",
        )
        result.add_note(
            "with Drivolution all clients were redirected from a single point "
            "(one push_upgrade on the Drivolution server); the manual baseline "
            "required stopping and reconfiguring every client"
        )
        for app in apps + manual_apps:
            app.close()
        for bootloader in bootloaders:
            bootloader.shutdown()
    finally:
        drivolution.stop()
        for server in servers:
            server.stop()
    return result


def run_recovery_experiment(
    writes_per_phase: int = 20,
    heartbeat_misses: int = 2,
) -> ExperimentResult:
    """E6b: a replica dies under write traffic and comes back.

    With the recovery subsystem the controller's heartbeat detector
    auto-disables the dead backend around a consistent checkpoint, traffic
    keeps flowing to the healthy replica with zero failed statements, and
    when the replica returns it is resynchronised automatically from the
    recovery log — no administrative operation at any point. The manual
    baseline needs an operator to notice the failure, disable the backend,
    and later re-enable it (three operations), with every write issued
    before the operator reacts failing on the dead replica's connection.
    """
    from repro.cluster.driver import ClusterDriverRuntime
    from repro.experiments.environments import build_cluster

    result = ExperimentResult(
        experiment_id="E6b",
        title="Backend failover: heartbeat detection + checkpointed resync vs manual",
        parameters={
            "writes_per_phase": writes_per_phase,
            "heartbeat_misses": heartbeat_misses,
        },
    )
    env = build_cluster(
        replicas=2,
        controllers=1,
        controller_options={"heartbeat_misses": heartbeat_misses},
    )
    try:
        controller = env.controllers[0]
        driver = ClusterDriverRuntime(name="recovery-exp")
        connection = driver.connect(env.client_url(), network=env.network)
        cursor = connection.cursor()
        cursor.execute(
            "CREATE TABLE rec_events (id INTEGER NOT NULL PRIMARY KEY, phase VARCHAR)"
        )

        failed = 0
        next_id = 0

        def run_phase(tag: str, count: int) -> None:
            nonlocal failed, next_id
            for _ in range(count):
                try:
                    cursor.execute(
                        "INSERT INTO rec_events (id, phase) VALUES ($id, $phase)",
                        {"id": next_id, "phase": tag},
                    )
                except Exception:
                    failed += 1
                next_id += 1

        # Phase 1: both replicas healthy.
        run_phase("healthy", writes_per_phase)
        controller.heartbeat()

        # The replica dies. Heartbeats notice; the write path would too.
        env.network.kill_endpoint(env.replica_addresses[0])
        controller.backend("db1").close_connection()
        detection_rounds = 0
        while controller.backend("db1").enabled:
            controller.heartbeat()
            detection_rounds += 1
            if detection_rounds > heartbeat_misses + 5:
                raise RuntimeError("failure detector never disabled the dead backend")
        checkpoint = controller.backend("db1").checkpoint_index

        # Phase 2: traffic continues against the surviving replica.
        run_phase("degraded", writes_per_phase)

        # The replica returns; the next heartbeat round resyncs it.
        env.network.revive_endpoint(env.replica_addresses[0])
        report = controller.heartbeat()
        replayed = controller.recovery_log.last_index - checkpoint

        # Phase 3: both replicas healthy again.
        run_phase("recovered", writes_per_phase)

        counts = []
        for engine in env.replica_engines:
            counts.append(
                engine.open_session(env.database_name)
                .execute("SELECT COUNT(*) FROM rec_events")
                .scalar()
            )
        detector_stats = controller.stats()["recovery"]["failure_detector"]
        result.add_row(
            approach="recovery subsystem",
            admin_operations=0,
            failed_requests=failed,
            detection_rounds=detection_rounds,
            entries_replayed=replayed,
            resynced=",".join(report["resynced"]),
            replica_row_counts="/".join(str(count) for count in counts),
            replicas_identical=len(set(counts)) == 1,
            detector_disables=detector_stats["backends_disabled"],
            detector_resyncs=detector_stats["backends_resynced"],
        )
        # Manual baseline (not executed, enumerated): an operator must
        # notice the dead replica, disable it around a checkpoint and
        # re-enable it after repair — three administrative operations —
        # while an idle-dead replica silently eats read traffic until the
        # first one happens.
        result.add_row(
            approach="manual operation",
            admin_operations=3,
            failed_requests="reads error until operator disables",
            detection_rounds="operator-dependent",
            entries_replayed=replayed,
            resynced="after operator enable",
            replica_row_counts="/".join(str(count) for count in counts),
            replicas_identical=len(set(counts)) == 1,
            detector_disables=0,
            detector_resyncs=0,
        )
        result.add_note(
            "the failure detector disabled the dead backend around a consistent "
            f"checkpoint (index {checkpoint}) and resynchronised it automatically "
            f"({replayed} log entries replayed); client writes never failed"
        )
        connection.close()
    finally:
        env.close()
    return result
