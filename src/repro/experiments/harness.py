"""Shared experiment result container and formatting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class ExperimentResult:
    """Result of one experiment run.

    ``rows`` is a list of dictionaries, each one line of the table the
    experiment reproduces. ``notes`` records qualitative observations the
    paper states (e.g. "no application restart required") together with
    whether the run confirmed them.
    """

    experiment_id: str
    title: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    parameters: Dict[str, Any] = field(default_factory=dict)

    def add_row(self, **values: Any) -> None:
        self.rows.append(dict(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column_names(self) -> List[str]:
        names: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in names:
                    names.append(key)
        return names

    def to_text(self) -> str:
        """Render the result as a fixed-width text table."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        if self.parameters:
            lines.append("parameters: " + ", ".join(f"{k}={v}" for k, v in self.parameters.items()))
        columns = self.column_names()
        if columns:
            widths = {
                name: max(len(name), *(len(_cell(row.get(name))) for row in self.rows))
                for name in columns
            }
            header = " | ".join(name.ljust(widths[name]) for name in columns)
            lines.append(header)
            lines.append("-+-".join("-" * widths[name] for name in columns))
            for row in self.rows:
                lines.append(
                    " | ".join(_cell(row.get(name)).ljust(widths[name]) for name in columns)
                )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def find_row(self, **criteria: Any) -> Optional[Dict[str, Any]]:
        """First row matching all key/value criteria (test helper)."""
        for row in self.rows:
            if all(row.get(key) == value for key, value in criteria.items()):
                return row
        return None


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
