"""E12 — Bootloader overhead.

The paper's design argument is that the bootloader "simply intercepts the
connect method call" and passes everything else through, so the overhead
of using Drivolution should be confined to the first connection (driver
download and dynamic load) and be negligible per statement afterwards.
This experiment measures:

- first-connect latency through the bootloader (includes the bootstrap
  protocol round and dynamic load) vs a conventional driver connect,
- subsequent connect latency (driver already loaded),
- per-statement latency through a bootloader-obtained connection vs a
  conventional connection.
"""

from __future__ import annotations

import time
from statistics import mean

from repro.core import BootloaderConfig
from repro.dbapi import legacy_driver
from repro.dbapi.driver_factory import build_pydb_driver
from repro.experiments.environments import build_single_database
from repro.experiments.harness import ExperimentResult


def run_experiment(statement_count: int = 200, connect_count: int = 20) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E12",
        title="Bootloader overhead: connect and per-statement latency",
        parameters={"statements": statement_count, "connects": connect_count},
    )
    env = build_single_database(lease_time_ms=600_000)
    try:
        env.admin.install_driver(
            build_pydb_driver("pydb-overhead", driver_version=(1, 0, 0)),
            database=env.database_name,
        )
        session = env.open_sql_session()
        session.execute("CREATE TABLE overhead_events (id INTEGER NOT NULL PRIMARY KEY, v VARCHAR)")
        session.execute("INSERT INTO overhead_events (id, v) VALUES (1, 'x')")

        # First connect through the bootloader (includes download + load).
        bootloader = env.new_bootloader(BootloaderConfig())
        started = time.perf_counter()
        first_connection = bootloader.connect(env.url)
        first_connect_s = time.perf_counter() - started

        # Subsequent connects: driver already loaded.
        subsequent = []
        for _ in range(connect_count):
            started = time.perf_counter()
            connection = bootloader.connect(env.url)
            subsequent.append(time.perf_counter() - started)
            connection.close()

        # Conventional driver connects.
        conventional = []
        for _ in range(connect_count):
            started = time.perf_counter()
            connection = legacy_driver.connect(env.url, network=env.network)
            conventional.append(time.perf_counter() - started)
            connection.close()

        result.add_row(
            metric="connect latency (ms)",
            bootloader_first=round(first_connect_s * 1000, 3),
            bootloader_subsequent=round(mean(subsequent) * 1000, 3),
            conventional_driver=round(mean(conventional) * 1000, 3),
        )

        # Per-statement latency.
        def statement_latencies(connection) -> list:
            cursor = connection.cursor()
            samples = []
            for _ in range(statement_count):
                started = time.perf_counter()
                cursor.execute("SELECT v FROM overhead_events WHERE id = $id", {"id": 1})
                cursor.fetchall()
                samples.append(time.perf_counter() - started)
            cursor.close()
            return samples

        via_bootloader = statement_latencies(first_connection)
        conventional_connection = legacy_driver.connect(env.url, network=env.network)
        via_conventional = statement_latencies(conventional_connection)
        result.add_row(
            metric="per-statement latency (ms)",
            bootloader_first=round(mean(via_bootloader) * 1000, 4),
            bootloader_subsequent=round(mean(via_bootloader) * 1000, 4),
            conventional_driver=round(mean(via_conventional) * 1000, 4),
        )
        overhead_pct = (
            100.0 * (mean(via_bootloader) - mean(via_conventional)) / mean(via_conventional)
            if mean(via_conventional) > 0
            else 0.0
        )
        result.add_note(
            f"per-statement overhead of the Drivolution-delivered driver vs the conventional "
            f"driver: {overhead_pct:.1f}% (calls pass straight through to the loaded driver)"
        )
        result.add_note(
            f"driver bytes downloaded on first connect: {bootloader.stats.bytes_downloaded}"
        )
        first_connection.close()
        conventional_connection.close()
    finally:
        env.close()
    return result
