"""E7 — Figure 5 / Section 5.3.1: standalone Drivolution server for a legacy Sequoia cluster.

Nothing in the cluster supports Drivolution natively: a standalone
Drivolution server is deployed as a separate distribution service, and
client applications use the dual-URL configuration (one URL for the
Drivolution server, one passed to the driver for the controllers).

Reproduced claims:

- **Sequoia driver upgrade**: a new cluster driver is added to the
  standalone server; clients upgrade at lease renewal while controllers
  are restarted one by one — traffic keeps flowing throughout (the cluster
  driver fails over), so the application sees no interruption.
- **Database driver upgrade**: backends are disabled one at a time, the
  backend's driver (connection factory) is replaced, the node is
  re-enabled and resynchronised from the recovery log — again with no
  client-visible errors. A faulty driver can be rolled back by restoring
  the older version on the Drivolution server.
"""

from __future__ import annotations

from repro.core import Bootloader, BootloaderConfig, DrivolutionAdmin
from repro.dbapi import legacy_driver
from repro.dbapi.driver_factory import build_pydb_driver, build_sequoia_driver
from repro.experiments.environments import build_cluster
from repro.experiments.harness import ExperimentResult
from repro.workloads import ClientApplication, WorkloadSpec


def run_experiment(
    client_count: int = 3,
    requests_per_phase: int = 8,
    lease_time_ms: int = 2_000,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E7",
        title="Figure 5: standalone Drivolution server driving a legacy Sequoia cluster",
        parameters={"clients": client_count, "lease_time_ms": lease_time_ms},
    )
    env = build_cluster(replicas=2, controllers=2, standalone_drivolution=True)
    assert env.standalone_drivolution is not None
    admin = DrivolutionAdmin([env.standalone_drivolution], default_lease_time_ms=lease_time_ms)
    try:
        sequoia_v1 = build_sequoia_driver("sequoia-driver-1.0", driver_version=(1, 0, 0))
        record_v1 = admin.install_driver(sequoia_v1, database=env.controllers[0].config.virtual_database,
                                         lease_time_ms=lease_time_ms)

        # Dual-URL clients: bootloader contacts the standalone server, the
        # loaded Sequoia driver uses the controller URL.
        bootloaders = []
        apps = []
        for index in range(client_count):
            bootloader = Bootloader(
                BootloaderConfig(api_name="SEQUOIA", drivolution_servers=["drivolution:8000"]),
                network=env.network,
                clock=env.clock,
            )
            bootloaders.append(bootloader)
            app = ClientApplication(
                f"cluster-client{index + 1}",
                bootloader.connect,
                env.client_url(),
                spec=WorkloadSpec(table="fig5_events", write_ratio=0.5),
                clock=env.clock,
            )
            apps.append(app)
        apps[0].ensure_schema()
        for app in apps:
            app.run_requests(requests_per_phase, tag="phase0")

        # --- Sequoia driver upgrade with rolling controller restarts -------------
        sequoia_v2 = build_sequoia_driver("sequoia-driver-2.0", driver_version=(2, 0, 0))
        admin.push_upgrade(
            sequoia_v2,
            old_record=record_v1,
            database=env.controllers[0].config.virtual_database,
            lease_time_ms=lease_time_ms,
        )
        for controller in env.controllers:
            # Rolling restart: stop one controller, let traffic fail over,
            # then bring it back before touching the next one.
            controller.stop()
            env.network.kill_endpoint(controller.address)
            for app in apps:
                app.drop_connection()  # next request reconnects and fails over
                app.run_requests(requests_per_phase, tag="rolling")
            env.network.revive_endpoint(controller.address)
            controller.start()
        env.clock.advance(lease_time_ms / 1000.0 + 1.0)
        upgraded = sum(1 for bootloader in bootloaders if bootloader.check_for_update() == "upgraded")
        for app in apps:
            app.drop_connection()
            app.run_requests(requests_per_phase, tag="after-sequoia-upgrade")
        failed_during_rolling = sum(
            1
            for app in apps
            for record in app.metrics.records()
            if record.tag in ("rolling", "after-sequoia-upgrade") and not record.ok
        )
        result.add_row(
            operation="Sequoia driver upgrade (rolling controller restart)",
            admin_operations=2,  # revoke old + install new on the standalone server
            clients_upgraded=upgraded,
            client_machines_modified=0,
            failed_requests=failed_during_rolling,
            driver_after=bootloaders[0].driver_info().get("driver_name", ""),
        )

        # --- Database driver upgrade, one backend at a time -----------------------
        new_db_driver = build_pydb_driver("pydb-backend-2.0", driver_version=(2, 0, 0))
        admin.install_driver(new_db_driver, database=env.database_name, lease_time_ms=lease_time_ms)
        replayed_total = 0
        for replica_index, address in enumerate(env.replica_addresses):
            backend_name = f"db{replica_index + 1}"
            primary = env.controllers[0]
            primary.disable_backend_cluster_wide(backend_name)
            # While the node is disabled, traffic continues on the other replica.
            for app in apps:
                app.run_requests(requests_per_phase, tag=f"backend-{backend_name}-disabled")
            # "Upgrade" the backend driver: each controller's backend gets a
            # fresh connection factory (the new driver generation).
            def upgraded_factory(addr=address):
                return legacy_driver.connect(f"pydb://{addr}/{env.database_name}", network=env.network)

            for controller in env.controllers:
                controller.backend(backend_name).replace_connection_factory(upgraded_factory)
            replayed_total += primary.enable_backend_cluster_wide(backend_name)
        for app in apps:
            app.run_requests(requests_per_phase, tag="after-db-upgrade")
        failed_during_db_upgrade = sum(
            1
            for app in apps
            for record in app.metrics.records()
            if record.tag.startswith(("backend-", "after-db-upgrade")) and not record.ok
        )
        result.add_row(
            operation="database driver upgrade (one backend at a time)",
            admin_operations=1,
            clients_upgraded=client_count,
            client_machines_modified=0,
            failed_requests=failed_during_db_upgrade,
            driver_after="pydb-backend-2.0 (controller side)",
        )
        replica_row_counts = [
            engine.open_session(env.database_name).execute("SELECT COUNT(*) FROM fig5_events").scalar()
            for engine in env.replica_engines
        ]
        result.add_note(
            f"recovery log entries replayed locally while re-enabling backends: {replayed_total}; "
            f"replica row counts after resync: {replica_row_counts} "
            f"(consistent: {len(set(replica_row_counts)) == 1})"
        )
        result.add_note(
            "single standalone Drivolution server controls drivers for the whole cluster; "
            "it is a single point of failure unless replicated (compare with E8)"
        )
        for app in apps:
            app.close()
    finally:
        env.close()
    return result
