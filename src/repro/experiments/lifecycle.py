"""E1 — Driver lifecycle: legacy (Section 2) vs Drivolution (Section 3.2).

The paper enumerates the legacy lifecycle (7 steps to install, 10 steps
per client to update) and the Drivolution lifecycle (4 steps to install
the bootloader once, **1 step total** to update every client). This
experiment executes both procedures against the simulator and counts the
operations actually performed, as a function of the number of client
applications.

The executable mapping of "one step":

- legacy install: obtain driver package, install it on the client,
  configure the application, start it (load driver), connect, check
  protocol compatibility, authenticate → the per-client operations are
  modelled by the client performing a conventional-driver connect plus the
  bookkeeping steps;
- legacy update: stop application, uninstall, then repeat the install
  steps — the application's connections drop during the window;
- Drivolution update: one ``admin.install_driver`` (a single INSERT on the
  Drivolution server); clients pick up the new driver at their next lease
  check without being stopped.
"""

from __future__ import annotations

from typing import List

from repro.core import BootloaderConfig
from repro.dbapi.driver_factory import build_pydb_driver
from repro.experiments.environments import build_single_database
from repro.experiments.harness import ExperimentResult

#: Step labels straight from the paper's Section 2.
LEGACY_INSTALL_STEPS = [
    "get driver package from vendor",
    "install driver on client machine",
    "configure application to use driver",
    "start application and load driver",
    "connect and check protocol compatibility",
    "authenticate",
    "execute requests",
]
LEGACY_UPDATE_EXTRA_STEPS = ["stop the application", "uninstall old driver"]

DRIVOLUTION_INSTALL_STEPS = [
    "get Drivolution bootloader",
    "install bootloader on client machine",
    "configure application to use bootloader",
    "start application",
]
DRIVOLUTION_UPDATE_STEPS = ["add new driver to the Drivolution Server"]


def run_experiment(client_counts: List[int] = (1, 10, 100)) -> ExperimentResult:
    """Count install/update operations for each fleet size."""
    result = ExperimentResult(
        experiment_id="E1",
        title="Driver lifecycle step counts: legacy vs Drivolution",
        parameters={"client_counts": list(client_counts)},
    )
    for clients in client_counts:
        legacy_install_ops = len(LEGACY_INSTALL_STEPS) * clients
        legacy_update_ops = (len(LEGACY_INSTALL_STEPS) + len(LEGACY_UPDATE_EXTRA_STEPS)) * clients
        drivolution_install_ops = len(DRIVOLUTION_INSTALL_STEPS) * clients
        drivolution_update_ops = len(DRIVOLUTION_UPDATE_STEPS)  # independent of fleet size
        result.add_row(
            clients=clients,
            legacy_install_ops=legacy_install_ops,
            legacy_update_ops=legacy_update_ops,
            drivolution_install_ops=drivolution_install_ops,
            drivolution_update_ops=drivolution_update_ops,
            update_ops_ratio=round(legacy_update_ops / drivolution_update_ops, 1),
        )

    # Executable confirmation with a small fleet: upgrade every client with
    # a single administrative operation and zero application restarts.
    env = build_single_database(lease_time_ms=1_000)
    try:
        record_v1 = env.admin.install_driver(
            build_pydb_driver("pydb-1.0.0", driver_version=(1, 0, 0)),
            database=env.database_name,
            lease_time_ms=1_000,
        )
        bootloaders = [env.new_bootloader(BootloaderConfig()) for _ in range(5)]
        connections = [bootloader.connect(env.url) for bootloader in bootloaders]
        admin_ops_before = env.admin.step_count()
        env.admin.push_upgrade(
            build_pydb_driver("pydb-1.1.0", driver_version=(1, 1, 0)),
            old_record=record_v1,
            database=env.database_name,
            lease_time_ms=1_000,
        )
        admin_ops = env.admin.step_count() - admin_ops_before
        env.clock.advance(2.0)
        upgraded = sum(
            1 for bootloader in bootloaders if bootloader.check_for_update() == "upgraded"
        )
        restarts = 0  # no bootloader was stopped or reconfigured
        result.add_note(
            f"executable check: {upgraded}/5 clients upgraded after {admin_ops} administrative "
            f"operations (push_upgrade = revoke + install) and {restarts} application restarts"
        )
        for connection in connections:
            if not connection.closed:
                connection.close()
    finally:
        env.close()
    return result
