"""E15 — conflict-aware parallel write scheduling (docs/scheduling.md).

The paper's middleware earns its throughput by overlapping
non-conflicting requests across replicas; until the lock-manager
refactor the reproduction funnelled every cluster write through one
global lock, so a hash-partitioned RAIDb-0/2 cluster gained capacity on
paper but serialised in practice.

``run_experiment`` measures exactly that: N writer threads, each
hammering its *own* table, on a partitioned cluster of latency-injected
backends (one table per backend, so disjoint writers touch disjoint
replicas). Under the single global lock the writers serialise and
aggregate throughput is one writer's; under conflict-aware table locks
they overlap and throughput scales with the partition count. A third
mode runs the conflict-aware manager on a *conflicting* workload (every
writer on one table) to show conflicting statements still serialise —
its throughput matches the global-lock baseline, not the disjoint one.

``run_divergence_experiment`` is the safety half: disjoint writer
threads race a real replicated cluster (hash-2 placement) while a
backend is disabled and resynced mid-workload, then every table's rows
are checksummed across its hosting replicas and the recovery log's
per-table sequence numbers are verified monotone. Parallelism must not
cost a single lost update or a diverged replica.

``run_key_experiment`` / ``run_key_divergence_experiment`` repeat the
pair one granularity step down (E16): writers on disjoint *rows of one
shared table*, where table locks serialise but ``(table, key)`` locks
overlap — throughput on synthetic latency backends, convergence on a
real cluster racing resyncs.

``run_session_scaling_experiment`` (E17) measures the massive-concurrency
front end (docs/wire.md): thousands of logical sessions multiplexed over
a handful of physical channels, with controller thread count bounded by
the fixed worker pool instead of growing one thread per connection.
``run_group_commit_experiment`` is its durability half: concurrent
auto-commit writers on a real fsyncing ``FileLogStore``, per-statement
fsync vs one fsync per commit group.

``run_write_batching_experiment`` (E18) measures cross-session write
batching (docs/scheduling.md): concurrent disjoint auto-commit writers
on round-trip-charged backends, one broadcast round trip per statement
vs one per coalesced batch. ``run_batched_divergence_experiment`` is its
safety half (batched writes racing disable/resync cycles must still
converge), and ``run_admission_experiment`` drives a small worker pool
past its configured in-flight bound to show saturation degrades into
retryable ``server_busy`` rejections with bounded client latency — not
collapse — and zero lost writes.
"""

from __future__ import annotations

import shutil
import tempfile
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.backend import Backend
from repro.cluster.broadcaster import WriteBroadcaster
from repro.cluster.driver import ClusterDriverRuntime
from repro.cluster.locks import LockManager
from repro.cluster.placement import create_placement
from repro.cluster.recovery import FileLogStore, GroupCommit, RecoveryLog
from repro.cluster.scheduler import RequestScheduler
from repro.experiments.environments import build_cluster
from repro.experiments.harness import ExperimentResult
from repro.experiments.partial_replication import cluster_checksums


class _LatencyConnection:
    """Synthetic backend connection charging a fixed latency per statement.

    Declares DB-API ``threadsafety`` level 2 (threads may share the
    connection): it models a real DBMS replica, which processes
    disjoint-row statements concurrently — without it the per-backend
    connection lock would re-serialise everything the scheduler's
    key-level scopes just parallelised."""

    threadsafety = 2

    def __init__(self, latency_s: float) -> None:
        self._latency_s = latency_s
        self.closed = False
        self.driver_info = {"name": "latency-sim"}

    def cursor(self) -> "_LatencyCursor":
        return _LatencyCursor(self._latency_s)

    def close(self) -> None:
        self.closed = True


class _LatencyCursor:
    description = [("ok", None, None, None, None, None, None)]
    rowcount = 1

    def __init__(self, latency_s: float) -> None:
        self._latency_s = latency_s

    def execute(self, sql: str, params: Optional[Dict[str, Any]] = None) -> None:
        time.sleep(self._latency_s)

    def fetchall(self) -> List[Tuple[Any, ...]]:
        return [(1,)]

    def close(self) -> None:
        pass


def _run_writers(
    scheduler: RequestScheduler,
    writers: int,
    writes_per_writer: int,
    table_for: Any,
    key_for: Any = None,
) -> Tuple[float, List[Exception]]:
    """``writers`` threads, writer *i* updating row ``key_for(i)`` (its
    own index by default) of ``table_for(i)``; returns (wall_seconds,
    errors)."""
    errors: List[Exception] = []
    barrier = threading.Barrier(writers + 1)

    def body(writer_index: int) -> None:
        table = table_for(writer_index)
        row_key = writer_index if key_for is None else key_for(writer_index)
        barrier.wait()
        try:
            for write_index in range(writes_per_writer):
                scheduler.execute(
                    f"UPDATE {table} SET v = $v WHERE id = $i",
                    {"v": write_index, "i": row_key},
                )
        except Exception as exc:  # noqa: BLE001 - surfaced via the errors list
            errors.append(exc)

    threads = [
        threading.Thread(target=body, args=(index,), name=f"writer-{index}")
        for index in range(writers)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    return time.perf_counter() - started, errors


def run_experiment(
    writers: int = 4,
    writes_per_writer: int = 25,
    latency_ms: float = 3.0,
) -> ExperimentResult:
    """Disjoint-writer throughput: global lock vs conflict-aware locks.

    One latency-injected backend per writer, tables placed explicitly
    one-per-backend (pure partitioning), so the only serialisation point
    is the scheduler's own write ordering.
    """
    result = ExperimentResult(
        experiment_id="E15",
        title="Conflict-aware parallel write scheduling vs the global write lock",
        parameters={
            "writers": writers,
            "writes_per_writer": writes_per_writer,
            "latency_ms": latency_ms,
        },
    )
    latency_s = latency_ms / 1000.0
    placement_spec = "explicit:" + ",".join(
        f"w{index}=sim{index + 1}" for index in range(writers)
    )
    timings: Dict[str, float] = {}
    modes = [
        ("global-lock", False, True),
        ("conflict-aware", True, True),
        ("conflict-aware/conflicting", True, False),
    ]
    for mode, conflict_aware, disjoint in modes:
        backends = [
            Backend(f"sim{index + 1}", lambda: _LatencyConnection(latency_s))
            for index in range(writers)
        ]
        scheduler = RequestScheduler(
            backends,
            RecoveryLog(),
            broadcaster=WriteBroadcaster(parallel=True, max_workers=writers),
            placement=create_placement(placement_spec),
            lock_manager=LockManager(conflict_aware=conflict_aware),
        )
        try:
            table_for = (lambda i: f"w{i}") if disjoint else (lambda i: "w0")
            wall, errors = _run_writers(scheduler, writers, writes_per_writer, table_for)
            if errors:
                raise errors[0]
            writes = writers * writes_per_writer
            lock_stats = scheduler.lock_manager.stats()
            result.add_row(
                mode=mode,
                writers=writers,
                writes=writes,
                wall_s=round(wall, 4),
                writes_per_s=round(writes / wall, 1) if wall > 0 else "n/a",
                per_write_ms=round(wall / writes * 1000, 3),
                table_acquisitions=lock_stats["table_acquisitions"],
                exclusive_acquisitions=lock_stats["exclusive_acquisitions"],
                lock_waits=lock_stats["table_waits"] + lock_stats["exclusive_waits"],
                log_entries=scheduler.stats()["recovery_log_entries"],
            )
            timings[mode] = wall
        finally:
            scheduler.close()
    speedup = (
        timings["global-lock"] / timings["conflict-aware"]
        if timings.get("conflict-aware")
        else 0.0
    )
    result.parameters["speedup_x"] = round(speedup, 2)
    result.add_note(
        f"{writers} disjoint-table writers are {speedup:.1f}x faster under "
        f"conflict-aware table locks than under the single global write lock "
        f"({latency_ms}ms per-statement backend latency)"
    )
    result.add_note(
        "the conflicting workload (all writers on one table) stays serialised: "
        "table locks only parallelise what cannot conflict"
    )
    return result


def run_key_experiment(
    writers: int = 4,
    writes_per_writer: int = 25,
    latency_ms: float = 3.0,
) -> ExperimentResult:
    """Same-table disjoint-key throughput: table locks vs key locks.

    Every writer hammers its *own row* of one shared table, so table
    granularity serialises the whole workload while key granularity
    overlaps it — the one-step-down analogue of :func:`run_experiment`.
    A third mode puts every writer on the *same* row to show conflicting
    keys still serialise at the table-lock baseline's pace.

    The schedulers get the table's primary key via the ``primary_keys``
    override: the latency-injected backends expose no catalog to probe.
    """
    result = ExperimentResult(
        experiment_id="E16",
        title="Key-level locking: same-table disjoint-key writers vs table locks",
        parameters={
            "writers": writers,
            "writes_per_writer": writes_per_writer,
            "latency_ms": latency_ms,
        },
    )
    latency_s = latency_ms / 1000.0
    timings: Dict[str, float] = {}
    modes = [
        ("table-locks", False, True),
        ("key-level", True, True),
        ("key-level/conflicting", True, False),
    ]
    for mode, key_level, disjoint in modes:
        backends = [Backend("sim1", lambda: _LatencyConnection(latency_s))]
        scheduler = RequestScheduler(
            backends,
            RecoveryLog(),
            broadcaster=WriteBroadcaster(parallel=True, max_workers=writers),
            key_level_locking=key_level,
            primary_keys={"hot": ("id", "INTEGER")},
        )
        try:
            key_for = None if disjoint else (lambda i: 0)
            wall, errors = _run_writers(
                scheduler, writers, writes_per_writer, lambda i: "hot", key_for
            )
            if errors:
                raise errors[0]
            writes = writers * writes_per_writer
            lock_stats = scheduler.lock_manager.stats()
            result.add_row(
                mode=mode,
                writers=writers,
                writes=writes,
                wall_s=round(wall, 4),
                writes_per_s=round(writes / wall, 1) if wall > 0 else "n/a",
                per_write_ms=round(wall / writes * 1000, 3),
                key_acquisitions=lock_stats["key_acquisitions"],
                table_acquisitions=lock_stats["table_acquisitions"],
                lock_waits=lock_stats["key_waits"] + lock_stats["table_waits"],
                log_entries=scheduler.stats()["recovery_log_entries"],
            )
            timings[mode] = wall
        finally:
            scheduler.close()
    speedup = (
        timings["table-locks"] / timings["key-level"]
        if timings.get("key-level")
        else 0.0
    )
    result.parameters["speedup_x"] = round(speedup, 2)
    result.add_note(
        f"{writers} writers on disjoint rows of ONE table are {speedup:.1f}x "
        f"faster under (table, key) locks than under whole-table locks "
        f"({latency_ms}ms per-statement backend latency)"
    )
    result.add_note(
        "writers on the same row stay serialised: key locks only "
        "parallelise provably disjoint rows"
    )
    return result


def run_key_divergence_experiment(
    backends: int = 2,
    writers: int = 4,
    writes_per_writer: int = 30,
) -> ExperimentResult:
    """Disjoint-key writers on one shared table race a resync on a real
    replicated cluster; verify no lost updates, converged replicas, and
    per-table log order. The safety half of :func:`run_key_experiment` —
    key-parallel broadcasts may *execute* in different orders on
    different replicas, which is only sound because disjoint single-row
    statements commute; this measures that end to end."""
    result = ExperimentResult(
        experiment_id="E16b",
        title="Replica convergence under same-table disjoint-key writers racing a resync",
        parameters={
            "backends": backends,
            "writers": writers,
            "writes_per_writer": writes_per_writer,
        },
    )
    env = build_cluster(replicas=backends, controllers=1)
    try:
        controller = env.controllers[0]
        scheduler = controller.scheduler
        scheduler.execute(
            "CREATE TABLE hot (id INTEGER NOT NULL PRIMARY KEY, v INTEGER)"
        )
        for row in range(writers):
            scheduler.execute(
                "INSERT INTO hot (id, v) VALUES ($i, $v)", {"i": row, "v": -1}
            )
        base_index = controller.recovery_log.last_index

        resync_errors: List[Exception] = []
        stop = threading.Event()

        def resync_cycler() -> None:
            try:
                while not stop.is_set():
                    controller.disable_backend("db1")
                    time.sleep(0.002)
                    controller.enable_backend("db1")
                    time.sleep(0.002)
            except Exception as exc:  # noqa: BLE001
                resync_errors.append(exc)

        cycler = threading.Thread(target=resync_cycler, name="resync-cycler")
        cycler.start()
        wall, errors = _run_writers(
            scheduler, writers, writes_per_writer, lambda i: "hot"
        )
        stop.set()
        cycler.join(timeout=30.0)
        if errors:
            raise errors[0]
        if resync_errors:
            raise resync_errors[0]

        entries = controller.recovery_log.entries_after(base_index)
        hot_seqs = [
            seq
            for entry in entries
            for table, seq in entry.table_seqs.items()
            if table == "hot"
        ]
        per_table_order_ok = hot_seqs == sorted(hot_seqs) and len(hot_seqs) == len(
            set(hot_seqs)
        )
        checksums = cluster_checksums(env)
        converged = all(
            len(set(copies.values())) == 1 for copies in checksums.values()
        )
        # No lost updates: every writer's row ends at its final value on
        # every replica (each row is written by exactly one writer, in
        # order, so the last write must win everywhere).
        rows_ok = True
        for engine in env.replica_engines:
            session = engine.open_session(env.database_name)
            rows = sorted(session.execute("SELECT id, v FROM hot").rows)
            if rows != [(i, writes_per_writer - 1) for i in range(writers)]:
                rows_ok = False
        lock_stats = scheduler.lock_manager.stats()
        result.add_row(
            writes=writers * writes_per_writer,
            logged=len(entries),
            wall_s=round(wall, 4),
            replicas_converged=converged,
            final_rows_ok=rows_ok,
            per_table_order_ok=per_table_order_ok,
            key_acquisitions=lock_stats["key_acquisitions"],
            exclusive_acquisitions=lock_stats["exclusive_acquisitions"],
        )
        result.add_note(
            "every replica holds identical final rows after disjoint-key "
            "writers on one table raced repeated disable/resync cycles; "
            "the recovery log's per-table sequences stay strictly increasing"
        )
    finally:
        env.close()
    return result


def run_divergence_experiment(
    backends: int = 4,
    writers: int = 4,
    writes_per_writer: int = 30,
    rows_per_table: int = 5,
) -> ExperimentResult:
    """Disjoint writers race a resync on a real hash-2 cluster; verify
    no lost updates, converged replicas, and per-table log order."""
    result = ExperimentResult(
        experiment_id="E15b",
        title="Replica convergence under concurrent disjoint writers racing a resync",
        parameters={
            "backends": backends,
            "writers": writers,
            "writes_per_writer": writes_per_writer,
        },
    )
    env = build_cluster(
        replicas=backends, controllers=1, controller_options={"placement": "hash:2"}
    )
    try:
        controller = env.controllers[0]
        scheduler = controller.scheduler
        for writer_index in range(writers):
            scheduler.execute(
                f"CREATE TABLE conc_w{writer_index} "
                "(id INTEGER NOT NULL PRIMARY KEY, v INTEGER)"
            )
            for row in range(rows_per_table):
                scheduler.execute(
                    f"INSERT INTO conc_w{writer_index} (id, v) VALUES ($i, $v)",
                    {"i": row, "v": 0},
                )
        base_index = controller.recovery_log.last_index

        resync_errors: List[Exception] = []
        stop = threading.Event()

        def resync_cycler() -> None:
            # Disable/enable a backend while the writers hammer away: the
            # resync takes the exclusive lock, draining and blocking the
            # table-scope writers, then hands the write path back.
            try:
                while not stop.is_set():
                    controller.disable_backend("db1")
                    time.sleep(0.002)
                    controller.enable_backend("db1")
                    time.sleep(0.002)
            except Exception as exc:  # noqa: BLE001
                resync_errors.append(exc)

        cycler = threading.Thread(target=resync_cycler, name="resync-cycler")
        cycler.start()
        wall, errors = _run_writers(
            scheduler,
            writers,
            writes_per_writer,
            lambda i: f"conc_w{i}",
        )
        stop.set()
        cycler.join(timeout=30.0)
        if errors:
            raise errors[0]
        if resync_errors:
            raise resync_errors[0]

        entries = controller.recovery_log.entries_after(base_index)
        per_table_seqs: Dict[str, List[int]] = {}
        for entry in entries:
            for table, seq in entry.table_seqs.items():
                per_table_seqs.setdefault(table, []).append(seq)
        per_table_order_ok = all(
            seqs == sorted(seqs) and len(seqs) == len(set(seqs))
            for seqs in per_table_seqs.values()
        )
        checksums = cluster_checksums(env)
        converged = all(
            len(set(copies.values())) == 1 for copies in checksums.values()
        )
        placement = controller.placement
        hosts_match = all(
            set(copies) == set(placement.hosts(table))
            for table, copies in checksums.items()
        )
        lock_stats = scheduler.lock_manager.stats()
        result.add_row(
            writes=writers * writes_per_writer,
            logged=len(entries),
            wall_s=round(wall, 4),
            replicas_converged=converged,
            per_table_order_ok=per_table_order_ok,
            hosts_match_placement=hosts_match,
            table_acquisitions=lock_stats["table_acquisitions"],
            exclusive_acquisitions=lock_stats["exclusive_acquisitions"],
            lock_waits=lock_stats["table_waits"] + lock_stats["exclusive_waits"],
        )
        result.add_note(
            "every hosting replica of every table holds identical rows after "
            "disjoint writers raced repeated disable/resync cycles, and the "
            "recovery log's per-table sequences are strictly increasing"
        )
    finally:
        env.close()
    return result


def _percentile(samples: List[float], fraction: float) -> float:
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    position = min(len(ordered) - 1, max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[position]


def run_session_scaling_experiment(
    sessions: int = 5000,
    channels: int = 8,
    baseline_sessions: int = 64,
    probe_sessions: int = 16,
    statements_per_probe: int = 5,
    worker_pool_size: int = 16,
    openers: int = 16,
) -> ExperimentResult:
    """E17 — logical sessions vs threads: multiplexed front end.

    Opens ``sessions`` logical sessions multiplexed over ``channels``
    physical channels per controller and measures how many *threads* the
    process grew by — the multiplexed front end stays at
    O(channels + worker_pool_size) while the thread-per-connection
    baseline grows one server handler (plus one client channel) per
    session, so the baseline is run at a modest ``baseline_sessions`` and
    its per-session thread cost extrapolated. A probe pool then issues
    reads across a sample of the open sessions to show the fixed worker
    pool still serves them with interactive latency (p50/p99 reported).
    """
    result = ExperimentResult(
        experiment_id="E17",
        title="Massive-concurrency front end: multiplexed sessions vs thread-per-connection",
        parameters={
            "sessions": sessions,
            "channels": channels,
            "baseline_sessions": baseline_sessions,
            "worker_pool_size": worker_pool_size,
            "probe_sessions": probe_sessions,
        },
    )

    def open_many(driver: ClusterDriverRuntime, url: str, network: Any, count: int, **options: Any) -> List[Any]:
        connections: List[Any] = [None] * count
        errors: List[Exception] = []

        def opener(start: int) -> None:
            try:
                for index in range(start, count, openers):
                    connections[index] = driver.connect(url, network=network, **options)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=opener, args=(i,)) for i in range(openers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return connections

    # -- multiplexed mode ------------------------------------------------------
    env = build_cluster(
        replicas=2,
        controllers=1,
        controller_options={"worker_pool_size": worker_pool_size},
    )
    try:
        controller = env.controllers[0]
        controller.scheduler.execute(
            "CREATE TABLE scale_t (id INTEGER NOT NULL PRIMARY KEY, v INTEGER)"
        )
        controller.scheduler.execute("INSERT INTO scale_t (id, v) VALUES (1, 1)")
        driver = ClusterDriverRuntime(name="mux-scale")
        threads_before = threading.active_count()
        opened_started = time.perf_counter()
        connections = open_many(
            driver,
            env.client_url(),
            env.network,
            sessions,
            mux_channels_per_host=channels,
        )
        open_wall = time.perf_counter() - opened_started
        mux_thread_delta = threading.active_count() - threads_before
        assert all(connection.multiplexed for connection in connections)

        # Latency probe across a sample of the open sessions.
        latencies: List[float] = []
        latency_lock = threading.Lock()
        sample_stride = max(1, sessions // (probe_sessions * statements_per_probe))

        def probe(probe_index: int) -> None:
            local: List[float] = []
            for step in range(statements_per_probe):
                connection = connections[
                    ((probe_index * statements_per_probe + step) * sample_stride) % sessions
                ]
                cursor = connection.cursor()
                started = time.perf_counter()
                cursor.execute("SELECT v FROM scale_t WHERE id = 1")
                cursor.fetchall()
                local.append((time.perf_counter() - started) * 1000.0)
            with latency_lock:
                latencies.extend(local)

        probe_threads = [
            threading.Thread(target=probe, args=(index,)) for index in range(probe_sessions)
        ]
        for thread in probe_threads:
            thread.start()
        for thread in probe_threads:
            thread.join()

        # Pipelining: one session fires a burst without per-statement
        # round-trip waits; all replies come back in order.
        pipeline_replies = connections[0].execute_pipeline(
            ["SELECT v FROM scale_t WHERE id = 1"] * 20
        )
        pipeline_ok = len(pipeline_replies) == 20 and all(
            reply["rows"] == [[1]] for reply in pipeline_replies
        )

        # Sampled after the probe load so the lazily-spawned worker pool
        # threads are visible — they stay bounded by worker_pool_size.
        front_end = controller.stats()["front_end"]
        result.add_row(
            mode="multiplexed",
            sessions=sessions,
            physical_channels=driver.mux_channel_count(),
            thread_delta=mux_thread_delta,
            threads_per_session=round(mux_thread_delta / sessions, 4),
            open_wall_s=round(open_wall, 3),
            controller_worker_threads=front_end["worker_threads"],
            controller_reader_threads=front_end["reader_threads"],
            active_sessions=controller.stats()["active_sessions"],
            probe_p50_ms=round(_percentile(latencies, 0.50), 3),
            probe_p99_ms=round(_percentile(latencies, 0.99), 3),
            pipeline_ok=pipeline_ok,
        )
        for connection in connections:
            connection.close()
    finally:
        env.close()

    # -- thread-per-connection baseline ---------------------------------------
    env = build_cluster(replicas=2, controllers=1)
    try:
        controller = env.controllers[0]
        controller.scheduler.execute(
            "CREATE TABLE scale_t (id INTEGER NOT NULL PRIMARY KEY, v INTEGER)"
        )
        controller.scheduler.execute("INSERT INTO scale_t (id, v) VALUES (1, 1)")
        driver = ClusterDriverRuntime(name="dedicated-scale")
        threads_before = threading.active_count()
        connections = open_many(
            driver,
            env.client_url(),
            env.network,
            baseline_sessions,
            multiplexing=False,
        )
        baseline_thread_delta = threading.active_count() - threads_before
        assert not any(connection.multiplexed for connection in connections)
        threads_per_session = baseline_thread_delta / baseline_sessions
        result.add_row(
            mode="thread-per-connection",
            sessions=baseline_sessions,
            physical_channels=baseline_sessions,
            thread_delta=baseline_thread_delta,
            threads_per_session=round(threads_per_session, 4),
            projected_threads_at_target=int(threads_per_session * sessions),
            active_sessions=controller.stats()["active_sessions"],
        )
        for connection in connections:
            connection.close()
    finally:
        env.close()

    result.add_note(
        f"{sessions} logical sessions ride {channels} multiplexed channels with a "
        f"bounded thread footprint; thread-per-connection needs "
        f"~{threads_per_session:.1f} threads per session "
        f"(~{int(threads_per_session * sessions)} at {sessions} sessions)"
    )
    return result


class _RoundTripConnection:
    """Synthetic backend connection charging one fixed latency per *call*
    — per statement through ``cursor.execute``, per batch through the
    native ``execute_batch`` — so N coalesced statements cost one network
    round trip, exactly the economics write batching exploits.

    Declares DB-API ``threadsafety`` level 1 (threads may not share the
    connection): the per-backend connection lock serialises concurrent
    per-statement round trips, as it would against a real single
    connection. ``counters`` is shared with the experiment so round
    trips survive reconnects."""

    threadsafety = 1

    def __init__(self, latency_s: float, counters: Dict[str, int]) -> None:
        self._latency_s = latency_s
        self._counters = counters
        self.closed = False
        self.driver_info = {"name": "roundtrip-sim"}

    def _charge(self, statements: int) -> None:
        self._counters["round_trips"] = self._counters.get("round_trips", 0) + 1
        self._counters["statements"] = self._counters.get("statements", 0) + statements
        if self._latency_s > 0:
            time.sleep(self._latency_s)

    def cursor(self) -> "_RoundTripCursor":
        return _RoundTripCursor(self)

    def execute_batch(
        self, pairs: List[Tuple[str, Dict[str, Any]]]
    ) -> List[Tuple[List[str], List[Any], int]]:
        self._charge(len(pairs))
        return [(["ok"], [[1]], 1) for _ in pairs]

    def close(self) -> None:
        self.closed = True


class _RoundTripCursor:
    description = [("ok", None, None, None, None, None, None)]
    rowcount = 1

    def __init__(self, connection: _RoundTripConnection) -> None:
        self._connection = connection

    def execute(self, sql: str, params: Optional[Dict[str, Any]] = None) -> None:
        self._connection._charge(1)

    def fetchall(self) -> List[Tuple[Any, ...]]:
        return [(1,)]

    def close(self) -> None:
        pass


def run_write_batching_experiment(
    writers: int = 8,
    writes_per_writer: int = 20,
    round_trip_ms: float = 2.0,
) -> ExperimentResult:
    """E18 — cross-session write batching: coalesced broadcast round trips.

    Concurrent disjoint-table auto-commit writers against one backend
    whose connection charges a fixed latency per round trip (see
    :class:`_RoundTripConnection`). Per-statement dispatch pays one round
    trip per write, serialised on the connection; with write batching the
    WriteBatcher coalesces whatever queued while the previous round was
    in flight into one ``execute_batch`` round trip — batching emerges
    from the round-trip latency itself, exactly as group-commit batching
    emerges from fsync latency."""
    result = ExperimentResult(
        experiment_id="E18",
        title="Cross-session write batching: one round trip per batch, not per statement",
        parameters={
            "writers": writers,
            "writes_per_writer": writes_per_writer,
            "round_trip_ms": round_trip_ms,
        },
    )
    latency_s = round_trip_ms / 1000.0
    timings: Dict[str, float] = {}
    for mode, batching in (("per-statement", False), ("batched", True)):
        counters: Dict[str, int] = {}
        backends = [Backend("sim1", lambda: _RoundTripConnection(latency_s, counters))]
        scheduler = RequestScheduler(
            backends,
            RecoveryLog(),
            broadcaster=WriteBroadcaster(parallel=True, max_workers=writers),
            lock_manager=LockManager(conflict_aware=True),
            write_batching=batching,
        )
        try:
            wall, errors = _run_writers(
                scheduler, writers, writes_per_writer, lambda i: f"wb_w{i}"
            )
            if errors:
                raise errors[0]
            writes = writers * writes_per_writer
            # The PK probe per table costs one round trip too; count only
            # the write statements when reporting coalescing.
            round_trips = counters.get("round_trips", 0)
            row: Dict[str, Any] = {
                "mode": mode,
                "writes": writes,
                "wall_s": round(wall, 4),
                "writes_per_s": round(writes / wall, 1) if wall > 0 else "n/a",
                "round_trips": round_trips,
                "writes_per_round_trip": round(writes / round_trips, 2)
                if round_trips
                else "n/a",
                "log_entries": scheduler.stats()["recovery_log_entries"],
            }
            batch_stats = scheduler.stats()["write_batching"]
            if batch_stats is not None:
                row["batch_rounds"] = batch_stats["rounds"]
                row["avg_batch_size"] = batch_stats["avg_batch_size"]
                row["max_batch_size"] = batch_stats["max_batch_size"]
            result.add_row(**row)
            timings[mode] = wall
        finally:
            scheduler.close()
    speedup = (
        timings["per-statement"] / timings["batched"] if timings.get("batched") else 0.0
    )
    result.parameters["speedup_x"] = round(speedup, 2)
    result.add_note(
        f"{writers} disjoint auto-commit writers are {speedup:.1f}x faster when "
        f"concurrent writes coalesce into batched round trips "
        f"({round_trip_ms}ms per round trip), with every reply still held until "
        "its write is applied and logged"
    )
    return result


def run_batched_divergence_experiment(
    backends: int = 4,
    writers: int = 4,
    writes_per_writer: int = 30,
    rows_per_table: int = 5,
) -> ExperimentResult:
    """E18b — the safety half of :func:`run_write_batching_experiment`:
    batched disjoint writers race disable/resync cycles on a real hash-2
    cluster (the E15b harness with write batching explicitly on); every
    write must survive into the log, every replica must converge, and
    per-table log order must stay strictly increasing."""
    result = ExperimentResult(
        experiment_id="E18b",
        title="Replica convergence under batched writers racing a resync",
        parameters={
            "backends": backends,
            "writers": writers,
            "writes_per_writer": writes_per_writer,
        },
    )
    env = build_cluster(
        replicas=backends,
        controllers=1,
        controller_options={"placement": "hash:2", "write_batching": True},
    )
    try:
        controller = env.controllers[0]
        scheduler = controller.scheduler
        for writer_index in range(writers):
            scheduler.execute(
                f"CREATE TABLE batched_w{writer_index} "
                "(id INTEGER NOT NULL PRIMARY KEY, v INTEGER)"
            )
            for row in range(rows_per_table):
                scheduler.execute(
                    f"INSERT INTO batched_w{writer_index} (id, v) VALUES ($i, $v)",
                    {"i": row, "v": 0},
                )
        base_index = controller.recovery_log.last_index

        resync_errors: List[Exception] = []
        stop = threading.Event()

        def resync_cycler() -> None:
            # The resync takes the exclusive lock, draining in-flight
            # batch rounds (their writers hold lock scopes for the whole
            # round) before replaying — racing it is the point.
            try:
                while not stop.is_set():
                    controller.disable_backend("db1")
                    time.sleep(0.002)
                    controller.enable_backend("db1")
                    time.sleep(0.002)
            except Exception as exc:  # noqa: BLE001
                resync_errors.append(exc)

        cycler = threading.Thread(target=resync_cycler, name="resync-cycler")
        cycler.start()
        wall, errors = _run_writers(
            scheduler, writers, writes_per_writer, lambda i: f"batched_w{i}"
        )
        stop.set()
        cycler.join(timeout=30.0)
        if errors:
            raise errors[0]
        if resync_errors:
            raise resync_errors[0]

        entries = controller.recovery_log.entries_after(base_index)
        per_table_seqs: Dict[str, List[int]] = {}
        for entry in entries:
            for table, seq in entry.table_seqs.items():
                per_table_seqs.setdefault(table, []).append(seq)
        per_table_order_ok = all(
            seqs == sorted(seqs) and len(seqs) == len(set(seqs))
            for seqs in per_table_seqs.values()
        )
        checksums = cluster_checksums(env)
        converged = all(
            len(set(copies.values())) == 1 for copies in checksums.values()
        )
        batch_stats = scheduler.stats()["write_batching"]
        result.add_row(
            writes=writers * writes_per_writer,
            logged=len(entries),
            all_writes_logged=len(entries) == writers * writes_per_writer,
            wall_s=round(wall, 4),
            replicas_converged=converged,
            per_table_order_ok=per_table_order_ok,
            batch_rounds=batch_stats["rounds"] if batch_stats else 0,
            batched_statements=batch_stats["batched_statements"] if batch_stats else 0,
        )
        result.add_note(
            "every hosting replica holds identical rows after batched disjoint "
            "writers raced repeated disable/resync cycles; no write was lost to "
            "a batch round and per-table log sequences stay strictly increasing"
        )
    finally:
        env.close()
    return result


def run_admission_experiment(
    clients: int = 24,
    writes_per_client: int = 15,
    worker_pool_size: int = 4,
    max_in_flight: int = 8,
) -> ExperimentResult:
    """E18c — admission control under saturation: a client herd several
    times the controller's in-flight bound hammers one table through the
    multiplexed front end. Excess EXECUTEs are refused with retryable
    ``server_busy`` (never queued unboundedly), drivers back off and
    retry, and the run must show bounded client-observed latency and zero
    lost writes — saturation degrades, it does not collapse."""
    result = ExperimentResult(
        experiment_id="E18c",
        title="Admission control: bounded latency and no lost writes at saturation",
        parameters={
            "clients": clients,
            "writes_per_client": writes_per_client,
            "worker_pool_size": worker_pool_size,
            "max_in_flight_statements": max_in_flight,
        },
    )
    env = build_cluster(
        replicas=2,
        controllers=1,
        controller_options={
            "worker_pool_size": worker_pool_size,
            "max_in_flight_statements": max_in_flight,
            "max_session_queue_depth": 4,
            "write_batching": True,
        },
    )
    try:
        controller = env.controllers[0]
        scheduler = controller.scheduler
        scheduler.execute(
            "CREATE TABLE adm (id INTEGER NOT NULL PRIMARY KEY, v INTEGER)"
        )
        for row in range(clients):
            scheduler.execute(
                "INSERT INTO adm (id, v) VALUES ($i, $v)", {"i": row, "v": -1}
            )
        base_index = controller.recovery_log.last_index
        driver = ClusterDriverRuntime(name="admission-herd")
        connections = [
            driver.connect(
                env.client_url(),
                network=env.network,
                busy_retries=10_000,
                busy_backoff_ms=1.0,
                busy_backoff_cap_ms=20.0,
            )
            for _ in range(clients)
        ]
        latencies: List[float] = []
        latency_lock = threading.Lock()
        errors: List[Exception] = []
        barrier = threading.Barrier(clients + 1)

        def client_body(client_index: int) -> None:
            connection = connections[client_index]
            cursor = connection.cursor()
            local: List[float] = []
            barrier.wait()
            try:
                for write_index in range(writes_per_client):
                    started = time.perf_counter()
                    cursor.execute(
                        "UPDATE adm SET v = $v WHERE id = $i",
                        {"v": write_index, "i": client_index},
                    )
                    local.append((time.perf_counter() - started) * 1000.0)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)
            with latency_lock:
                latencies.extend(local)

        threads = [
            threading.Thread(target=client_body, args=(index,), name=f"client-{index}")
            for index in range(clients)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - started
        if errors:
            raise errors[0]

        writes = clients * writes_per_client
        logged = len(controller.recovery_log.entries_after(base_index))
        checksums = cluster_checksums(env)
        converged = all(
            len(set(copies.values())) == 1 for copies in checksums.values()
        )
        rows_ok = True
        for engine in env.replica_engines:
            session = engine.open_session(env.database_name)
            rows = sorted(session.execute("SELECT id, v FROM adm").rows)
            if rows != [(i, writes_per_client - 1) for i in range(clients)]:
                rows_ok = False
        front_end = controller.stats()["front_end"]
        retries = sum(connection.stats()["server_busy_retries"] for connection in connections)
        backoff_s = sum(
            connection.stats()["busy_backoff_seconds"] for connection in connections
        )
        for connection in connections:
            connection.close()
        result.add_row(
            writes=writes,
            logged=logged,
            all_writes_logged=logged == writes,
            wall_s=round(wall, 4),
            p50_ms=round(_percentile(latencies, 0.50), 3),
            p99_ms=round(_percentile(latencies, 0.99), 3),
            server_busy_rejections=front_end["server_busy_rejections"],
            server_busy_retries=retries,
            busy_backoff_s=round(backoff_s, 4),
            in_flight_peak=front_end["in_flight_peak"],
            replicas_converged=converged,
            final_rows_ok=rows_ok,
        )
        result.add_note(
            f"{clients} clients against max_in_flight_statements={max_in_flight}: "
            "excess statements are refused with retryable server_busy, the "
            "in-flight peak respects the bound, and every write survives — "
            "bounded degradation instead of collapse"
        )
    finally:
        env.close()
    return result


class _RotationalFsyncStore(FileLogStore):
    """A :class:`FileLogStore` whose fsync charges a realistic latency.

    The container's filesystem acknowledges fsync in ~0.1ms — orders of
    magnitude faster than the commodity rotational disks of the paper's
    era (5–10ms) or a networked volume. Like the latency-injected
    backends above, this store re-introduces the cost the experiment is
    about, identically in both modes: a real ``os.fsync`` plus a fixed
    sleep per fsync *call* (not per entry), so batching N appends into
    one fsync saves N-1 latencies exactly as it would on real hardware.
    """

    def __init__(self, directory: str, fsync_on_append: bool, fsync_latency_s: float) -> None:
        super().__init__(directory, fsync_on_append=fsync_on_append)
        self._fsync_latency_s = fsync_latency_s

    def _fsync_handle(self) -> None:
        super()._fsync_handle()
        if self._fsync_latency_s > 0:
            time.sleep(self._fsync_latency_s)


def run_group_commit_experiment(
    writers: int = 8,
    writes_per_writer: int = 25,
    fsync_latency_ms: float = 2.0,
) -> ExperimentResult:
    """E17b — group commit: one fsync per group vs one per statement.

    Concurrent auto-commit writers on disjoint tables, recovery log on a
    fsyncing :class:`FileLogStore` with a rotational-disk fsync cost
    (see :class:`_RotationalFsyncStore`). The baseline fsyncs inside
    every append (while the scheduler's accounting lock is held, so the
    fsyncs serialise everything behind them); group commit appends
    without fsync and batches durability *outside* the lock — the first
    waiter fsyncs for everyone appended so far. Same durability
    guarantee (no reply before its entry is synced), a fraction of the
    fsyncs.
    """
    result = ExperimentResult(
        experiment_id="E17b",
        title="Group commit: batched recovery-log fsyncs under concurrent writers",
        parameters={
            "writers": writers,
            "writes_per_writer": writes_per_writer,
            "fsync_latency_ms": fsync_latency_ms,
        },
    )
    timings: Dict[str, float] = {}
    for mode in ("fsync-per-statement", "group-commit"):
        log_dir = tempfile.mkdtemp(prefix="e17b-log-")
        grouped = mode == "group-commit"
        store = _RotationalFsyncStore(
            log_dir,
            fsync_on_append=not grouped,
            fsync_latency_s=fsync_latency_ms / 1000.0,
        )
        log = RecoveryLog(store)
        group_commit = GroupCommit(log) if grouped else None
        backends = [Backend("sim1", lambda: _LatencyConnection(0.0))]
        scheduler = RequestScheduler(
            backends,
            log,
            broadcaster=WriteBroadcaster(parallel=False),
            lock_manager=LockManager(conflict_aware=True),
            group_commit=group_commit,
        )
        try:
            wall, errors = _run_writers(
                scheduler, writers, writes_per_writer, lambda i: f"gc_w{i}"
            )
            if errors:
                raise errors[0]
            writes = writers * writes_per_writer
            store_stats = store.stats()
            row: Dict[str, Any] = {
                "mode": mode,
                "writes": writes,
                "wall_s": round(wall, 4),
                "writes_per_s": round(writes / wall, 1) if wall > 0 else "n/a",
                "fsyncs": store_stats["fsyncs"],
                "writes_per_fsync": round(writes / store_stats["fsyncs"], 2)
                if store_stats["fsyncs"]
                else "n/a",
                "log_entries": store_stats["last_index"],
            }
            if group_commit is not None:
                row["fsync_groups"] = group_commit.stats()["groups"]
            result.add_row(**row)
            timings[mode] = wall
        finally:
            scheduler.close()
            log.close()
            shutil.rmtree(log_dir, ignore_errors=True)
    speedup = (
        timings["fsync-per-statement"] / timings["group-commit"]
        if timings.get("group-commit")
        else 0.0
    )
    result.parameters["speedup_x"] = round(speedup, 2)
    result.add_note(
        f"{writers} concurrent auto-commit writers are {speedup:.1f}x faster when "
        "durability is batched into group fsyncs, with every reply still held "
        "until its log entry is on disk"
    )
    return result
