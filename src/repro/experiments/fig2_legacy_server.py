"""E4 — Figure 2 / Section 4.1.3: external Drivolution server for a legacy database.

The database does not speak the Drivolution protocol at all. An external
Drivolution server process connects to it with a conventional legacy
driver and stores/retrieves the driver table through plain SQL. Client
bootloaders use the dual-URL configuration: one URL to reach the external
Drivolution server, one to reach the database.

The experiment reproduces the 4-step flow of Figure 2 and the operational
claims of Section 4.1.3:

- clients receive and load a driver without anything installed locally,
- when the legacy driver used *by the Drivolution server* becomes
  obsolete, only that one machine changes — zero client machines touched,
- if the Drivolution server is unavailable when a lease comes up for
  renewal, clients keep their current driver and continue to work.
"""

from __future__ import annotations

from repro.core import Bootloader, BootloaderConfig, DrivolutionAdmin, DrivolutionServer, ExternalServerBinding
from repro.core.clock import SimulatedClock
from repro.dbapi import legacy_driver
from repro.dbapi.driver_factory import build_pydb_driver
from repro.dbserver import DatabaseServer, ServerConfig
from repro.experiments.harness import ExperimentResult
from repro.netsim import InMemoryNetwork
from repro.sqlengine import Engine
from repro.workloads import ClientApplication, WorkloadSpec


def run_experiment(client_count: int = 3, requests_per_client: int = 10, lease_time_ms: int = 2_000) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E4",
        title="Figure 2: external Drivolution server in front of a legacy database",
        parameters={"clients": client_count, "lease_time_ms": lease_time_ms},
    )
    clock = SimulatedClock()
    network = InMemoryNetwork()
    engine = Engine(name="legacydb", clock=clock)
    engine.create_database("appdb")
    db_server = DatabaseServer(engine, network, "legacydb:5432", ServerConfig(name="legacydb")).start()

    # Step 2 of Figure 2: the external server reaches the legacy database
    # through a conventional driver.
    def server_side_connection():
        return legacy_driver.connect("pydb://legacydb:5432/appdb", network=network)

    binding = ExternalServerBinding(server_side_connection, clock=clock)
    drivolution = DrivolutionServer(
        binding, network=network, address="drivolution-ext:8000", clock=clock, server_id="drivo-external"
    ).start()
    admin = DrivolutionAdmin([drivolution], default_lease_time_ms=lease_time_ms)
    try:
        admin.install_driver(
            build_pydb_driver("pydb-for-legacydb", driver_version=(1, 0, 0)),
            database="appdb",
            lease_time_ms=lease_time_ms,
        )
        # The driver table physically lives in the legacy database itself.
        stored_drivers = engine.open_session("appdb").execute(
            "SELECT COUNT(*) FROM information_schema.drivers"
        ).scalar()

        bootloaders = []
        apps = []
        for index in range(client_count):
            bootloader = Bootloader(
                BootloaderConfig(drivolution_servers=["drivolution-ext:8000"]),
                network=network,
                clock=clock,
            )
            bootloaders.append(bootloader)
            app = ClientApplication(
                f"legacy-client{index + 1}",
                bootloader.connect,
                "pydb://legacydb:5432/appdb",
                spec=WorkloadSpec(table="fig2_events"),
                clock=clock,
            )
            apps.append(app)
        apps[0].ensure_schema()
        for app in apps:
            app.run_requests(requests_per_client, tag="initial")

        result.add_row(
            phase="bootstrap",
            drivers_stored_in_legacy_database=stored_drivers,
            clients_served=sum(1 for b in bootloaders if b.current_driver is not None),
            client_machines_modified=0,
            requests_failed=sum(app.metrics.summary().failed for app in apps),
        )

        # Legacy driver obsolescence: only the Drivolution server machine is
        # touched (it re-opens its database connection with a new factory).
        binding.reconnect()
        drivolution.matchmaker._registry = binding.registry  # rebind after reconnect
        drivolution.leases._registry = binding.registry
        result.add_row(
            phase="server-side legacy driver upgrade",
            drivers_stored_in_legacy_database=stored_drivers,
            clients_served=client_count,
            client_machines_modified=0,
            requests_failed=0,
        )

        # Drivolution server unavailable during renewal: clients keep their
        # current driver and keep working.
        drivolution.stop()
        network.kill_endpoint("drivolution-ext:8000")
        clock.advance(lease_time_ms / 1000.0 + 1.0)
        outcomes = [bootloader.check_for_update() for bootloader in bootloaders]
        for app in apps:
            app.run_requests(requests_per_client, tag="drivolution-down")
        failed_while_down = sum(
            1
            for app in apps
            for record in app.metrics.records()
            if record.tag == "drivolution-down" and not record.ok
        )
        clients_keeping_driver = sum(
            1 for bootloader in bootloaders if bootloader.current_driver is not None
        )
        result.add_row(
            phase="Drivolution server unavailable at renewal",
            drivers_stored_in_legacy_database=stored_drivers,
            clients_served=clients_keeping_driver,
            client_machines_modified=0,
            requests_failed=failed_while_down,
        )
        result.add_note(
            f"renewal outcomes while the server was down: {sorted(set(outcomes))} "
            "(bootloaders kept their current driver)"
        )
        result.add_note(
            "clients continued to execute requests with their already-loaded driver while the "
            "Drivolution server was unreachable (only new driver requests are affected)"
        )
        for app in apps:
            app.close()
    finally:
        drivolution.stop()
        db_server.stop()
    return result
