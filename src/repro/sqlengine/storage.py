"""Row storage with constraint enforcement.

A :class:`Table` stores rows as dictionaries keyed by column name and
maintains a primary-key index. Constraint checks (NOT NULL, PRIMARY KEY
uniqueness, REFERENCES existence) happen on every insert/update so the
Drivolution registry can rely on them, e.g. ``driver_permission`` rows
cannot reference a driver that was never installed.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.sqlengine.errors import ConstraintViolation
from repro.sqlengine.schema import TableSchema

Row = Dict[str, Any]


class Table:
    """One table: a schema plus its rows."""

    def __init__(self, schema: TableSchema, resolve_table: Optional[Callable[[str], Optional["Table"]]] = None) -> None:
        self.schema = schema
        self._rows: List[Row] = []
        self._pk_index: Dict[Tuple[Any, ...], int] = {}
        # Callback used to resolve foreign-key target tables by name.
        self._resolve_table = resolve_table

    # -- introspection -------------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> Iterable[Row]:
        """Iterate over live rows (deleted slots are skipped)."""
        return (row for row in self._rows if row is not None)

    def snapshot(self) -> List[Row]:
        """A deep-enough copy of all rows (rows copied, values shared)."""
        return [dict(row) for row in self._rows if row is not None]

    # -- constraint checks ---------------------------------------------------

    def _check_not_null(self, row: Row) -> None:
        for column in self.schema.columns:
            if column.not_null and row.get(column.name) is None:
                raise ConstraintViolation(
                    f"column {column.name!r} of table {self.name!r} is NOT NULL"
                )

    def _check_primary_key(self, row: Row, ignore_index: Optional[int] = None) -> None:
        pk = self.schema.primary_key_of(row)
        if pk is None:
            return
        existing = self._pk_index.get(pk)
        if existing is not None and existing != ignore_index:
            raise ConstraintViolation(
                f"duplicate primary key {pk!r} in table {self.name!r}"
            )

    def _check_foreign_keys(self, row: Row) -> None:
        if self._resolve_table is None:
            return
        for column, foreign_key in self.schema.foreign_keys():
            value = row.get(column.name)
            if value is None:
                continue
            target = self._resolve_table(foreign_key.table)
            if target is None:
                raise ConstraintViolation(
                    f"foreign key on {self.name}.{column.name} references missing table "
                    f"{foreign_key.table!r}"
                )
            if not target.has_value(foreign_key.column, value):
                raise ConstraintViolation(
                    f"foreign key violation: {self.name}.{column.name}={value!r} has no match in "
                    f"{foreign_key.table}.{foreign_key.column}"
                )

    def has_value(self, column_name: str, value: Any) -> bool:
        """Whether any live row has ``column_name == value``."""
        key = self.schema.column(column_name).name
        return any(row[key] == value for row in self.rows())

    # -- mutations -----------------------------------------------------------

    def insert(self, values: Dict[str, Any]) -> Row:
        """Insert one row given a (partial) column->value mapping."""
        row = self.schema.coerce_row(values)
        self._check_not_null(row)
        self._check_primary_key(row)
        self._check_foreign_keys(row)
        index = len(self._rows)
        self._rows.append(row)
        pk = self.schema.primary_key_of(row)
        if pk is not None:
            self._pk_index[pk] = index
        return dict(row)

    def update_at(self, index: int, new_values: Dict[str, Any]) -> Tuple[Row, Row]:
        """Apply ``new_values`` to the row at ``index``; returns (old, new)."""
        old = self._rows[index]
        if old is None:
            raise ConstraintViolation(f"row {index} of table {self.name!r} was deleted")
        updated = dict(old)
        for key, value in new_values.items():
            column = self.schema.column(key)
            updated[column.name] = column.coerce(value)
        self._check_not_null(updated)
        old_pk = self.schema.primary_key_of(old)
        new_pk = self.schema.primary_key_of(updated)
        if new_pk != old_pk:
            self._check_primary_key(updated, ignore_index=index)
        self._check_foreign_keys(updated)
        self._rows[index] = updated
        if old_pk is not None and old_pk in self._pk_index:
            del self._pk_index[old_pk]
        if new_pk is not None:
            self._pk_index[new_pk] = index
        return dict(old), dict(updated)

    def delete_at(self, index: int) -> Row:
        """Delete the row at ``index``; returns the removed row."""
        old = self._rows[index]
        if old is None:
            raise ConstraintViolation(f"row {index} of table {self.name!r} already deleted")
        self._rows[index] = None  # type: ignore[call-overload]
        pk = self.schema.primary_key_of(old)
        if pk is not None and self._pk_index.get(pk) == index:
            del self._pk_index[pk]
        return dict(old)

    def restore_at(self, index: int, row: Row) -> None:
        """Undo helper: put ``row`` back at ``index`` (used by rollback)."""
        while len(self._rows) <= index:
            self._rows.append(None)  # type: ignore[arg-type]
        self._rows[index] = dict(row)
        pk = self.schema.primary_key_of(row)
        if pk is not None:
            self._pk_index[pk] = index

    def remove_at(self, index: int) -> None:
        """Undo helper: remove the row at ``index`` without constraint checks."""
        if index < len(self._rows) and self._rows[index] is not None:
            row = self._rows[index]
            pk = self.schema.primary_key_of(row)
            if pk is not None and self._pk_index.get(pk) == index:
                del self._pk_index[pk]
            self._rows[index] = None  # type: ignore[call-overload]

    def enumerate_rows(self) -> Iterable[Tuple[int, Row]]:
        """Yield (index, row) pairs for live rows."""
        for index, row in enumerate(self._rows):
            if row is not None:
                yield index, row
