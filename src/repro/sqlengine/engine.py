"""Engine facade: databases, users and sessions.

An :class:`Engine` is what a DBMS process owns: a set of named databases,
a user/password catalog and a factory for :class:`Session` objects. The
database server (:mod:`repro.dbserver`) wraps an engine behind a wire
protocol; the Drivolution server queries it directly when embedded
in-database, or through a driver when running externally.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.sqlengine.database import Database
from repro.sqlengine.errors import SqlExecutionError, TransactionError
from repro.sqlengine.executor import ExecutionResult, Executor
from repro.sqlengine.parser import parse
from repro.sqlengine.transactions import TransactionManager


@dataclass
class ResultSet:
    """Result of one SQL statement execution."""

    columns: List[str] = field(default_factory=list)
    rows: List[Tuple[Any, ...]] = field(default_factory=list)
    rowcount: int = 0

    def first(self) -> Optional[Tuple[Any, ...]]:
        """The first row, or None if the result is empty."""
        return self.rows[0] if self.rows else None

    def scalar(self) -> Any:
        """The single value of a single-row, single-column result."""
        row = self.first()
        return row[0] if row else None

    def as_dicts(self) -> List[Dict[str, Any]]:
        """Rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    @staticmethod
    def from_execution(result: ExecutionResult) -> "ResultSet":
        return ResultSet(columns=result.columns, rows=result.rows, rowcount=result.rowcount)


class Session:
    """One client session against one database.

    Sessions are cheap; every connection from the database server gets its
    own session so its transaction state is isolated.
    """

    def __init__(self, engine: "Engine", database: Database, user: Optional[str] = None) -> None:
        self._engine = engine
        self._database = database
        self.user = user
        self._transactions = TransactionManager()
        self._executor = Executor(
            lookup_table=database.lookup_table,
            create_table=database.create_table,
            drop_table=database.drop_table,
            transactions=self._transactions,
            clock=database.clock,
        )
        self._closed = False

    @property
    def database_name(self) -> str:
        return self._database.name

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def in_transaction(self) -> bool:
        """Whether an explicit transaction is open (used by AFTER_COMMIT)."""
        return self._transactions.active

    def execute(
        self,
        sql: str,
        params: Optional[Dict[str, Any]] = None,
        positional: Sequence[Any] = (),
    ) -> ResultSet:
        """Parse and execute one SQL statement."""
        if self._closed:
            raise SqlExecutionError("session is closed")
        statement = parse(sql)
        with self._database.lock:
            result = self._executor.execute(statement, params=params, positional=positional)
        return ResultSet.from_execution(result)

    def begin(self) -> None:
        self.execute("BEGIN")

    def commit(self) -> None:
        self.execute("COMMIT")

    def rollback(self) -> None:
        self.execute("ROLLBACK")

    def abort(self) -> bool:
        """Roll back any in-flight transaction (forced termination path)."""
        with self._database.lock:
            return self._transactions.abort_if_active()

    def close(self) -> None:
        """Close the session, rolling back any open transaction."""
        if self._closed:
            return
        try:
            self.abort()
        except TransactionError:  # pragma: no cover - abort never raises this
            pass
        self._closed = True


class Engine:
    """A DBMS instance: named databases plus a user catalog."""

    def __init__(self, name: str = "repro-db", clock: Callable[[], float] = time.time) -> None:
        self.name = name
        self.clock = clock
        self._databases: Dict[str, Database] = {}
        self._users: Dict[str, str] = {}
        self._lock = threading.RLock()

    # -- databases -------------------------------------------------------------

    def create_database(self, name: str) -> Database:
        """Create (or return the existing) database called ``name``."""
        with self._lock:
            key = name.lower()
            if key not in self._databases:
                self._databases[key] = Database(name, clock=self.clock)
            return self._databases[key]

    def database(self, name: str) -> Optional[Database]:
        with self._lock:
            return self._databases.get(name.lower())

    def database_names(self) -> List[str]:
        with self._lock:
            return sorted(db.name for db in self._databases.values())

    def drop_database(self, name: str) -> bool:
        with self._lock:
            return self._databases.pop(name.lower(), None) is not None

    # -- users -------------------------------------------------------------------

    def create_user(self, user: str, password: str) -> None:
        with self._lock:
            self._users[user] = password

    def authenticate(self, user: Optional[str], password: Optional[str]) -> bool:
        """Check credentials. An engine with no users accepts anyone."""
        with self._lock:
            if not self._users:
                return True
            if user is None:
                return False
            return self._users.get(user) == password

    # -- sessions -----------------------------------------------------------------

    def open_session(self, database_name: str, user: Optional[str] = None) -> Session:
        database = self.database(database_name)
        if database is None:
            raise SqlExecutionError(f"database {database_name!r} does not exist")
        return Session(self, database, user=user)
