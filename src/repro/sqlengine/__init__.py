"""In-memory SQL database engine.

Drivolution stores drivers, permissions and leases in regular database
tables inside the ``information_schema`` and retrieves them with plain SQL
(Sample code 1 and 2 in the paper). This package provides the relational
substrate that makes that possible without any external DBMS:

- a SQL subset (CREATE TABLE / DROP TABLE / INSERT / SELECT / UPDATE /
  DELETE / BEGIN / COMMIT / ROLLBACK) with ``LIKE``, ``IS NULL``,
  ``BETWEEN``, ``IN``, ``ORDER BY``, ``LIMIT`` and ``COUNT``/``MAX``
  aggregates,
- typed columns (INTEGER, BIGINT, VARCHAR, BLOB, TIMESTAMP, BOOLEAN,
  DOUBLE) with NOT NULL, PRIMARY KEY and REFERENCES constraints,
- schema-qualified table names (``information_schema.drivers``),
- named (``$name``) and positional (``?``) statement parameters,
- per-session transactions with rollback.

The public entry points are :class:`~repro.sqlengine.engine.Engine` (a
server-side catalog of databases) and the sessions it creates.
"""

from repro.sqlengine.types import SqlType, SqlTypeError
from repro.sqlengine.schema import Column, TableSchema, SchemaError
from repro.sqlengine.database import Database
from repro.sqlengine.engine import Engine, Session, ResultSet
from repro.sqlengine.errors import (
    SqlEngineError,
    SqlParseError,
    SqlExecutionError,
    ConstraintViolation,
    TableNotFound,
    TransactionError,
)

__all__ = [
    "SqlType",
    "SqlTypeError",
    "Column",
    "TableSchema",
    "SchemaError",
    "Database",
    "Engine",
    "Session",
    "ResultSet",
    "SqlEngineError",
    "SqlParseError",
    "SqlExecutionError",
    "ConstraintViolation",
    "TableNotFound",
    "TransactionError",
]
