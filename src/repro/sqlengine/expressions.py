"""Expression AST and evaluation.

Expressions appear in WHERE clauses, UPDATE SET clauses and INSERT value
lists. Evaluation follows SQL three-valued-ish semantics in the places the
paper's queries depend on: any comparison with NULL is false (not
unknown-propagating — sufficient for the driver match-making queries,
which guard NULLs explicitly with ``IS NULL`` as in Sample code 1/2),
``LIKE`` supports ``%`` and ``_`` wildcards case-insensitively, and the
``now()`` function returns the clock supplied by the evaluation context so
experiments can use a simulated clock.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.sqlengine.errors import ColumnNotFound, SqlExecutionError


@dataclass
class EvalContext:
    """Everything an expression needs to evaluate against one row.

    ``row`` maps lowercase column names to values. ``params`` holds the
    statement parameters (named and positional). ``clock`` supplies
    ``now()`` / ``current_date``.
    """

    row: Dict[str, Any]
    params: Dict[str, Any]
    positional: Sequence[Any] = ()
    clock: Callable[[], float] = time.time
    _positional_cursor: int = 0

    def next_positional(self) -> Any:
        if self._positional_cursor >= len(self.positional):
            raise SqlExecutionError("not enough positional parameters supplied")
        value = self.positional[self._positional_cursor]
        self._positional_cursor += 1
        return value


class Expression:
    """Base class for all expression AST nodes."""

    def evaluate(self, context: EvalContext) -> Any:
        raise NotImplementedError

    def columns_referenced(self) -> List[str]:
        """Names of all columns this expression reads (for validation)."""
        return []


@dataclass
class Literal(Expression):
    value: Any

    def evaluate(self, context: EvalContext) -> Any:
        return self.value


@dataclass
class ColumnRef(Expression):
    """Reference to a column, optionally qualified (``table.column``)."""

    name: str
    table: Optional[str] = None

    def evaluate(self, context: EvalContext) -> Any:
        key = self.name.lower()
        if key not in context.row:
            raise ColumnNotFound(f"unknown column {self.name!r}")
        return context.row[key]

    def columns_referenced(self) -> List[str]:
        return [self.name.lower()]


@dataclass
class Parameter(Expression):
    """A ``$name`` named parameter or ``?`` positional parameter."""

    name: str  # "?" means positional

    def evaluate(self, context: EvalContext) -> Any:
        if self.name == "?":
            return context.next_positional()
        if self.name not in context.params:
            raise SqlExecutionError(f"missing statement parameter ${self.name}")
        return context.params[self.name]


@dataclass
class FunctionCall(Expression):
    """Supported scalar functions: ``now()``, ``current_date()``, ``lower()``, ``upper()``, ``length()``."""

    name: str
    args: List[Expression]

    def evaluate(self, context: EvalContext) -> Any:
        func = self.name.lower()
        if func in ("now", "current_timestamp", "current_date"):
            return context.clock()
        values = [arg.evaluate(context) for arg in self.args]
        if func == "lower":
            return None if values[0] is None else str(values[0]).lower()
        if func == "upper":
            return None if values[0] is None else str(values[0]).upper()
        if func == "length":
            return None if values[0] is None else len(values[0])
        raise SqlExecutionError(f"unknown function {self.name!r}")

    def columns_referenced(self) -> List[str]:
        refs: List[str] = []
        for arg in self.args:
            refs.extend(arg.columns_referenced())
        return refs


@dataclass
class UnaryOp(Expression):
    """NOT and unary minus."""

    op: str
    operand: Expression

    def evaluate(self, context: EvalContext) -> Any:
        value = self.operand.evaluate(context)
        if self.op == "NOT":
            return not _truthy(value)
        if self.op == "-":
            return None if value is None else -value
        raise SqlExecutionError(f"unknown unary operator {self.op!r}")

    def columns_referenced(self) -> List[str]:
        return self.operand.columns_referenced()


@dataclass
class BinaryOp(Expression):
    """Comparison, logical and arithmetic binary operators."""

    op: str
    left: Expression
    right: Expression

    def evaluate(self, context: EvalContext) -> Any:
        op = self.op
        if op == "AND":
            return _truthy(self.left.evaluate(context)) and _truthy(self.right.evaluate(context))
        if op == "OR":
            return _truthy(self.left.evaluate(context)) or _truthy(self.right.evaluate(context))
        left = self.left.evaluate(context)
        right = self.right.evaluate(context)
        if op in ("=", "<>", "!=", "<", "<=", ">", ">="):
            return _compare(op, left, right)
        if op in ("+", "-"):
            if left is None or right is None:
                return None
            return left + right if op == "+" else left - right
        raise SqlExecutionError(f"unknown binary operator {op!r}")

    def columns_referenced(self) -> List[str]:
        return self.left.columns_referenced() + self.right.columns_referenced()


@dataclass
class LikeOp(Expression):
    """``expr [NOT] LIKE pattern`` with ``%`` / ``_`` wildcards."""

    operand: Expression
    pattern: Expression
    negated: bool = False

    def evaluate(self, context: EvalContext) -> Any:
        value = self.operand.evaluate(context)
        pattern = self.pattern.evaluate(context)
        if value is None or pattern is None:
            return False
        matched = like_match(str(value), str(pattern))
        return not matched if self.negated else matched

    def columns_referenced(self) -> List[str]:
        return self.operand.columns_referenced() + self.pattern.columns_referenced()


@dataclass
class IsNullOp(Expression):
    """``expr IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False

    def evaluate(self, context: EvalContext) -> Any:
        is_null = self.operand.evaluate(context) is None
        return not is_null if self.negated else is_null

    def columns_referenced(self) -> List[str]:
        return self.operand.columns_referenced()


@dataclass
class BetweenOp(Expression):
    """``expr [NOT] BETWEEN low AND high`` (inclusive)."""

    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False

    def evaluate(self, context: EvalContext) -> Any:
        value = self.operand.evaluate(context)
        low = self.low.evaluate(context)
        high = self.high.evaluate(context)
        if value is None or low is None or high is None:
            return False
        result = low <= value <= high
        return not result if self.negated else result

    def columns_referenced(self) -> List[str]:
        return (
            self.operand.columns_referenced()
            + self.low.columns_referenced()
            + self.high.columns_referenced()
        )


@dataclass
class InOp(Expression):
    """``expr [NOT] IN (v1, v2, ...)``."""

    operand: Expression
    choices: List[Expression]
    negated: bool = False

    def evaluate(self, context: EvalContext) -> Any:
        value = self.operand.evaluate(context)
        if value is None:
            return False
        values = [choice.evaluate(context) for choice in self.choices]
        result = any(_compare("=", value, candidate) for candidate in values)
        return not result if self.negated else result

    def columns_referenced(self) -> List[str]:
        refs = self.operand.columns_referenced()
        for choice in self.choices:
            refs.extend(choice.columns_referenced())
        return refs


def like_match(value: str, pattern: str) -> bool:
    """SQL LIKE matching (case-insensitive, ``%`` and ``_`` wildcards)."""
    regex_parts = []
    for char in pattern:
        if char == "%":
            regex_parts.append(".*")
        elif char == "_":
            regex_parts.append(".")
        else:
            regex_parts.append(re.escape(char))
    regex = "^" + "".join(regex_parts) + "$"
    return re.match(regex, value, flags=re.IGNORECASE | re.DOTALL) is not None


def _truthy(value: Any) -> bool:
    if value is None:
        return False
    return bool(value)


def _compare(op: str, left: Any, right: Any) -> bool:
    if left is None or right is None:
        return False
    # Allow numeric cross-type comparison but avoid comparing str to int.
    if isinstance(left, bool) or isinstance(right, bool):
        left, right = bool(left), bool(right)
    elif isinstance(left, (int, float)) and isinstance(right, (int, float)):
        pass
    elif type(left) is not type(right):
        if isinstance(left, str) and isinstance(right, (int, float)):
            right = str(right)
        elif isinstance(right, str) and isinstance(left, (int, float)):
            left = str(left)
        elif isinstance(left, bytes) and isinstance(right, str):
            right = right.encode("utf-8")
        elif isinstance(right, bytes) and isinstance(left, str):
            left = left.encode("utf-8")
    if op == "=":
        return left == right
    if op in ("<>", "!="):
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise SqlExecutionError(f"unknown comparison operator {op!r}")  # pragma: no cover
