"""Recursive-descent parser for the SQL subset.

Grammar (informal)::

    statement   := create | drop | insert | select | update | delete
                 | BEGIN | COMMIT | ROLLBACK
    create      := CREATE TABLE [IF NOT EXISTS] table '(' column_def (',' column_def)* ')'
    column_def  := name type [NOT NULL] [PRIMARY KEY] [REFERENCES table '(' name ')']
    insert      := INSERT INTO table ['(' names ')'] VALUES tuple (',' tuple)*
    select      := SELECT items FROM table [WHERE expr] [ORDER BY ...] [LIMIT n]
    update      := UPDATE table SET name '=' expr (',' ...)* [WHERE expr]
    delete      := DELETE FROM table [WHERE expr]
    expr        := or_expr with LIKE / IS NULL / BETWEEN / IN / comparisons

The expression grammar intentionally covers exactly what the paper's
Sample code 1 and 2 need (nested parentheses, LIKE, IS NULL, BETWEEN,
``now()``), plus the operators the rest of the repro uses.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.sqlengine.errors import SqlParseError
from repro.sqlengine.expressions import (
    BetweenOp,
    BinaryOp,
    ColumnRef,
    Expression,
    FunctionCall,
    InOp,
    IsNullOp,
    LikeOp,
    Literal,
    Parameter,
    UnaryOp,
)
from repro.sqlengine.schema import Column, ForeignKey, TableSchema
from repro.sqlengine.statements import (
    Begin,
    Commit,
    CreateTable,
    Delete,
    DropTable,
    Insert,
    OrderItem,
    Rollback,
    Select,
    SelectItem,
    Statement,
    TableName,
    Update,
)
from repro.sqlengine.tokenizer import Token, tokenize
from repro.sqlengine.types import SqlType

_AGGREGATES = {"COUNT", "MAX", "MIN", "SUM", "AVG"}


class _Parser:
    def __init__(self, tokens: List[Token], sql: str) -> None:
        self._tokens = tokens
        self._sql = sql
        self._index = 0

    # -- token helpers -----------------------------------------------------

    def _peek(self, offset: int = 0) -> Optional[Token]:
        index = self._index + offset
        return self._tokens[index] if index < len(self._tokens) else None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise SqlParseError(f"unexpected end of statement: {self._sql!r}")
        self._index += 1
        return token

    def _is_keyword(self, keyword: str, offset: int = 0) -> bool:
        token = self._peek(offset)
        return token is not None and token.kind == "IDENT" and token.value.upper() == keyword

    def _accept_keyword(self, keyword: str) -> bool:
        if self._is_keyword(keyword):
            self._index += 1
            return True
        return False

    def _expect_keyword(self, keyword: str) -> None:
        if not self._accept_keyword(keyword):
            token = self._peek()
            raise SqlParseError(f"expected {keyword}, got {token.value if token else 'end of input'!r}")

    def _accept_op(self, op: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == "OP" and token.value == op:
            self._index += 1
            return True
        return False

    def _expect_op(self, op: str) -> None:
        if not self._accept_op(op):
            token = self._peek()
            raise SqlParseError(f"expected {op!r}, got {token.value if token else 'end of input'!r}")

    def _expect_ident(self) -> str:
        token = self._next()
        if token.kind != "IDENT":
            raise SqlParseError(f"expected identifier, got {token.value!r}")
        return str(token.value)

    def _at_end(self) -> bool:
        token = self._peek()
        if token is None:
            return True
        return token.kind == "OP" and token.value == ";" and self._peek(1) is None

    # -- statements --------------------------------------------------------

    def parse_statement(self) -> Statement:
        if self._is_keyword("CREATE"):
            return self._parse_create()
        if self._is_keyword("DROP"):
            return self._parse_drop()
        if self._is_keyword("INSERT"):
            return self._parse_insert()
        if self._is_keyword("SELECT"):
            return self._parse_select()
        if self._is_keyword("UPDATE"):
            return self._parse_update()
        if self._is_keyword("DELETE"):
            return self._parse_delete()
        if self._accept_keyword("BEGIN") or (
            self._is_keyword("START") and self._is_keyword("TRANSACTION", 1)
        ):
            if self._is_keyword("TRANSACTION"):
                self._index += 1
            elif self._is_keyword("START"):
                self._index += 2
            self._finish()
            return Begin()
        if self._accept_keyword("COMMIT"):
            self._finish()
            return Commit()
        if self._accept_keyword("ROLLBACK"):
            self._finish()
            return Rollback()
        token = self._peek()
        raise SqlParseError(f"unsupported statement starting with {token.value if token else ''!r}")

    def _finish(self) -> None:
        self._accept_op(";")
        token = self._peek()
        if token is not None:
            raise SqlParseError(f"unexpected trailing token {token.value!r}")

    def _parse_table_name(self) -> TableName:
        first = self._expect_ident()
        if self._accept_op("."):
            second = self._expect_ident()
            return TableName(name=second, schema=first)
        return TableName(name=first)

    def _parse_create(self) -> CreateTable:
        self._expect_keyword("CREATE")
        self._expect_keyword("TABLE")
        if_not_exists = False
        if self._accept_keyword("IF"):
            self._expect_keyword("NOT")
            self._expect_keyword("EXISTS")
            if_not_exists = True
        table = self._parse_table_name()
        self._expect_op("(")
        columns: List[Column] = []
        while True:
            columns.append(self._parse_column_def())
            if self._accept_op(","):
                continue
            break
        self._expect_op(")")
        self._finish()
        schema = TableSchema(name=table.qualified, columns=columns)
        return CreateTable(table=table, schema=schema, if_not_exists=if_not_exists)

    def _parse_column_def(self) -> Column:
        name = self._expect_ident()
        type_name = self._expect_ident()
        sql_type = SqlType.from_name(type_name)
        # Optional length spec, e.g. VARCHAR(255): parsed and ignored.
        if self._accept_op("("):
            self._next()
            self._expect_op(")")
        not_null = False
        primary_key = False
        references: Optional[ForeignKey] = None
        while True:
            if self._accept_keyword("NOT"):
                self._expect_keyword("NULL")
                not_null = True
                continue
            if self._accept_keyword("PRIMARY"):
                self._expect_keyword("KEY")
                primary_key = True
                not_null = True
                continue
            if self._accept_keyword("REFERENCES"):
                ref_table = self._parse_table_name()
                self._expect_op("(")
                ref_column = self._expect_ident()
                self._expect_op(")")
                references = ForeignKey(table=ref_table.qualified, column=ref_column)
                continue
            break
        return Column(
            name=name,
            sql_type=sql_type,
            not_null=not_null,
            primary_key=primary_key,
            references=references,
        )

    def _parse_drop(self) -> DropTable:
        self._expect_keyword("DROP")
        self._expect_keyword("TABLE")
        if_exists = False
        if self._accept_keyword("IF"):
            self._expect_keyword("EXISTS")
            if_exists = True
        table = self._parse_table_name()
        self._finish()
        return DropTable(table=table, if_exists=if_exists)

    def _parse_insert(self) -> Insert:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._parse_table_name()
        columns: List[str] = []
        if self._accept_op("("):
            while True:
                columns.append(self._expect_ident())
                if self._accept_op(","):
                    continue
                break
            self._expect_op(")")
        self._expect_keyword("VALUES")
        rows: List[List[Expression]] = []
        while True:
            self._expect_op("(")
            row: List[Expression] = []
            while True:
                row.append(self._parse_expression())
                if self._accept_op(","):
                    continue
                break
            self._expect_op(")")
            rows.append(row)
            if self._accept_op(","):
                continue
            break
        self._finish()
        return Insert(table=table, columns=columns, rows=rows)

    def _parse_select(self) -> Select:
        self._expect_keyword("SELECT")
        items: List[SelectItem] = []
        while True:
            items.append(self._parse_select_item())
            if self._accept_op(","):
                continue
            break
        table: Optional[TableName] = None
        if self._accept_keyword("FROM"):
            table = self._parse_table_name()
        where: Optional[Expression] = None
        if self._accept_keyword("WHERE"):
            where = self._parse_expression()
        order_by: List[OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            while True:
                expression = self._parse_expression()
                descending = False
                if self._accept_keyword("DESC"):
                    descending = True
                elif self._accept_keyword("ASC"):
                    descending = False
                order_by.append(OrderItem(expression=expression, descending=descending))
                if self._accept_op(","):
                    continue
                break
        limit: Optional[int] = None
        if self._accept_keyword("LIMIT"):
            token = self._next()
            if token.kind != "NUMBER" or not isinstance(token.value, int):
                raise SqlParseError("LIMIT requires an integer literal")
            limit = token.value
        self._finish()
        return Select(table=table, items=items, where=where, order_by=order_by, limit=limit)

    def _parse_select_item(self) -> SelectItem:
        if self._accept_op("*"):
            return SelectItem(star=True)
        token = self._peek()
        if (
            token is not None
            and token.kind == "IDENT"
            and token.value.upper() in _AGGREGATES
            and self._peek(1) is not None
            and self._peek(1).kind == "OP"
            and self._peek(1).value == "("
        ):
            aggregate = self._next().value.upper()
            self._expect_op("(")
            argument: Optional[Expression] = None
            if not self._accept_op("*"):
                argument = self._parse_expression()
            else:
                pass
            self._expect_op(")")
            alias = self._parse_alias()
            return SelectItem(expression=argument, alias=alias, aggregate=aggregate)
        expression = self._parse_expression()
        alias = self._parse_alias()
        return SelectItem(expression=expression, alias=alias)

    def _parse_alias(self) -> Optional[str]:
        if self._accept_keyword("AS"):
            return self._expect_ident()
        return None

    def _parse_update(self) -> Update:
        self._expect_keyword("UPDATE")
        table = self._parse_table_name()
        self._expect_keyword("SET")
        assignments: List[Tuple[str, Expression]] = []
        while True:
            column = self._expect_ident()
            self._expect_op("=")
            assignments.append((column, self._parse_expression()))
            if self._accept_op(","):
                continue
            break
        where: Optional[Expression] = None
        if self._accept_keyword("WHERE"):
            where = self._parse_expression()
        self._finish()
        return Update(table=table, assignments=assignments, where=where)

    def _parse_delete(self) -> Delete:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._parse_table_name()
        where: Optional[Expression] = None
        if self._accept_keyword("WHERE"):
            where = self._parse_expression()
        self._finish()
        return Delete(table=table, where=where)

    # -- expressions ---------------------------------------------------------

    def _parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self._accept_keyword("OR"):
            right = self._parse_and()
            left = BinaryOp("OR", left, right)
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_not()
        while self._accept_keyword("AND"):
            right = self._parse_not()
            left = BinaryOp("AND", left, right)
        return left

    def _parse_not(self) -> Expression:
        if self._accept_keyword("NOT"):
            return UnaryOp("NOT", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expression:
        left = self._parse_additive()
        if self._accept_keyword("IS"):
            negated = bool(self._accept_keyword("NOT"))
            self._expect_keyword("NULL")
            return IsNullOp(operand=left, negated=negated)
        negated = False
        if self._is_keyword("NOT") and (
            self._is_keyword("LIKE", 1) or self._is_keyword("BETWEEN", 1) or self._is_keyword("IN", 1)
        ):
            self._index += 1
            negated = True
        if self._accept_keyword("LIKE"):
            pattern = self._parse_additive()
            return LikeOp(operand=left, pattern=pattern, negated=negated)
        if self._accept_keyword("BETWEEN"):
            low = self._parse_additive()
            self._expect_keyword("AND")
            high = self._parse_additive()
            return BetweenOp(operand=left, low=low, high=high, negated=negated)
        if self._accept_keyword("IN"):
            self._expect_op("(")
            choices: List[Expression] = []
            while True:
                choices.append(self._parse_expression())
                if self._accept_op(","):
                    continue
                break
            self._expect_op(")")
            return InOp(operand=left, choices=choices, negated=negated)
        for op in ("<>", "!=", "<=", ">=", "=", "<", ">"):
            if self._accept_op(op):
                right = self._parse_additive()
                return BinaryOp(op, left, right)
        return left

    def _parse_additive(self) -> Expression:
        left = self._parse_primary()
        while True:
            token = self._peek()
            if token is not None and token.kind == "OP" and token.value in ("+", "-"):
                self._index += 1
                right = self._parse_primary()
                left = BinaryOp(str(token.value), left, right)
                continue
            break
        return left

    def _parse_primary(self) -> Expression:
        token = self._peek()
        if token is None:
            raise SqlParseError("unexpected end of expression")
        if token.kind == "OP" and token.value == "(":
            self._index += 1
            inner = self._parse_expression()
            self._expect_op(")")
            return inner
        if token.kind == "NUMBER":
            self._index += 1
            return Literal(token.value)
        if token.kind == "STRING":
            self._index += 1
            return Literal(token.value)
        if token.kind == "PARAM":
            self._index += 1
            return Parameter(str(token.value))
        if token.kind == "OP" and token.value == "-":
            self._index += 1
            return UnaryOp("-", self._parse_primary())
        if token.kind == "IDENT":
            upper = token.value.upper()
            if upper == "NULL":
                self._index += 1
                return Literal(None)
            if upper == "TRUE":
                self._index += 1
                return Literal(True)
            if upper == "FALSE":
                self._index += 1
                return Literal(False)
            if upper in ("CURRENT_DATE", "CURRENT_TIMESTAMP") and not (
                self._peek(1) is not None and self._peek(1).kind == "OP" and self._peek(1).value == "("
            ):
                self._index += 1
                return FunctionCall(name=upper.lower(), args=[])
            # Function call?
            if (
                self._peek(1) is not None
                and self._peek(1).kind == "OP"
                and self._peek(1).value == "("
            ):
                name = self._expect_ident()
                self._expect_op("(")
                args: List[Expression] = []
                if not self._accept_op(")"):
                    while True:
                        args.append(self._parse_expression())
                        if self._accept_op(","):
                            continue
                        break
                    self._expect_op(")")
                return FunctionCall(name=name, args=args)
            # Column reference, possibly qualified.
            name = self._expect_ident()
            if self._accept_op("."):
                column = self._expect_ident()
                return ColumnRef(name=column, table=name)
            return ColumnRef(name=name)
        raise SqlParseError(f"unexpected token {token.value!r} in expression")


def parse(sql: str) -> Statement:
    """Parse one SQL statement into its AST."""
    tokens = tokenize(sql)
    if not tokens:
        raise SqlParseError("empty statement")
    parser = _Parser(tokens, sql)
    return parser.parse_statement()
