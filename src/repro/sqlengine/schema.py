"""Table schema: columns and constraints.

Schemas support the constraints the paper's Table 1 and Table 2 rely on:
``NOT NULL``, ``PRIMARY KEY`` and ``REFERENCES table(column)`` (the
``driver_permission.driver_id`` foreign key into ``drivers.driver_id``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.sqlengine.errors import SqlEngineError
from repro.sqlengine.types import SqlType, coerce_value


class SchemaError(SqlEngineError):
    """Invalid table or column definition."""


@dataclass(frozen=True)
class ForeignKey:
    """A REFERENCES constraint pointing at ``table(column)``."""

    table: str
    column: str


@dataclass(frozen=True)
class Column:
    """One column of a table schema."""

    name: str
    sql_type: SqlType
    not_null: bool = False
    primary_key: bool = False
    references: Optional[ForeignKey] = None

    def coerce(self, value: Any) -> Any:
        """Coerce a value to this column's type (see :func:`coerce_value`)."""
        return coerce_value(value, self.sql_type)


@dataclass
class TableSchema:
    """Ordered collection of columns defining one table."""

    name: str
    columns: List[Column] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.columns:
            raise SchemaError(f"table {self.name!r} must have at least one column")
        seen = set()
        for column in self.columns:
            lowered = column.name.lower()
            if lowered in seen:
                raise SchemaError(f"duplicate column {column.name!r} in table {self.name!r}")
            seen.add(lowered)

    @property
    def column_names(self) -> List[str]:
        return [column.name for column in self.columns]

    @property
    def primary_key_columns(self) -> List[str]:
        return [column.name for column in self.columns if column.primary_key]

    def column(self, name: str) -> Column:
        """Look up a column by case-insensitive name."""
        lowered = name.lower()
        for column in self.columns:
            if column.name.lower() == lowered:
                return column
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        lowered = name.lower()
        return any(column.name.lower() == lowered for column in self.columns)

    def column_index(self, name: str) -> int:
        lowered = name.lower()
        for index, column in enumerate(self.columns):
            if column.name.lower() == lowered:
                return index
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    def coerce_row(self, values: Dict[str, Any]) -> Dict[str, Any]:
        """Build a full row dict from a (possibly partial) values mapping.

        Missing columns default to NULL; unknown columns raise.
        """
        lowered_values = {key.lower(): value for key, value in values.items()}
        known = {column.name.lower() for column in self.columns}
        for key in lowered_values:
            if key not in known:
                raise SchemaError(f"table {self.name!r} has no column {key!r}")
        row: Dict[str, Any] = {}
        for column in self.columns:
            raw = lowered_values.get(column.name.lower())
            row[column.name] = column.coerce(raw)
        return row

    def primary_key_of(self, row: Dict[str, Any]) -> Optional[Tuple[Any, ...]]:
        """Extract the primary key tuple of ``row`` (None if no PK)."""
        pk_columns = self.primary_key_columns
        if not pk_columns:
            return None
        return tuple(row[name] for name in pk_columns)

    def foreign_keys(self) -> Sequence[Tuple[Column, ForeignKey]]:
        return [(column, column.references) for column in self.columns if column.references]
