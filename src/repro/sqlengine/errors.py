"""SQL engine exception hierarchy."""

from repro.errors import SqlError


class SqlEngineError(SqlError):
    """Base class for all SQL engine errors."""


class SqlParseError(SqlEngineError):
    """The SQL text could not be tokenized or parsed."""


class SqlExecutionError(SqlEngineError):
    """A parsed statement could not be executed."""


class TableNotFound(SqlExecutionError):
    """The referenced table does not exist."""


class ColumnNotFound(SqlExecutionError):
    """The referenced column does not exist."""


class ConstraintViolation(SqlExecutionError):
    """A NOT NULL, PRIMARY KEY or REFERENCES constraint was violated."""


class TransactionError(SqlExecutionError):
    """Invalid transaction usage (e.g. COMMIT without BEGIN)."""
