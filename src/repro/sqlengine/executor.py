"""Statement execution against a :class:`~repro.sqlengine.database.Database`."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.sqlengine.errors import SqlExecutionError, TableNotFound
from repro.sqlengine.expressions import EvalContext, Expression
from repro.sqlengine.statements import (
    Begin,
    Commit,
    CreateTable,
    Delete,
    DropTable,
    Insert,
    Rollback,
    Select,
    SelectItem,
    Statement,
    Update,
)
from repro.sqlengine.storage import Row, Table
from repro.sqlengine.transactions import Transaction, TransactionManager


@dataclass
class ExecutionResult:
    """Result of executing one statement.

    ``rows`` is the list of result tuples (SELECT only), ``columns`` the
    projected column names, ``rowcount`` the number of affected/matched
    rows.
    """

    columns: List[str] = field(default_factory=list)
    rows: List[Tuple[Any, ...]] = field(default_factory=list)
    rowcount: int = 0


class Executor:
    """Executes parsed statements for one session.

    ``lookup_table`` resolves (possibly schema-qualified) table names to
    :class:`Table` objects; ``create_table`` / ``drop_table`` mutate the
    catalog. The executor is deliberately session-scoped because DML
    participates in the session's transaction.
    """

    def __init__(
        self,
        lookup_table: Callable[[str], Optional[Table]],
        create_table: Callable[[str, Table], None],
        drop_table: Callable[[str], bool],
        transactions: TransactionManager,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self._lookup_table = lookup_table
        self._create_table = create_table
        self._drop_table = drop_table
        self._transactions = transactions
        self._clock = clock

    # -- public ---------------------------------------------------------------

    def execute(
        self,
        statement: Statement,
        params: Optional[Dict[str, Any]] = None,
        positional: Sequence[Any] = (),
    ) -> ExecutionResult:
        params = params or {}
        if isinstance(statement, CreateTable):
            return self._execute_create(statement)
        if isinstance(statement, DropTable):
            return self._execute_drop(statement)
        if isinstance(statement, Insert):
            return self._execute_insert(statement, params, positional)
        if isinstance(statement, Select):
            return self._execute_select(statement, params, positional)
        if isinstance(statement, Update):
            return self._execute_update(statement, params, positional)
        if isinstance(statement, Delete):
            return self._execute_delete(statement, params, positional)
        if isinstance(statement, Begin):
            self._transactions.begin()
            return ExecutionResult()
        if isinstance(statement, Commit):
            self._transactions.commit()
            return ExecutionResult()
        if isinstance(statement, Rollback):
            self._transactions.rollback()
            return ExecutionResult()
        raise SqlExecutionError(f"unsupported statement type {type(statement).__name__}")

    # -- helpers ----------------------------------------------------------------

    def _require_table(self, key: str) -> Table:
        table = self._lookup_table(key)
        if table is None:
            raise TableNotFound(f"table {key!r} does not exist")
        return table

    def _context(
        self, row: Dict[str, Any], params: Dict[str, Any], positional: Sequence[Any]
    ) -> EvalContext:
        return EvalContext(
            row={key.lower(): value for key, value in row.items()},
            params=params,
            positional=positional,
            clock=self._clock,
        )

    def _transaction(self) -> Optional[Transaction]:
        return self._transactions.current

    # -- DDL ---------------------------------------------------------------------

    def _execute_create(self, statement: CreateTable) -> ExecutionResult:
        key = statement.table.key()
        existing = self._lookup_table(key)
        if existing is not None:
            if statement.if_not_exists:
                return ExecutionResult()
            raise SqlExecutionError(f"table {statement.table.qualified!r} already exists")
        table = Table(statement.schema, resolve_table=lambda name: self._lookup_table(name.lower()))
        self._create_table(key, table)
        return ExecutionResult()

    def _execute_drop(self, statement: DropTable) -> ExecutionResult:
        key = statement.table.key()
        dropped = self._drop_table(key)
        if not dropped and not statement.if_exists:
            raise TableNotFound(f"table {statement.table.qualified!r} does not exist")
        return ExecutionResult()

    # -- DML ---------------------------------------------------------------------

    def _execute_insert(
        self, statement: Insert, params: Dict[str, Any], positional: Sequence[Any]
    ) -> ExecutionResult:
        table = self._require_table(statement.table.key())
        columns = statement.columns or table.schema.column_names
        inserted = 0
        context_row: Dict[str, Any] = {}
        shared_context = self._context(context_row, params, positional)
        for row_exprs in statement.rows:
            if len(row_exprs) != len(columns):
                raise SqlExecutionError(
                    f"INSERT column/value count mismatch: {len(columns)} columns, "
                    f"{len(row_exprs)} values"
                )
            values = {
                column: expression.evaluate(shared_context)
                for column, expression in zip(columns, row_exprs)
            }
            table.insert(values)
            index = len(table._rows) - 1
            transaction = self._transaction()
            if transaction is not None:
                transaction.record_insert(table, index)
            inserted += 1
        return ExecutionResult(rowcount=inserted)

    def _matching_rows(
        self,
        table: Table,
        where: Optional[Expression],
        params: Dict[str, Any],
        positional: Sequence[Any],
    ) -> List[Tuple[int, Row]]:
        matches: List[Tuple[int, Row]] = []
        for index, row in table.enumerate_rows():
            if where is None:
                matches.append((index, row))
                continue
            context = self._context(row, params, positional)
            if where.evaluate(context):
                matches.append((index, row))
        return matches

    def _execute_select(
        self, statement: Select, params: Dict[str, Any], positional: Sequence[Any]
    ) -> ExecutionResult:
        if statement.table is None:
            # SELECT without FROM: evaluate expressions against an empty row.
            context = self._context({}, params, positional)
            columns = []
            values = []
            for position, item in enumerate(statement.items):
                if item.star or item.expression is None:
                    raise SqlExecutionError("SELECT * requires a FROM clause")
                columns.append(item.alias or f"col{position}")
                values.append(item.expression.evaluate(context))
            return ExecutionResult(columns=columns, rows=[tuple(values)], rowcount=1)

        table = self._require_table(statement.table.key())
        matches = self._matching_rows(table, statement.where, params, positional)

        aggregates = [item for item in statement.items if item.aggregate]
        if aggregates:
            if len(aggregates) != len(statement.items):
                raise SqlExecutionError("cannot mix aggregate and non-aggregate select items")
            return self._execute_aggregates(statement.items, table, matches, params, positional)

        if statement.order_by:
            matches = self._apply_order(matches, statement, params, positional)
        if statement.limit is not None:
            matches = matches[: statement.limit]

        columns = self._projection_columns(statement.items, table)
        rows: List[Tuple[Any, ...]] = []
        for _index, row in matches:
            context = self._context(row, params, positional)
            projected: List[Any] = []
            for item in statement.items:
                if item.star:
                    projected.extend(row[name] for name in table.schema.column_names)
                else:
                    assert item.expression is not None
                    projected.append(item.expression.evaluate(context))
            rows.append(tuple(projected))
        return ExecutionResult(columns=columns, rows=rows, rowcount=len(rows))

    def _apply_order(
        self,
        matches: List[Tuple[int, Row]],
        statement: Select,
        params: Dict[str, Any],
        positional: Sequence[Any],
    ) -> List[Tuple[int, Row]]:
        def sort_key(entry: Tuple[int, Row]):
            _index, row = entry
            context = self._context(row, params, positional)
            keys = []
            for order_item in statement.order_by:
                value = order_item.expression.evaluate(context)
                # Sort NULLs last regardless of direction, then by value.
                keys.append((value is None, value if value is not None else 0))
            return tuple(keys)

        ordered = matches
        # Stable sort per ORDER BY item, applied right-to-left so the
        # leftmost item has the highest priority and DESC flags apply per item.
        for position in range(len(statement.order_by) - 1, -1, -1):
            order_item = statement.order_by[position]

            def item_key(entry: Tuple[int, Row], _item=order_item):
                _index, row = entry
                context = self._context(row, params, positional)
                value = _item.expression.evaluate(context)
                return (value is None, value if value is not None else 0)

            ordered = sorted(ordered, key=item_key, reverse=order_item.descending)
        return ordered

    def _execute_aggregates(
        self,
        items: List[SelectItem],
        table: Table,
        matches: List[Tuple[int, Row]],
        params: Dict[str, Any],
        positional: Sequence[Any],
    ) -> ExecutionResult:
        columns: List[str] = []
        values: List[Any] = []
        for position, item in enumerate(items):
            name = item.alias or f"{item.aggregate.lower()}{position}"
            columns.append(name)
            aggregate = item.aggregate
            if aggregate == "COUNT" and item.expression is None:
                values.append(len(matches))
                continue
            samples: List[Any] = []
            for _index, row in matches:
                context = self._context(row, params, positional)
                if item.expression is None:
                    samples.append(1)
                else:
                    value = item.expression.evaluate(context)
                    if value is not None:
                        samples.append(value)
            if aggregate == "COUNT":
                values.append(len(samples))
            elif aggregate == "MAX":
                values.append(max(samples) if samples else None)
            elif aggregate == "MIN":
                values.append(min(samples) if samples else None)
            elif aggregate == "SUM":
                values.append(sum(samples) if samples else None)
            elif aggregate == "AVG":
                values.append(sum(samples) / len(samples) if samples else None)
            else:  # pragma: no cover - parser restricts aggregates
                raise SqlExecutionError(f"unsupported aggregate {aggregate!r}")
        return ExecutionResult(columns=columns, rows=[tuple(values)], rowcount=1)

    def _projection_columns(self, items: List[SelectItem], table: Table) -> List[str]:
        columns: List[str] = []
        for position, item in enumerate(items):
            if item.star:
                columns.extend(table.schema.column_names)
            elif item.alias:
                columns.append(item.alias)
            else:
                expression = item.expression
                from repro.sqlengine.expressions import ColumnRef

                if isinstance(expression, ColumnRef):
                    columns.append(expression.name)
                else:
                    columns.append(f"col{position}")
        return columns

    def _execute_update(
        self, statement: Update, params: Dict[str, Any], positional: Sequence[Any]
    ) -> ExecutionResult:
        table = self._require_table(statement.table.key())
        matches = self._matching_rows(table, statement.where, params, positional)
        updated = 0
        for index, row in matches:
            context = self._context(row, params, positional)
            new_values = {
                column: expression.evaluate(context)
                for column, expression in statement.assignments
            }
            before, _after = table.update_at(index, new_values)
            transaction = self._transaction()
            if transaction is not None:
                transaction.record_update(table, index, before)
            updated += 1
        return ExecutionResult(rowcount=updated)

    def _execute_delete(
        self, statement: Delete, params: Dict[str, Any], positional: Sequence[Any]
    ) -> ExecutionResult:
        table = self._require_table(statement.table.key())
        matches = self._matching_rows(table, statement.where, params, positional)
        deleted = 0
        for index, _row in matches:
            before = table.delete_at(index)
            transaction = self._transaction()
            if transaction is not None:
                transaction.record_delete(table, index, before)
            deleted += 1
        return ExecutionResult(rowcount=deleted)
