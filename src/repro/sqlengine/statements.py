"""Parsed statement dataclasses produced by the parser and consumed by the executor."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sqlengine.expressions import Expression
from repro.sqlengine.schema import TableSchema


@dataclass(frozen=True)
class TableName:
    """A possibly schema-qualified table name (``information_schema.drivers``)."""

    name: str
    schema: Optional[str] = None

    @property
    def qualified(self) -> str:
        return f"{self.schema}.{self.name}" if self.schema else self.name

    def key(self) -> str:
        """Canonical lowercase lookup key."""
        return self.qualified.lower()


@dataclass
class Statement:
    """Base class for all parsed statements."""


@dataclass
class CreateTable(Statement):
    table: TableName
    schema: TableSchema
    if_not_exists: bool = False


@dataclass
class DropTable(Statement):
    table: TableName
    if_exists: bool = False


@dataclass
class Insert(Statement):
    table: TableName
    columns: List[str]
    rows: List[List[Expression]]


@dataclass
class SelectItem:
    """One projection item: an expression with an optional alias.

    ``star`` marks ``SELECT *``; ``aggregate`` is ``COUNT``/``MAX``/``MIN``
    with ``expression`` as the argument (None for ``COUNT(*)``).
    """

    expression: Optional[Expression] = None
    alias: Optional[str] = None
    star: bool = False
    aggregate: Optional[str] = None


@dataclass
class OrderItem:
    expression: Expression
    descending: bool = False


@dataclass
class Select(Statement):
    table: Optional[TableName]
    items: List[SelectItem] = field(default_factory=list)
    where: Optional[Expression] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None


@dataclass
class Update(Statement):
    table: TableName
    assignments: List[Tuple[str, Expression]] = field(default_factory=list)
    where: Optional[Expression] = None


@dataclass
class Delete(Statement):
    table: TableName
    where: Optional[Expression] = None


@dataclass
class Begin(Statement):
    pass


@dataclass
class Commit(Statement):
    pass


@dataclass
class Rollback(Statement):
    pass
