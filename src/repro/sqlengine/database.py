"""A single database: a catalog of tables plus its ``information_schema``."""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional

from repro.sqlengine.errors import SqlExecutionError
from repro.sqlengine.schema import Column, TableSchema
from repro.sqlengine.storage import Table
from repro.sqlengine.types import SqlType


class Database:
    """Named catalog of tables.

    Tables are stored under a canonical lowercase key which may be
    schema-qualified (``information_schema.drivers``). Unqualified names
    resolve directly. The catalog also exposes a built-in
    ``information_schema.tables`` view-like table that is refreshed on
    demand so clients can introspect the catalog through plain SQL.
    """

    def __init__(self, name: str, clock: Callable[[], float] = time.time) -> None:
        self.name = name
        self.clock = clock
        self._tables: Dict[str, Table] = {}
        self._lock = threading.RLock()
        self._create_tables_catalog()

    # -- catalog -------------------------------------------------------------

    #: Built-in catalogs, refreshed on demand and hidden from themselves.
    _BUILTIN_CATALOGS = ("information_schema.tables", "information_schema.columns")

    def _create_tables_catalog(self) -> None:
        schema = TableSchema(
            name="information_schema.tables",
            columns=[
                Column("table_name", SqlType.VARCHAR, not_null=True),
                Column("table_schema", SqlType.VARCHAR),
            ],
        )
        self._tables["information_schema.tables"] = Table(schema)
        columns_schema = TableSchema(
            name="information_schema.columns",
            columns=[
                Column("table_name", SqlType.VARCHAR, not_null=True),
                Column("table_schema", SqlType.VARCHAR),
                Column("column_name", SqlType.VARCHAR, not_null=True),
                Column("ordinal_position", SqlType.INTEGER, not_null=True),
                Column("data_type", SqlType.VARCHAR, not_null=True),
                Column("is_nullable", SqlType.BOOLEAN),
                Column("is_primary_key", SqlType.BOOLEAN),
                Column("references_table", SqlType.VARCHAR),
                Column("references_column", SqlType.VARCHAR),
            ],
        )
        self._tables["information_schema.columns"] = Table(columns_schema)

    @staticmethod
    def _split_key(key: str):
        if "." in key:
            schema_name, _, table_name = key.partition(".")
            return schema_name, table_name
        return None, key

    def _refresh_tables_catalog(self) -> None:
        catalog = self._tables["information_schema.tables"]
        # Rebuild in place: simplest correct behaviour for a tiny catalog.
        for index, _row in list(catalog.enumerate_rows()):
            catalog.delete_at(index)
        for key in sorted(self._tables):
            if key in self._BUILTIN_CATALOGS:
                continue
            schema_name, table_name = self._split_key(key)
            catalog.insert({"table_name": table_name, "table_schema": schema_name})

    def _refresh_columns_catalog(self) -> None:
        """Column-level introspection: enough detail to reconstruct every
        user table's DDL (types, NOT NULL, PRIMARY KEY, REFERENCES) —
        this is what the cluster's DatabaseDumper reads to snapshot a
        backend through plain SQL."""
        catalog = self._tables["information_schema.columns"]
        for index, _row in list(catalog.enumerate_rows()):
            catalog.delete_at(index)
        for key in sorted(self._tables):
            if key in self._BUILTIN_CATALOGS:
                continue
            schema_name, table_name = self._split_key(key)
            table = self._tables[key]
            for position, column in enumerate(table.schema.columns, start=1):
                catalog.insert(
                    {
                        "table_name": table_name,
                        "table_schema": schema_name,
                        "column_name": column.name,
                        "ordinal_position": position,
                        "data_type": column.sql_type.value,
                        "is_nullable": not column.not_null,
                        "is_primary_key": column.primary_key,
                        "references_table": column.references.table if column.references else None,
                        "references_column": column.references.column if column.references else None,
                    }
                )

    def lookup_table(self, key: str) -> Optional[Table]:
        """Resolve a canonical lowercase table key to its table."""
        with self._lock:
            if key == "information_schema.tables":
                self._refresh_tables_catalog()
            elif key == "information_schema.columns":
                self._refresh_columns_catalog()
            return self._tables.get(key.lower())

    def create_table(self, key: str, table: Table) -> None:
        with self._lock:
            lowered = key.lower()
            if lowered in self._tables:
                raise SqlExecutionError(f"table {key!r} already exists in database {self.name!r}")
            self._tables[lowered] = table

    def drop_table(self, key: str) -> bool:
        with self._lock:
            return self._tables.pop(key.lower(), None) is not None

    def table_names(self) -> List[str]:
        with self._lock:
            return sorted(self._tables)

    @property
    def lock(self) -> threading.RLock:
        """Engine-wide statement lock (sessions serialize on this)."""
        return self._lock
