"""SQL data types and value coercion.

Data type definitions follow the ANSI SQL 2003 names used by the paper's
Table 1 and Table 2 (INTEGER, BIGINT, VARCHAR, BLOB, TIMESTAMP). Values
are stored as native Python objects:

========= ======================
SQL type  Python representation
========= ======================
INTEGER   int
BIGINT    int
DOUBLE    float
VARCHAR   str
BLOB      bytes
TIMESTAMP float (epoch seconds)
BOOLEAN   bool
========= ======================

NULL is represented by ``None`` for every type.
"""

from __future__ import annotations

import enum
from typing import Any, Optional

from repro.sqlengine.errors import SqlEngineError


class SqlTypeError(SqlEngineError):
    """A value cannot be coerced to the column's declared type."""


class SqlType(enum.Enum):
    """Supported column types."""

    INTEGER = "INTEGER"
    BIGINT = "BIGINT"
    DOUBLE = "DOUBLE"
    VARCHAR = "VARCHAR"
    BLOB = "BLOB"
    TIMESTAMP = "TIMESTAMP"
    BOOLEAN = "BOOLEAN"

    @staticmethod
    def from_name(name: str) -> "SqlType":
        """Resolve a type name (case-insensitive, common aliases allowed)."""
        normalized = name.strip().upper()
        aliases = {
            "INT": SqlType.INTEGER,
            "INTEGER": SqlType.INTEGER,
            "BIGINT": SqlType.BIGINT,
            "DOUBLE": SqlType.DOUBLE,
            "FLOAT": SqlType.DOUBLE,
            "REAL": SqlType.DOUBLE,
            "VARCHAR": SqlType.VARCHAR,
            "TEXT": SqlType.VARCHAR,
            "CHAR": SqlType.VARCHAR,
            "BLOB": SqlType.BLOB,
            "TIMESTAMP": SqlType.TIMESTAMP,
            "BOOLEAN": SqlType.BOOLEAN,
            "BOOL": SqlType.BOOLEAN,
        }
        if normalized not in aliases:
            raise SqlTypeError(f"unknown SQL type: {name!r}")
        return aliases[normalized]


def coerce_value(value: Any, sql_type: SqlType) -> Optional[Any]:
    """Coerce ``value`` to the Python representation of ``sql_type``.

    ``None`` passes through unchanged (NULL is valid for any type until a
    NOT NULL constraint says otherwise). Raises :class:`SqlTypeError` for
    incompatible values rather than silently truncating.
    """
    if value is None:
        return None
    if sql_type in (SqlType.INTEGER, SqlType.BIGINT):
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        if isinstance(value, str):
            try:
                return int(value)
            except ValueError:
                raise SqlTypeError(f"cannot coerce {value!r} to {sql_type.value}") from None
        raise SqlTypeError(f"cannot coerce {type(value).__name__} to {sql_type.value}")
    if sql_type == SqlType.DOUBLE:
        if isinstance(value, bool):
            return float(value)
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value)
            except ValueError:
                raise SqlTypeError(f"cannot coerce {value!r} to DOUBLE") from None
        raise SqlTypeError(f"cannot coerce {type(value).__name__} to DOUBLE")
    if sql_type == SqlType.VARCHAR:
        if isinstance(value, str):
            return value
        if isinstance(value, (int, float, bool)):
            return str(value)
        raise SqlTypeError(f"cannot coerce {type(value).__name__} to VARCHAR")
    if sql_type == SqlType.BLOB:
        if isinstance(value, bytes):
            return value
        if isinstance(value, bytearray):
            return bytes(value)
        if isinstance(value, str):
            return value.encode("utf-8")
        raise SqlTypeError(f"cannot coerce {type(value).__name__} to BLOB")
    if sql_type == SqlType.TIMESTAMP:
        if isinstance(value, bool):
            raise SqlTypeError("cannot coerce BOOLEAN to TIMESTAMP")
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value)
            except ValueError:
                raise SqlTypeError(f"cannot coerce {value!r} to TIMESTAMP") from None
        raise SqlTypeError(f"cannot coerce {type(value).__name__} to TIMESTAMP")
    if sql_type == SqlType.BOOLEAN:
        if isinstance(value, bool):
            return value
        if isinstance(value, int) and value in (0, 1):
            return bool(value)
        raise SqlTypeError(f"cannot coerce {type(value).__name__} to BOOLEAN")
    raise SqlTypeError(f"unsupported SQL type: {sql_type!r}")  # pragma: no cover
