"""Transactions: per-session undo logs.

Each session may run at most one transaction at a time. DML statements
executed inside a transaction record undo entries; ROLLBACK replays them
in reverse, COMMIT discards them. Statements outside an explicit
transaction auto-commit.

The engine serializes statement execution with a single lock, so the undo
log does not need to handle concurrent writers to the same row; what the
Drivolution experiments need from transactions is the *lifecycle* —
knowing whether a connection has an in-flight transaction (the
``AFTER_COMMIT`` expiration policy) and being able to abort it cleanly
(the ``IMMEDIATE`` policy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.sqlengine.errors import TransactionError
from repro.sqlengine.storage import Table


@dataclass
class UndoEntry:
    """One reversible mutation."""

    kind: str  # "insert" | "update" | "delete"
    table: Table
    index: int
    before: Optional[Dict[str, Any]] = None


@dataclass
class Transaction:
    """An open transaction accumulating undo entries."""

    undo_log: List[UndoEntry] = field(default_factory=list)
    statements: int = 0

    def record_insert(self, table: Table, index: int) -> None:
        self.undo_log.append(UndoEntry(kind="insert", table=table, index=index))

    def record_update(self, table: Table, index: int, before: Dict[str, Any]) -> None:
        self.undo_log.append(UndoEntry(kind="update", table=table, index=index, before=before))

    def record_delete(self, table: Table, index: int, before: Dict[str, Any]) -> None:
        self.undo_log.append(UndoEntry(kind="delete", table=table, index=index, before=before))

    def rollback(self) -> None:
        """Undo every recorded mutation, newest first."""
        for entry in reversed(self.undo_log):
            if entry.kind == "insert":
                entry.table.remove_at(entry.index)
            elif entry.kind in ("update", "delete"):
                assert entry.before is not None
                entry.table.restore_at(entry.index, entry.before)
        self.undo_log.clear()


class TransactionManager:
    """Tracks the open transaction of one session."""

    def __init__(self) -> None:
        self._current: Optional[Transaction] = None

    @property
    def active(self) -> bool:
        return self._current is not None

    @property
    def current(self) -> Optional[Transaction]:
        return self._current

    def begin(self) -> Transaction:
        if self._current is not None:
            raise TransactionError("transaction already in progress")
        self._current = Transaction()
        return self._current

    def commit(self) -> None:
        if self._current is None:
            raise TransactionError("COMMIT without an open transaction")
        self._current = None

    def rollback(self) -> None:
        if self._current is None:
            raise TransactionError("ROLLBACK without an open transaction")
        self._current.rollback()
        self._current = None

    def abort_if_active(self) -> bool:
        """Roll back the open transaction if there is one (used by forced
        connection termination under the IMMEDIATE policy)."""
        if self._current is None:
            return False
        self._current.rollback()
        self._current = None
        return True
