"""SQL tokenizer.

Produces a flat list of tokens consumed by the recursive-descent parser in
:mod:`repro.sqlengine.parser`. Token kinds:

- ``IDENT`` — identifiers and keywords (keyword recognition is done by the
  parser, case-insensitively). Double-quoted identifiers (``"Users"``,
  with ``""`` escaping an embedded quote) also produce ``IDENT`` tokens,
  carrying the unquoted value — the engine's catalog is case-insensitive,
  so quoting only widens the accepted character set,
- ``NUMBER`` — integer or float literals,
- ``STRING`` — single-quoted string literals (with ``''`` escaping),
- ``PARAM`` — ``$name`` named parameters or ``?`` positional parameters,
- ``OP`` — operators and punctuation (``= <> != <= >= < > ( ) , . *``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from repro.sqlengine.errors import SqlParseError


@dataclass(frozen=True)
class Token:
    """One lexical token with its position (for error messages)."""

    kind: str
    value: Union[str, int, float]
    position: int
    #: True for double-quoted identifiers: their value must never be
    #: treated as a keyword (``SELECT "from" FROM t`` names a column
    #: ``from``), only as a name.
    quoted: bool = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r})"


_OPERATORS = ("<>", "!=", "<=", ">=", "=", "<", ">", "(", ")", ",", ".", "*", ";", "+", "-")
_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_BODY = _IDENT_START | set("0123456789")
_DIGITS = set("0123456789")


def tokenize(sql: str) -> List[Token]:
    """Tokenize a SQL string, raising :class:`SqlParseError` on bad input."""
    tokens: List[Token] = []
    index = 0
    length = len(sql)
    while index < length:
        char = sql[index]
        if char.isspace():
            index += 1
            continue
        if char == "-" and sql.startswith("--", index):
            newline = sql.find("\n", index)
            index = length if newline < 0 else newline + 1
            continue
        if char == "'":
            literal, index = _read_string(sql, index)
            tokens.append(Token("STRING", literal, index))
            continue
        if char == '"':
            name, index = _read_quoted_identifier(sql, index)
            tokens.append(Token("IDENT", name, index, quoted=True))
            continue
        if char in _DIGITS or (
            char == "-" and index + 1 < length and sql[index + 1] in _DIGITS and _number_context(tokens)
        ):
            number, index = _read_number(sql, index)
            tokens.append(Token("NUMBER", number, index))
            continue
        if char == "$":
            name, index = _read_identifier(sql, index + 1)
            if not name:
                raise SqlParseError(f"empty parameter name at position {index}")
            tokens.append(Token("PARAM", name, index))
            continue
        if char == "?":
            tokens.append(Token("PARAM", "?", index))
            index += 1
            continue
        if char in _IDENT_START:
            name, index = _read_identifier(sql, index)
            tokens.append(Token("IDENT", name, index))
            continue
        matched = False
        for op in _OPERATORS:
            if sql.startswith(op, index):
                tokens.append(Token("OP", op, index))
                index += len(op)
                matched = True
                break
        if matched:
            continue
        raise SqlParseError(f"unexpected character {char!r} at position {index}")
    return tokens


def _number_context(tokens: List[Token]) -> bool:
    """A leading ``-`` starts a number only where a value is expected."""
    if not tokens:
        return True
    last = tokens[-1]
    if last.kind == "OP" and last.value not in (")", "*"):
        return True
    if last.kind == "IDENT":
        return last.value.upper() in {
            "SELECT", "WHERE", "AND", "OR", "NOT", "VALUES", "SET", "BETWEEN",
            "LIKE", "IN", "BY", "LIMIT", "THEN", "ELSE",
        }
    return False


def _read_string(sql: str, index: int) -> tuple:
    """Read a single-quoted string starting at ``index`` (on the quote)."""
    assert sql[index] == "'"
    index += 1
    chunks: List[str] = []
    while index < len(sql):
        char = sql[index]
        if char == "'":
            if index + 1 < len(sql) and sql[index + 1] == "'":
                chunks.append("'")
                index += 2
                continue
            return "".join(chunks), index + 1
        chunks.append(char)
        index += 1
    raise SqlParseError("unterminated string literal")


def _read_number(sql: str, index: int) -> tuple:
    start = index
    if sql[index] == "-":
        index += 1
    is_float = False
    while index < len(sql) and (sql[index] in _DIGITS or sql[index] == "."):
        if sql[index] == ".":
            if is_float:
                break
            is_float = True
        index += 1
    text = sql[start:index]
    try:
        value: Union[int, float] = float(text) if is_float else int(text)
    except ValueError as exc:
        raise SqlParseError(f"invalid number literal {text!r}") from exc
    return value, index


def _read_identifier(sql: str, index: int) -> tuple:
    start = index
    while index < len(sql) and sql[index] in _IDENT_BODY:
        index += 1
    return sql[start:index], index


def _read_quoted_identifier(sql: str, index: int) -> tuple:
    """Read a double-quoted identifier starting at ``index`` (on the quote)."""
    assert sql[index] == '"'
    index += 1
    chunks: List[str] = []
    while index < len(sql):
        char = sql[index]
        if char == '"':
            if index + 1 < len(sql) and sql[index + 1] == '"':
                chunks.append('"')
                index += 2
                continue
            if not chunks:
                raise SqlParseError(f"empty quoted identifier at position {index}")
            return "".join(chunks), index + 1
        chunks.append(char)
        index += 1
    raise SqlParseError("unterminated quoted identifier")
