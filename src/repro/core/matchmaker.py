"""Driver match-making (paper Sections 3.1, 4.1.1).

Given a ``DRIVOLUTION_REQUEST`` the server must pick the driver to offer.
The paper's server logic is:

1. if a distribution (``driver_permission``) table exists and has entries,
   query it first (Sample code 2) to obtain the short list of drivers this
   client may receive, sorted/filtered further by client preferences;
2. otherwise (or to narrow the short list) run the preference query over
   the drivers table (Sample code 1);
3. if the preference query returns nothing, retry without preferences;
4. if still nothing, the answer is a ``DRIVOLUTION_ERROR``;
5. if multiple drivers match, "the first matching driver is chosen".

The matchmaker also resolves the effective lease time and policies for the
chosen driver (from the matching permission row, falling back to
defaults), because the OFFER message must carry them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.constants import (
    DEFAULT_LEASE_TIME_MS,
    ExpirationPolicy,
    RenewPolicy,
    TransferMethod,
)
from repro.core.messages import DrivolutionRequest
from repro.core.registry import DriverPermission, DriverRegistry
from repro.errors import DrivolutionError


class NoMatchingDriver(DrivolutionError):
    """No driver satisfies the request (maps to DRIVOLUTION_ERROR)."""


@dataclass
class MatchRequest:
    """Normalised match-making input derived from a protocol request."""

    database: str
    api_name: str
    client_platform: str
    user: Optional[str] = None
    client_ip: Optional[str] = None
    api_version: Optional[Tuple[int, int]] = None
    preferred_driver_version: Optional[Tuple[int, int, int]] = None
    preferred_binary_format: Optional[str] = None

    @staticmethod
    def from_protocol(request: DrivolutionRequest) -> "MatchRequest":
        return MatchRequest(
            database=request.database,
            api_name=request.api_name,
            client_platform=request.client_platform,
            user=request.user,
            client_ip=request.client_ip or None,
            api_version=request.api_version,
            preferred_driver_version=request.preferred_driver_version,
            preferred_binary_format=request.preferred_binary_format,
        )


@dataclass
class MatchResult:
    """The chosen driver plus the policies that govern its lease."""

    driver_id: int
    driver_row: Dict[str, Any]
    lease_time_ms: int = DEFAULT_LEASE_TIME_MS
    renew_policy: RenewPolicy = RenewPolicy.RENEW
    expiration_policy: ExpirationPolicy = ExpirationPolicy.AFTER_COMMIT
    transfer_method: TransferMethod = TransferMethod.ANY
    driver_options: Dict[str, Any] = field(default_factory=dict)
    matched_permission: Optional[DriverPermission] = None


class Matchmaker:
    """Implements the server-side driver selection logic."""

    def __init__(
        self,
        registry: DriverRegistry,
        known_databases: Optional[Callable[[], List[str]]] = None,
        clock: Callable[[], float] = time.time,
        default_lease_time_ms: int = DEFAULT_LEASE_TIME_MS,
        default_renew_policy: RenewPolicy = RenewPolicy.RENEW,
        default_expiration_policy: ExpirationPolicy = ExpirationPolicy.AFTER_COMMIT,
    ) -> None:
        self._registry = registry
        self._known_databases = known_databases
        self._clock = clock
        self._default_lease_time_ms = default_lease_time_ms
        self._default_renew_policy = default_renew_policy
        self._default_expiration_policy = default_expiration_policy

    # -- public --------------------------------------------------------------

    def match(self, request: MatchRequest) -> MatchResult:
        """Pick the driver to offer, or raise :class:`NoMatchingDriver`."""
        if self._known_databases is not None:
            databases = {name.lower() for name in self._known_databases()}
            if databases and request.database.lower() not in databases:
                raise NoMatchingDriver(f"invalid database {request.database!r}")

        permissions = self._registry.query_permissions(
            database=request.database, user=request.user, client_ip=request.client_ip
        )
        if permissions:
            return self._match_from_permissions(request, permissions)
        if self._registry.list_permissions():
            # A distribution table is in use but nothing in it currently
            # applies to this client (expired end_date, wrong user/ip/db):
            # the driver is not distributable, even if it still exists in
            # the drivers table. This is how "set end_date to now" disables
            # a driver (Section 4.1.1).
            raise NoMatchingDriver(
                f"no currently distributable driver for database {request.database!r}, "
                f"user {request.user!r}"
            )
        return self._match_from_drivers(request)

    # -- permission-driven selection (Sample code 2 first) -----------------------

    def _match_from_permissions(
        self, request: MatchRequest, permissions: List[DriverPermission]
    ) -> MatchResult:
        candidate_rows = self._candidate_driver_rows(request)
        candidates_by_id = {int(row["driver_id"]): row for row in candidate_rows}
        for permission in permissions:
            row = candidates_by_id.get(permission.driver_id)
            if row is None:
                continue
            return MatchResult(
                driver_id=permission.driver_id,
                driver_row=row,
                lease_time_ms=permission.lease_time_in_ms,
                renew_policy=permission.renew_policy,
                expiration_policy=permission.expiration_policy,
                transfer_method=permission.transfer_method,
                driver_options=dict(permission.driver_options),
                matched_permission=permission,
            )
        raise NoMatchingDriver(
            f"no driver for API {request.api_name!r} on platform {request.client_platform!r} "
            f"is distributable to user={request.user!r} database={request.database!r}"
        )

    # -- preference-driven selection (Sample code 1) --------------------------------

    def _match_from_drivers(self, request: MatchRequest) -> MatchResult:
        rows = self._candidate_driver_rows(request)
        if not rows:
            raise NoMatchingDriver(
                f"no driver for API {request.api_name!r} on platform {request.client_platform!r}"
            )
        row = rows[0]
        return MatchResult(
            driver_id=int(row["driver_id"]),
            driver_row=row,
            lease_time_ms=self._default_lease_time_ms,
            renew_policy=self._default_renew_policy,
            expiration_policy=self._default_expiration_policy,
        )

    def _candidate_driver_rows(self, request: MatchRequest) -> List[Dict[str, Any]]:
        """Preference query, then the fallback query without preferences."""
        rows = self._registry.query_drivers(
            api_name=request.api_name,
            client_platform=request.client_platform,
            api_version=request.api_version,
            driver_version=request.preferred_driver_version,
            with_preferences=True,
        )
        if not rows:
            rows = self._registry.query_drivers(
                api_name=request.api_name,
                client_platform=request.client_platform,
                with_preferences=False,
            )
        if rows and request.preferred_binary_format:
            preferred = [
                row for row in rows if row.get("binary_format") == request.preferred_binary_format
            ]
            if preferred:
                rows = preferred
        return rows
