"""The Drivolution bootloader (paper Section 3.1.1).

The bootloader is the only Drivolution component installed on the client
machine. It substitutes the database driver: the application calls
``bootloader.connect(url, ...)`` exactly as it would call a driver's
``connect``, and the bootloader

1. contacts a Drivolution server (explicitly configured, taken from the
   connection URL, or discovered by broadcast),
2. downloads the driver the server offers, verifies its signature if
   configured to, decodes it and loads it dynamically,
3. opens the actual database connection through the loaded driver, passing
   the application's connection options through (merged under the
   server-enforced ``driver_options``),
4. keeps track of the lease and, when it expires — or immediately, when a
   dedicated notification channel signals an update — renews it, upgrades
   to a new driver version, or revokes the current driver, transitioning
   existing connections according to the expiration policy.

The bootloader is generic: it knows nothing about any particular driver
implementation, only about the Drivolution protocol and the DB-API shape
of the ``connect`` entry point.
"""

from __future__ import annotations

import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core import messages
from repro.core.constants import ExpirationPolicy, RenewPolicy
from repro.core.loader import DriverLoader, LoadedDriver
from repro.core.messages import (
    DrivolutionDiscover,
    DrivolutionErrorMessage,
    DrivolutionOffer,
    DrivolutionRequest,
)
from repro.core.package import DriverPackage, DriverSigner
from repro.core.policies import TransitionReport, apply_expiration_policy
from repro.dbapi.urls import parse_url
from repro.errors import DrivolutionError, TransportError
from repro.netsim.secure import CertificateAuthority, SecureChannel
from repro.netsim.transport import Address, Channel, Network


class BootloaderError(DrivolutionError):
    """Bootloader-level failure (no driver offered, driver revoked...)."""


class DrivolutionServerUnreachable(BootloaderError):
    """No Drivolution server answered at all (network-level failure).

    Distinct from a DRIVOLUTION_ERROR answer: the paper requires the
    bootloader to keep its current driver when the server is merely
    unavailable (Section 4.1.3), whereas an explicit error revokes it.
    """


@dataclass
class BootloaderConfig:
    """Static configuration of a bootloader instance.

    Only the API name and client platform are mandatory concepts; everything
    else has sensible defaults. ``drivolution_servers`` is the explicit
    server list used in legacy dual-URL deployments (Section 5.3.1); when
    empty, the bootloader contacts the host(s) of the connection URL.
    """

    api_name: str = "PYDB-API"
    client_platform: str = "cpython-any"
    api_version: Optional[Tuple[int, int]] = None
    client_id: str = field(default_factory=lambda: f"bootloader-{uuid.uuid4().hex[:8]}")
    client_ip: str = ""
    drivolution_servers: List[Address] = field(default_factory=list)
    preferred_binary_format: Optional[str] = None
    preferred_driver_version: Optional[Tuple[int, int, int]] = None
    requested_extensions: List[str] = field(default_factory=list)
    use_discovery: bool = False
    secure: bool = False
    certificate_authority: Optional[CertificateAuthority] = None
    expected_server_subject: Optional[str] = None
    signer: Optional[DriverSigner] = None
    require_signature: bool = False
    request_timeout: float = 10.0


class ManagedConnection:
    """A connection handed to the application, tracked by the bootloader.

    All calls pass through to the underlying driver connection; the wrapper
    only observes transaction boundaries and close so the bootloader can
    apply expiration policies.
    """

    _counter = 0
    _counter_lock = threading.Lock()

    def __init__(self, bootloader: "Bootloader", inner, driver_generation: int) -> None:
        self._bootloader = bootloader
        self._inner = inner
        self.driver_generation = driver_generation
        self._close_after_commit = False
        self._stale = False
        with ManagedConnection._counter_lock:
            ManagedConnection._counter += 1
            self.connection_id = f"conn-{ManagedConnection._counter}"

    # -- passthrough DB-API surface ------------------------------------------

    def cursor(self):
        return self._inner.cursor()

    def begin(self) -> None:
        self._inner.begin()

    def commit(self) -> None:
        self._inner.commit()
        if self._close_after_commit:
            self.close()

    def rollback(self) -> None:
        self._inner.rollback()
        if self._close_after_commit:
            self.close()

    def close(self) -> None:
        if not self._inner.closed:
            self._inner.close()
        self._bootloader._on_connection_closed(self)

    def supports(self, feature: str) -> bool:
        return self._inner.supports(feature)

    def __enter__(self) -> "ManagedConnection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- properties -------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._inner.closed

    @property
    def in_transaction(self) -> bool:
        return self._inner.in_transaction

    @property
    def driver_info(self) -> Dict[str, Any]:
        return self._inner.driver_info

    @property
    def stale(self) -> bool:
        """True when this connection uses a driver generation that has been
        superseded (AFTER_CLOSE policy leaves such connections running)."""
        return self._stale

    @property
    def inner(self):
        """The underlying driver connection (for tests/experiments)."""
        return self._inner

    # -- bootloader-facing controls ------------------------------------------------

    def force_close(self) -> None:
        """IMMEDIATE policy: terminate regardless of in-flight transactions."""
        self.close()

    def close_after_commit(self) -> None:
        """AFTER_COMMIT policy: close as soon as the current transaction ends."""
        self._close_after_commit = True

    def mark_stale(self) -> None:
        """AFTER_CLOSE policy: keep running but flag as using an old driver."""
        self._stale = True


@dataclass
class BootloaderStats:
    """Counters for experiments and tests."""

    connect_calls: int = 0
    blocked_connects: int = 0
    driver_downloads: int = 0
    bytes_downloaded: int = 0
    lease_renewals: int = 0
    upgrades: int = 0
    revocations: int = 0
    update_checks: int = 0
    discover_rounds: int = 0


class Bootloader:
    """Client-side Drivolution bootloader."""

    def __init__(
        self,
        config: Optional[BootloaderConfig] = None,
        network: Optional[Network] = None,
        clock: Callable[[], float] = time.time,
        loader: Optional[DriverLoader] = None,
    ) -> None:
        self.config = config or BootloaderConfig()
        self.network = network
        self.clock = clock
        self.loader = loader or DriverLoader(
            signer=self.config.signer, require_signature=self.config.require_signature
        )
        self.stats = BootloaderStats()
        self._lock = threading.RLock()
        self._current: Optional[LoadedDriver] = None
        self._previous: List[LoadedDriver] = []
        self._lease: Optional[DrivolutionOffer] = None
        self._recheck_time: Optional[float] = None
        self._revoked = False
        self._revocation_reason = ""
        self._connections: List[ManagedConnection] = []
        self._last_transition: Optional[TransitionReport] = None
        self._server_used: Optional[Address] = None
        self._last_request_context: Dict[str, Any] = {}
        self._renewal_thread: Optional[threading.Thread] = None
        self._renewal_stop = threading.Event()
        self._notification_thread: Optional[threading.Thread] = None
        self._notification_channel: Optional[Channel] = None

    # ------------------------------------------------------------------ connect

    def connect(
        self,
        url: str,
        user: Optional[str] = None,
        password: Optional[str] = None,
        **options: Any,
    ) -> ManagedConnection:
        """Intercept the driver's ``connect`` call (Section 3.1.1).

        On the first call (or whenever the lease has expired) the driver is
        (re)negotiated with the Drivolution server; afterwards the call is
        forwarded to the loaded driver.
        """
        self.stats.connect_calls += 1
        with self._lock:
            if self._revoked:
                self.stats.blocked_connects += 1
                raise BootloaderError(
                    "no suitable driver available: the previous driver was revoked "
                    f"({self._revocation_reason or 'lease expired with no replacement'})"
                )
            if self._current is None:
                self._bootstrap(url, user=user, password=password)
            elif self.lease_expired():
                # Lazy renewal: an application call triggered the check.
                self.check_for_update(url=url, user=user, password=password)
                if self._revoked:
                    self.stats.blocked_connects += 1
                    raise BootloaderError(
                        "no suitable driver available: the driver lease expired and "
                        "no replacement was offered"
                    )
            assert self._current is not None
            driver = self._current
            merged: Dict[str, Any] = {}
            if self._lease is not None:
                merged.update(self._lease.driver_options)
            merged.update(options)
            if self.network is not None and "network" not in merged:
                merged["network"] = self.network
            inner = driver.connect(url, user=user, password=password, **merged)
            managed = ManagedConnection(self, inner, driver_generation=driver.generation)
            self._connections.append(managed)
            return managed

    # -------------------------------------------------------------- driver state

    @property
    def current_driver(self) -> Optional[LoadedDriver]:
        with self._lock:
            return self._current

    @property
    def current_lease(self) -> Optional[DrivolutionOffer]:
        with self._lock:
            return self._lease

    @property
    def revoked(self) -> bool:
        with self._lock:
            return self._revoked

    @property
    def last_transition(self) -> Optional[TransitionReport]:
        with self._lock:
            return self._last_transition

    def active_connections(self) -> List[ManagedConnection]:
        with self._lock:
            return [conn for conn in self._connections if not conn.closed]

    def stale_connections(self) -> List[ManagedConnection]:
        return [conn for conn in self.active_connections() if conn.stale]

    def lease_expired(self) -> bool:
        with self._lock:
            if self._recheck_time is None:
                return False
            return self.clock() >= self._recheck_time

    def driver_info(self) -> Dict[str, Any]:
        """Metadata of the currently loaded driver (empty before bootstrap)."""
        with self._lock:
            return self._current.info() if self._current is not None else {}

    def _on_connection_closed(self, managed: ManagedConnection) -> None:
        with self._lock:
            if managed in self._connections:
                self._connections.remove(managed)

    # ------------------------------------------------------------------ bootstrap

    def _bootstrap(self, url: str, user: Optional[str], password: Optional[str]) -> None:
        """First driver acquisition: REQUEST → OFFER → FILE transfer → load."""
        self._last_request_context = {"url": url, "user": user, "password": password}
        servers = self._candidate_servers(url)
        offer, package, server = self._negotiate(servers, url, user, password, current_lease=None)
        self._install_offer(offer, package, server)

    def _candidate_servers(self, url: str) -> List[Address]:
        """Where to look for a Drivolution server, in order of preference."""
        if self.config.drivolution_servers:
            return list(self.config.drivolution_servers)
        parsed = parse_url(url)
        return list(parsed.hosts)

    def _negotiate(
        self,
        servers: List[Address],
        url: str,
        user: Optional[str],
        password: Optional[str],
        current_lease: Optional[str],
    ) -> Tuple[DrivolutionOffer, Optional[DriverPackage], Address]:
        """Run the bootstrap protocol against the first server that answers.

        Returns the accepted offer, the downloaded package (None when the
        offer carries no file) and the server that served it.
        """
        if self.network is None:
            raise BootloaderError("bootloader has no network configured")
        parsed = parse_url(url)
        request = DrivolutionRequest(
            database=parsed.database,
            api_name=self.config.api_name,
            client_platform=self.config.client_platform,
            user=user,
            password=password,
            api_version=self.config.api_version,
            preferred_binary_format=self.config.preferred_binary_format,
            preferred_driver_version=self.config.preferred_driver_version,
            client_id=self.config.client_id,
            client_ip=self.config.client_ip,
            current_lease_id=current_lease,
            requested_extensions=list(self.config.requested_extensions),
        )
        if self.config.use_discovery:
            servers = self._discover(request, servers)
        last_error: Optional[Exception] = None
        any_server_answered = False
        for server in servers:
            try:
                return self._negotiate_with(server, request)
            except TransportError as exc:
                last_error = exc
                continue
            except DrivolutionError as exc:
                any_server_answered = True
                last_error = exc
                continue
        if not any_server_answered:
            raise DrivolutionServerUnreachable(
                f"no Drivolution server reachable (tried {servers!r}): {last_error}"
            )
        raise BootloaderError(
            f"no Drivolution server could provide a driver (tried {servers!r}): {last_error}"
        )

    def _discover(self, request: DrivolutionRequest, fallback: List[Address]) -> List[Address]:
        """Broadcast DISCOVER and order servers by whoever answered first."""
        self.stats.discover_rounds += 1
        discover = DrivolutionDiscover(**{**request.__dict__})
        candidates = list(self.network.registered_addresses()) or list(fallback)
        answered: List[Address] = []
        for address in candidates:
            try:
                channel = self.network.connect(address, timeout=1.0)
            except TransportError:
                continue
            try:
                channel.send(discover.to_wire())
                reply = channel.recv(timeout=1.0)
            except TransportError:
                continue
            finally:
                channel.close()
            if reply.get("type") == messages.OFFER:
                answered.append(address)
        return answered or list(fallback)

    def _open_channel(self, server: Address) -> Channel:
        channel = self.network.connect(server, timeout=self.config.request_timeout)
        if self.config.secure:
            if self.config.certificate_authority is None:
                channel.close()
                raise BootloaderError("secure mode requires a certificate authority")
            channel = SecureChannel.client_handshake(
                channel,
                self.config.certificate_authority,
                expected_subject=self.config.expected_server_subject,
                timeout=self.config.request_timeout,
            )
        return channel

    def _negotiate_with(
        self, server: Address, request: DrivolutionRequest
    ) -> Tuple[DrivolutionOffer, Optional[DriverPackage], Address]:
        channel = self._open_channel(server)
        try:
            channel.send(request.to_wire())
            reply = channel.recv(timeout=self.config.request_timeout)
            if reply.get("type") == messages.ERROR:
                error = DrivolutionErrorMessage.from_wire(reply)
                raise BootloaderError(f"DRIVOLUTION_ERROR [{error.code}]: {error.detail}")
            offer = DrivolutionOffer.from_wire(reply)
            package: Optional[DriverPackage] = None
            if offer.includes_file:
                channel.send(messages.make_file_request(offer.driver_location, offer.lease_id))
                file_reply = channel.recv(timeout=self.config.request_timeout)
                if file_reply.get("type") == messages.ERROR:
                    error = DrivolutionErrorMessage.from_wire(file_reply)
                    raise BootloaderError(f"driver download failed [{error.code}]: {error.detail}")
                if file_reply.get("type") != messages.FILE_DATA:
                    raise BootloaderError(
                        f"unexpected file transfer reply {file_reply.get('type')!r}"
                    )
                package = DriverPackage.from_wire(file_reply.get("package", {}))
                self.stats.driver_downloads += 1
                self.stats.bytes_downloaded += package.size_bytes
            return offer, package, server
        finally:
            channel.close()

    def _install_offer(
        self, offer: DrivolutionOffer, package: Optional[DriverPackage], server: Address
    ) -> None:
        """Load the offered driver (if any) and update lease bookkeeping."""
        if package is not None:
            loaded = self.loader.load(package, driver_id=offer.driver_id, lease_id=offer.lease_id)
            if self._current is not None:
                self._previous.append(self._current)
            self._current = loaded
        self._lease = offer
        self._server_used = server
        self._recheck_time = self.clock() + offer.lease_time_ms / 1000.0
        self._revoked = False
        self._revocation_reason = ""

    # ------------------------------------------------------------------ renewal / upgrade

    def check_for_update(
        self,
        url: Optional[str] = None,
        user: Optional[str] = None,
        password: Optional[str] = None,
        force: bool = False,
    ) -> str:
        """Contact the server to renew the lease or fetch a new driver.

        Returns one of ``"renewed"``, ``"upgraded"``, ``"revoked"`` or
        ``"not_due"`` (lease still valid and ``force`` not set). This is the
        client side of the paper's Table 4.
        """
        with self._lock:
            if self._current is None or self._lease is None:
                return "not_due"
            if not force and not self.lease_expired():
                return "not_due"
            self.stats.update_checks += 1
            context = dict(self._last_request_context)
            url = url or context.get("url")
            user = user if user is not None else context.get("user")
            password = password if password is not None else context.get("password")
            if url is None:
                raise BootloaderError("no connection context available for lease renewal")
            servers = self._candidate_servers(url)
            if self._server_used in servers:
                # Prefer the server that granted the current lease.
                servers = [self._server_used] + [item for item in servers if item != self._server_used]
            current_policy = ExpirationPolicy.from_value(self._lease.expiration_policy)
            try:
                offer, package, server = self._negotiate(
                    servers, url, user, password, current_lease=self._lease.lease_id
                )
            except DrivolutionServerUnreachable:
                # The server is merely unavailable: keep the current driver
                # and retry at the next check (paper Section 4.1.3).
                return "server_unreachable"
            except BootloaderError as exc:
                # Explicit DRIVOLUTION_ERROR: revoke the current driver.
                self._revoke(current_policy, reason=str(exc))
                return "revoked"

            renew_policy = RenewPolicy.from_value(offer.renew_policy)
            if renew_policy == RenewPolicy.REVOKE:
                self._revoke(ExpirationPolicy.from_value(offer.expiration_policy), reason="server revoked driver")
                return "revoked"
            if package is None or (
                self._current.driver_id == offer.driver_id
                and tuple(offer.driver_version) == tuple(self._current.package.driver_version)
            ):
                # Same driver: pure lease renewal.
                self._lease = offer
                self._recheck_time = self.clock() + offer.lease_time_ms / 1000.0
                self.stats.lease_renewals += 1
                return "renewed"
            # New driver: upgrade.
            old_driver = self._current
            old_connections = [
                conn for conn in self._connections if not conn.closed and conn.driver_generation == old_driver.generation
            ]
            self._install_offer(offer, package, server)
            transition_policy = ExpirationPolicy.from_value(offer.expiration_policy)
            self._last_transition = apply_expiration_policy(old_connections, transition_policy)
            self.loader.unload(old_driver)
            self.stats.upgrades += 1
            return "upgraded"

    def _revoke(self, policy: ExpirationPolicy, reason: str) -> None:
        """Apply the REVOKE path: no replacement driver is available."""
        connections = [conn for conn in self._connections if not conn.closed]
        self._last_transition = apply_expiration_policy(connections, policy)
        if self._current is not None:
            self.loader.unload(self._current)
            self._previous.append(self._current)
        self._current = None
        self._lease = None
        self._recheck_time = None
        self._revoked = True
        self._revocation_reason = reason
        self.stats.revocations += 1

    # ------------------------------------------------------------------ background renewal

    def start_renewal_timer(self, poll_interval: float = 0.05) -> None:
        """Poll the lease on a dedicated thread (Section 3.4.2 "dedicated
        thread as a timer"). ``poll_interval`` is wall-clock seconds between
        checks of the (possibly simulated) lease clock."""
        if self._renewal_thread is not None:
            return
        self._renewal_stop.clear()

        def loop() -> None:
            while not self._renewal_stop.wait(poll_interval):
                try:
                    if self.lease_expired():
                        self.check_for_update()
                except DrivolutionError:
                    continue

        self._renewal_thread = threading.Thread(target=loop, name="drivolution-renewal", daemon=True)
        self._renewal_thread.start()

    def stop_renewal_timer(self) -> None:
        if self._renewal_thread is None:
            return
        self._renewal_stop.set()
        self._renewal_thread.join(timeout=2.0)
        self._renewal_thread = None

    # ------------------------------------------------------------------ push notifications

    def subscribe_for_updates(self, server: Address, database: str = "") -> None:
        """Open a dedicated notification channel to ``server``.

        On an update-available push the bootloader immediately re-checks
        with the server (force=True), achieving near-instant upgrades
        instead of waiting for the lease to expire.
        """
        if self._notification_thread is not None:
            return
        channel = self._open_channel(server)
        channel.send(messages.make_subscribe(self.config.client_id, self.config.api_name, database))
        ack = channel.recv(timeout=self.config.request_timeout)
        if ack.get("type") != "drivolution_subscribe_ack":
            channel.close()
            raise BootloaderError(f"subscription rejected: {ack!r}")
        self._notification_channel = channel

        def listen() -> None:
            while True:
                try:
                    message = channel.recv(timeout=None)
                except TransportError:
                    return
                if message.get("type") == messages.UPDATE_AVAILABLE:
                    try:
                        self.check_for_update(force=True)
                    except DrivolutionError:
                        continue

        self._notification_thread = threading.Thread(
            target=listen, name="drivolution-notify", daemon=True
        )
        self._notification_thread.start()

    def unsubscribe(self) -> None:
        if self._notification_channel is not None:
            self._notification_channel.close()
            self._notification_channel = None
        self._notification_thread = None

    # ------------------------------------------------------------------ shutdown

    def shutdown(self) -> None:
        """Stop background threads and close every managed connection."""
        self.stop_renewal_timer()
        self.unsubscribe()
        for connection in self.active_connections():
            connection.close()
