"""Clocks.

Lease expiry, permission date windows and downtime measurements all depend
on time. Production code uses the wall clock; experiments and tests use a
:class:`SimulatedClock` they can advance deterministically, so a "one
hour" lease expires instantly when the experiment says so.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

#: A clock is just a zero-argument callable returning seconds.
Clock = Callable[[], float]


class SimulatedClock:
    """A manually advanced clock, safe to share across threads."""

    def __init__(self, start: float = 1_000_000.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()

    def __call__(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ValueError("cannot move a simulated clock backwards")
        with self._lock:
            self._now += seconds
            return self._now

    def advance_ms(self, milliseconds: float) -> float:
        return self.advance(milliseconds / 1000.0)

    def set(self, now: float) -> None:
        with self._lock:
            self._now = float(now)


def wall_clock() -> float:
    """The real time (thin wrapper so call sites read uniformly)."""
    return time.time()
