"""Drivolution as a license server (paper Section 5.4.2).

Some databases (the paper's example is DB2's per-user licensing) require
each client application to hold a license key, shipped as a separate
package next to the driver. Drivolution can manage those licenses
centrally:

- **static** assignment: each known client always receives the same
  license, so there is never contention (but capacity is wasted on idle
  clients);
- **dynamic** assignment: a pool of licenses is leased out on demand; a
  license returns to the pool when the client releases it or when its
  lease expires without renewal (the failure-detector path).
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import DrivolutionError


class LicenseError(DrivolutionError):
    """No license available or invalid license operation."""


class LicensePolicy(enum.Enum):
    """How licenses are assigned to clients."""

    STATIC = "static"
    DYNAMIC = "dynamic"


@dataclass
class LicenseGrant:
    """One license currently held by a client."""

    license_key: str
    client_id: str
    granted_at: float
    expires_at: float
    released_at: Optional[float] = None

    def is_active(self, now: float) -> bool:
        return self.released_at is None and now < self.expires_at


@dataclass
class LicenseStats:
    grants: int = 0
    releases: int = 0
    reclaimed: int = 0
    denials: int = 0


class LicenseServer:
    """Manages a pool of license keys with lease-based reclamation."""

    def __init__(
        self,
        license_keys: List[str],
        policy: LicensePolicy = LicensePolicy.DYNAMIC,
        lease_time_ms: int = 60_000,
        clock: Callable[[], float] = time.time,
        static_assignments: Optional[Dict[str, str]] = None,
    ) -> None:
        if not license_keys:
            raise LicenseError("license pool must not be empty")
        self._keys = list(license_keys)
        self.policy = policy
        self.lease_time_ms = lease_time_ms
        self._clock = clock
        self._static = dict(static_assignments or {})
        if policy == LicensePolicy.STATIC:
            unknown = set(self._static.values()) - set(self._keys)
            if unknown:
                raise LicenseError(f"static assignments reference unknown keys: {sorted(unknown)}")
        self._grants: Dict[str, LicenseGrant] = {}  # license_key -> grant
        self._lock = threading.Lock()
        self.stats = LicenseStats()

    # -- acquisition -------------------------------------------------------------

    def acquire(self, client_id: str) -> LicenseGrant:
        """Grant a license to ``client_id`` or raise :class:`LicenseError`."""
        with self._lock:
            now = self._clock()
            self._reclaim_expired_locked(now)
            existing = self._grant_for_client_locked(client_id, now)
            if existing is not None:
                # Re-acquisition renews the lease on the same key.
                existing.expires_at = now + self.lease_time_ms / 1000.0
                return existing
            if self.policy == LicensePolicy.STATIC:
                key = self._static.get(client_id)
                if key is None:
                    self.stats.denials += 1
                    raise LicenseError(f"client {client_id!r} has no statically assigned license")
                holder = self._grants.get(key)
                if holder is not None and holder.is_active(now) and holder.client_id != client_id:
                    self.stats.denials += 1
                    raise LicenseError(f"license {key!r} statically assigned but held by another client")
            else:
                key = self._first_free_key_locked(now)
                if key is None:
                    self.stats.denials += 1
                    raise LicenseError("no license available in the pool")
            grant = LicenseGrant(
                license_key=key,
                client_id=client_id,
                granted_at=now,
                expires_at=now + self.lease_time_ms / 1000.0,
            )
            self._grants[key] = grant
            self.stats.grants += 1
            return grant

    def renew(self, client_id: str) -> LicenseGrant:
        """Extend the lease of the client's current license."""
        with self._lock:
            now = self._clock()
            grant = self._grant_for_client_locked(client_id, now)
            if grant is None:
                raise LicenseError(f"client {client_id!r} holds no active license")
            grant.expires_at = now + self.lease_time_ms / 1000.0
            return grant

    def release(self, client_id: str) -> bool:
        """Voluntary give-back when the driver is unloaded."""
        with self._lock:
            now = self._clock()
            grant = self._grant_for_client_locked(client_id, now)
            if grant is None:
                return False
            grant.released_at = now
            self.stats.releases += 1
            return True

    # -- reclamation (failure detector) -----------------------------------------------

    def reclaim_expired(self) -> int:
        """Return expired, unreleased licenses to the pool."""
        with self._lock:
            return self._reclaim_expired_locked(self._clock())

    def _reclaim_expired_locked(self, now: float) -> int:
        reclaimed = 0
        for key, grant in list(self._grants.items()):
            if grant.released_at is None and now >= grant.expires_at:
                grant.released_at = now
                reclaimed += 1
        self.stats.reclaimed += reclaimed
        return reclaimed

    # -- queries ----------------------------------------------------------------------

    def _grant_for_client_locked(self, client_id: str, now: float) -> Optional[LicenseGrant]:
        for grant in self._grants.values():
            if grant.client_id == client_id and grant.is_active(now):
                return grant
        return None

    def _first_free_key_locked(self, now: float) -> Optional[str]:
        for key in self._keys:
            grant = self._grants.get(key)
            if grant is None or not grant.is_active(now):
                return key
        return None

    def available_count(self) -> int:
        with self._lock:
            now = self._clock()
            self._reclaim_expired_locked(now)
            return sum(
                1
                for key in self._keys
                if key not in self._grants or not self._grants[key].is_active(now)
            )

    def active_grants(self) -> List[LicenseGrant]:
        with self._lock:
            now = self._clock()
            return [grant for grant in self._grants.values() if grant.is_active(now)]

    @property
    def capacity(self) -> int:
        return len(self._keys)
