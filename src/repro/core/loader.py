"""Dynamic driver loading (the analogue of Java dynamic class loading).

The bootloader receives driver code as a BLOB, decodes it according to its
``binary_format`` and loads it "dynamically into the application's memory"
(Section 3.1.1). Here the code is Python source executed into a fresh,
isolated module namespace — one namespace per loaded driver, so multiple
driver implementations and versions co-exist without clashing (the paper's
requirement for switching a client from one version to another, and for
per-driver extension bundles not conflicting with the application's own
libraries).

Security: when the loader is configured with a :class:`DriverSigner`, it
verifies the package signature before executing anything, which is the
"separate trusted wrapper in the bootloader [that] verifies signatures".
"""

from __future__ import annotations

import threading
import types
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core.package import DriverPackage, DriverSigner, PackageError
from repro.errors import DrivolutionError


class DriverLoadError(DrivolutionError):
    """The driver package could not be verified, decoded or executed."""


@dataclass
class LoadedDriver:
    """A driver package that has been executed into a module namespace."""

    package: DriverPackage
    module: types.ModuleType
    driver_id: Optional[int] = None
    lease_id: Optional[str] = None
    generation: int = 0
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.package.name

    @property
    def version(self) -> tuple:
        return self.package.driver_version

    def connect(self, url: str, **options: Any):
        """Open a connection through the loaded driver's ``connect``."""
        connect = getattr(self.module, "connect", None)
        if not callable(connect):
            raise DriverLoadError(f"driver {self.name!r} exposes no connect() callable")
        return connect(url, **options)

    def info(self) -> Dict[str, Any]:
        """Driver metadata constants exported by the loaded module."""
        return {
            "driver_name": getattr(self.module, "DRIVER_NAME", self.name),
            "driver_version": getattr(self.module, "DRIVER_VERSION", self.version),
            "api_name": getattr(self.module, "API_NAME", self.package.api_name),
            "protocol_version": getattr(self.module, "PROTOCOL_VERSION", None),
            "extensions": list(getattr(self.module, "EXTENSIONS", [])),
            "preconfigured_url": getattr(self.module, "PRECONFIGURED_URL", None),
            "generation": self.generation,
        }


class DriverLoader:
    """Loads driver packages into isolated module namespaces."""

    def __init__(
        self,
        signer: Optional[DriverSigner] = None,
        require_signature: bool = False,
        extra_globals: Optional[Dict[str, Any]] = None,
    ) -> None:
        if require_signature and signer is None:
            raise DriverLoadError("require_signature=True needs a signer")
        self._signer = signer
        self._require_signature = require_signature
        self._extra_globals = dict(extra_globals or {})
        self._loaded: List[LoadedDriver] = []
        self._generation = 0
        self._lock = threading.Lock()

    # -- loading ------------------------------------------------------------

    def load(
        self,
        package: DriverPackage,
        driver_id: Optional[int] = None,
        lease_id: Optional[str] = None,
    ) -> LoadedDriver:
        """Verify, decode and execute ``package``; returns the loaded driver."""
        self._verify(package)
        source = package.decode_source()
        with self._lock:
            self._generation += 1
            generation = self._generation
        module_name = f"drivolution_driver_{_sanitize(package.name)}_{generation}"
        module = types.ModuleType(module_name)
        module.__dict__.update(self._extra_globals)
        module.__dict__["__drivolution_package__"] = package.name
        try:
            code = compile(source, filename=f"<driver:{package.name}>", mode="exec")
            exec(code, module.__dict__)  # noqa: S102 - dynamic driver loading is the point
        except PackageError:
            raise
        except Exception as exc:
            raise DriverLoadError(f"driver {package.name!r} failed to load: {exc}") from exc
        if not callable(module.__dict__.get("connect")):
            raise DriverLoadError(
                f"driver {package.name!r} does not define a connect() entry point"
            )
        loaded = LoadedDriver(
            package=package,
            module=module,
            driver_id=driver_id,
            lease_id=lease_id,
            generation=generation,
        )
        with self._lock:
            self._loaded.append(loaded)
        return loaded

    def _verify(self, package: DriverPackage) -> None:
        if self._signer is None:
            return
        if package.signature is None:
            if self._require_signature:
                raise DriverLoadError(f"driver {package.name!r} is unsigned")
            return
        try:
            self._signer.require_valid(package)
        except PackageError as exc:
            raise DriverLoadError(str(exc)) from exc

    # -- management ------------------------------------------------------------

    def unload(self, loaded: LoadedDriver) -> None:
        """Drop a loaded driver (its module namespace becomes collectable)."""
        with self._lock:
            if loaded in self._loaded:
                self._loaded.remove(loaded)

    def loaded_drivers(self) -> List[LoadedDriver]:
        with self._lock:
            return list(self._loaded)

    @property
    def load_count(self) -> int:
        with self._lock:
            return self._generation


def _sanitize(name: str) -> str:
    return "".join(char if char.isalnum() else "_" for char in name)
