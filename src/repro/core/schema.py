"""Drivolution information-schema tables (paper Tables 1 and 2).

Drivers are part of the database schema: this module creates the
``information_schema.drivers`` table (Table 1), the
``information_schema.driver_permission`` table (Table 2) and the
``information_schema.leases`` table (Section 4.1.1: "Leases can be stored
in a table that has the same format as the distribution table") inside any
:class:`~repro.sqlengine.database.Database`, using ordinary DDL through an
ordinary session — exactly the paper's point that "no new development is
required and standard database mechanisms can be used to store drivers in
the database".
"""

from __future__ import annotations

from typing import Callable

DRIVERS_TABLE = "information_schema.drivers"
PERMISSIONS_TABLE = "information_schema.driver_permission"
LEASES_TABLE = "information_schema.leases"

#: DDL for Table 1 — the driver table.
CREATE_DRIVERS_TABLE = f"""
CREATE TABLE IF NOT EXISTS {DRIVERS_TABLE} (
    driver_id INTEGER NOT NULL PRIMARY KEY,
    api_name VARCHAR NOT NULL,
    api_version_major INTEGER,
    api_version_minor INTEGER,
    platform VARCHAR,
    driver_version_major INTEGER,
    driver_version_minor INTEGER,
    driver_version_micro INTEGER,
    binary_code BLOB NOT NULL,
    binary_format VARCHAR NOT NULL,
    driver_name VARCHAR,
    signature VARCHAR
)
"""

#: DDL for Table 2 — the driver_permission (distribution) table.
CREATE_PERMISSIONS_TABLE = f"""
CREATE TABLE IF NOT EXISTS {PERMISSIONS_TABLE} (
    permission_id INTEGER NOT NULL PRIMARY KEY,
    user VARCHAR,
    client_ip VARCHAR,
    database VARCHAR,
    driver_id INTEGER NOT NULL REFERENCES {DRIVERS_TABLE}(driver_id),
    driver_options VARCHAR,
    start_date TIMESTAMP,
    end_date TIMESTAMP,
    lease_time_in_ms BIGINT,
    renew_policy INTEGER,
    expiration_policy INTEGER,
    transfer_method INTEGER
)
"""

#: DDL for the lease log table (same shape as the distribution table plus
#: client identification and expiry), used for logging and for finding the
#: client's state when a lease must be renewed (Section 4.1.1).
CREATE_LEASES_TABLE = f"""
CREATE TABLE IF NOT EXISTS {LEASES_TABLE} (
    lease_id VARCHAR NOT NULL PRIMARY KEY,
    client_id VARCHAR NOT NULL,
    user VARCHAR,
    client_ip VARCHAR,
    database VARCHAR,
    driver_id INTEGER NOT NULL REFERENCES {DRIVERS_TABLE}(driver_id),
    granted_at TIMESTAMP NOT NULL,
    expires_at TIMESTAMP NOT NULL,
    released_at TIMESTAMP,
    renew_policy INTEGER,
    expiration_policy INTEGER
)
"""

#: Extra columns compared to the paper's tables: ``driver_name`` and
#: ``signature`` in the drivers table (the paper mentions code signing but
#: leaves its storage unspecified), ``permission_id`` as an explicit
#: primary key, and lease identification columns. They do not change any
#: behaviour described in the paper; they make the rows self-describing.


def install_drivolution_schema(execute: Callable[[str], object]) -> None:
    """Create the Drivolution tables through any ``execute(sql)`` callable.

    ``execute`` can be a local SQL session's ``execute`` (in-database and
    standalone servers) or a remote cursor's ``execute`` (the external
    server of Section 4.1.3 installing the schema through a legacy
    driver). ``IF NOT EXISTS`` makes the call idempotent.
    """
    execute(CREATE_DRIVERS_TABLE)
    execute(CREATE_PERMISSIONS_TABLE)
    execute(CREATE_LEASES_TABLE)
