"""Drivolution bootstrap protocol messages (paper Section 3.4, Tables 3 and 4).

The protocol is deliberately DHCP-like and has only a handful of message
types:

- ``DRIVOLUTION_REQUEST`` — sent by the bootloader with the database name,
  credentials, API name and optional version, client platform and optional
  preferences,
- ``DRIVOLUTION_OFFER`` — sent back by the server with the lease, the
  policies and the driver location/format (the driver itself travels in a
  ``FILE_DATA`` message after a ``FILE_REQUEST``),
- ``DRIVOLUTION_ERROR`` — no matching driver / invalid database / lease
  revoked, with an optional plain-text detail,
- ``DRIVOLUTION_DISCOVER`` — broadcast variant of the request used with
  replicated servers,
- ``FILE_REQUEST`` / ``FILE_DATA`` — the driver file transfer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import DrivolutionError

REQUEST = "drivolution_request"
OFFER = "drivolution_offer"
ERROR = "drivolution_error"
DISCOVER = "drivolution_discover"
FILE_REQUEST = "drivolution_file_request"
FILE_DATA = "drivolution_file_data"
RELEASE = "drivolution_release"
SUBSCRIBE = "drivolution_subscribe"
UPDATE_AVAILABLE = "drivolution_update_available"

#: Prefix shared by every Drivolution message type; the in-database server
#: binding registers this prefix as a database-server extension.
MESSAGE_PREFIX = "drivolution_"


class ProtocolError(DrivolutionError):
    """Malformed or unexpected Drivolution protocol message."""


@dataclass
class DrivolutionRequest:
    """``DRIVOLUTION_REQUEST`` payload."""

    database: str
    api_name: str
    client_platform: str
    user: Optional[str] = None
    password: Optional[str] = None
    api_version: Optional[Tuple[int, int]] = None
    preferred_binary_format: Optional[str] = None
    preferred_driver_version: Optional[Tuple[int, int, int]] = None
    client_id: str = ""
    client_ip: str = ""
    current_lease_id: Optional[str] = None
    requested_extensions: List[str] = field(default_factory=list)

    def to_wire(self) -> Dict[str, Any]:
        return {
            "type": REQUEST,
            "database": self.database,
            "api_name": self.api_name,
            "client_platform": self.client_platform,
            "user": self.user,
            "password": self.password,
            "api_version": list(self.api_version) if self.api_version else None,
            "preferred_binary_format": self.preferred_binary_format,
            "preferred_driver_version": (
                list(self.preferred_driver_version) if self.preferred_driver_version else None
            ),
            "client_id": self.client_id,
            "client_ip": self.client_ip,
            "current_lease_id": self.current_lease_id,
            "requested_extensions": list(self.requested_extensions),
        }

    @staticmethod
    def from_wire(message: Dict[str, Any]) -> "DrivolutionRequest":
        if message.get("type") not in (REQUEST, DISCOVER):
            raise ProtocolError(f"expected {REQUEST}, got {message.get('type')!r}")
        api_version = message.get("api_version")
        driver_version = message.get("preferred_driver_version")
        return DrivolutionRequest(
            database=str(message.get("database", "")),
            api_name=str(message.get("api_name", "")),
            client_platform=str(message.get("client_platform", "")),
            user=message.get("user"),
            password=message.get("password"),
            api_version=tuple(api_version) if api_version else None,
            preferred_binary_format=message.get("preferred_binary_format"),
            preferred_driver_version=tuple(driver_version) if driver_version else None,
            client_id=str(message.get("client_id", "")),
            client_ip=str(message.get("client_ip", "")),
            current_lease_id=message.get("current_lease_id"),
            requested_extensions=list(message.get("requested_extensions") or []),
        )


@dataclass
class DrivolutionDiscover(DrivolutionRequest):
    """``DRIVOLUTION_DISCOVER`` — same payload as a request, broadcast."""

    def to_wire(self) -> Dict[str, Any]:
        wire = super().to_wire()
        wire["type"] = DISCOVER
        return wire


@dataclass
class DrivolutionOffer:
    """``DRIVOLUTION_OFFER`` payload.

    ``driver_location`` identifies the file to request with
    ``FILE_REQUEST``; ``includes_file`` is True when the offer is a pure
    lease renewal confirmation with no new driver to download (Table 4:
    "a DRIVOLUTION_OFFER without data file instructs the bootloader to
    continue to use the same driver").
    """

    lease_id: str
    lease_time_ms: int
    driver_id: int
    driver_location: str
    binary_format: str
    renew_policy: int
    expiration_policy: int
    driver_version: Tuple[int, int, int] = (1, 0, 0)
    driver_options: Dict[str, Any] = field(default_factory=dict)
    includes_file: bool = True
    server_id: str = ""

    def to_wire(self) -> Dict[str, Any]:
        return {
            "type": OFFER,
            "lease_id": self.lease_id,
            "lease_time_ms": self.lease_time_ms,
            "driver_id": self.driver_id,
            "driver_location": self.driver_location,
            "binary_format": self.binary_format,
            "renew_policy": int(self.renew_policy),
            "expiration_policy": int(self.expiration_policy),
            "driver_version": list(self.driver_version),
            "driver_options": self.driver_options,
            "includes_file": self.includes_file,
            "server_id": self.server_id,
        }

    @staticmethod
    def from_wire(message: Dict[str, Any]) -> "DrivolutionOffer":
        if message.get("type") != OFFER:
            raise ProtocolError(f"expected {OFFER}, got {message.get('type')!r}")
        return DrivolutionOffer(
            lease_id=str(message.get("lease_id", "")),
            lease_time_ms=int(message.get("lease_time_ms", 0)),
            driver_id=int(message.get("driver_id", -1)),
            driver_location=str(message.get("driver_location", "")),
            binary_format=str(message.get("binary_format", "")),
            renew_policy=int(message.get("renew_policy", 0)),
            expiration_policy=int(message.get("expiration_policy", 0)),
            driver_version=tuple(message.get("driver_version", (1, 0, 0))),
            driver_options=dict(message.get("driver_options") or {}),
            includes_file=bool(message.get("includes_file", True)),
            server_id=str(message.get("server_id", "")),
        )


@dataclass
class DrivolutionErrorMessage:
    """``DRIVOLUTION_ERROR`` payload with an optional plain-text detail."""

    code: str
    detail: str = ""

    def to_wire(self) -> Dict[str, Any]:
        return {"type": ERROR, "code": self.code, "detail": self.detail}

    @staticmethod
    def from_wire(message: Dict[str, Any]) -> "DrivolutionErrorMessage":
        if message.get("type") != ERROR:
            raise ProtocolError(f"expected {ERROR}, got {message.get('type')!r}")
        return DrivolutionErrorMessage(
            code=str(message.get("code", "unknown")), detail=str(message.get("detail", ""))
        )


def make_file_request(driver_location: str, lease_id: str) -> Dict[str, Any]:
    """``FILE_REQUEST(driver_file)``."""
    return {"type": FILE_REQUEST, "driver_location": driver_location, "lease_id": lease_id}


def make_file_data(package_wire: Dict[str, Any]) -> Dict[str, Any]:
    """``FILE_DATA(binary_code)`` carrying a serialised driver package."""
    return {"type": FILE_DATA, "package": package_wire}


def make_release(lease_id: str, client_id: str) -> Dict[str, Any]:
    """Voluntary lease release (used by the license-server case study)."""
    return {"type": RELEASE, "lease_id": lease_id, "client_id": client_id}


def make_subscribe(client_id: str, api_name: str, database: str) -> Dict[str, Any]:
    """Open a dedicated notification channel (paper Section 3.2: the server
    can "immediately signal that a new driver is available")."""
    return {"type": SUBSCRIBE, "client_id": client_id, "api_name": api_name, "database": database}


def make_update_available(api_name: str, database: Optional[str] = None) -> Dict[str, Any]:
    """Pushed by the server to subscribed bootloaders on driver installs."""
    return {"type": UPDATE_AVAILABLE, "api_name": api_name, "database": database}
