"""DBA-facing administration operations (paper Sections 3.2, 5.1, 5.2).

The admin wraps a :class:`~repro.core.server.DrivolutionServer` (or a set
of replicated servers) and exposes the operations the case studies
perform:

- install a driver (the one-step upgrade of Section 3.2),
- revoke/disable a driver,
- grant distribution permissions (who gets which driver, with which lease
  time and policies),
- push a pre-configured driver for failover (Section 5.2): mark the old
  driver expired and make the new one the offered driver,
- roll back an upgrade by restoring the previous driver.

Every operation optionally fans out to replica servers (the embedded
Sequoia deployment of Section 5.3.2 replicates the Drivolution state in
each controller) and triggers notification-channel pushes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.core.constants import DEFAULT_LEASE_TIME_MS, ExpirationPolicy, RenewPolicy
from repro.core.package import DriverPackage, DriverSigner
from repro.core.registry import DriverPermission
from repro.core.server import DrivolutionServer
from repro.errors import DrivolutionError


@dataclass
class InstallRecord:
    """Result of installing one driver across one or more servers."""

    driver_name: str
    driver_ids: Dict[str, int] = field(default_factory=dict)  # server_id -> driver_id
    permission_ids: Dict[str, int] = field(default_factory=dict)
    notified_clients: int = 0

    def driver_id_on(self, server: DrivolutionServer) -> int:
        return self.driver_ids[server.server_id]


class DrivolutionAdmin:
    """Administration console for one or more (replicated) Drivolution servers."""

    def __init__(
        self,
        servers: Sequence[DrivolutionServer],
        signer: Optional[DriverSigner] = None,
        default_lease_time_ms: int = DEFAULT_LEASE_TIME_MS,
        default_renew_policy: RenewPolicy = RenewPolicy.UPGRADE,
        default_expiration_policy: ExpirationPolicy = ExpirationPolicy.AFTER_COMMIT,
    ) -> None:
        if not servers:
            raise DrivolutionError("admin needs at least one Drivolution server")
        self.servers = list(servers)
        self.signer = signer
        self.default_lease_time_ms = default_lease_time_ms
        self.default_renew_policy = default_renew_policy
        self.default_expiration_policy = default_expiration_policy
        #: Ordered log of administrative steps, used by the lifecycle
        #: experiments to count operations (paper Table 5).
        self.operation_log: List[str] = []

    # -- install / upgrade -------------------------------------------------------

    def install_driver(
        self,
        package: DriverPackage,
        database: Optional[str] = None,
        user: Optional[str] = None,
        client_ip: Optional[str] = None,
        driver_options: Optional[Dict[str, Any]] = None,
        lease_time_ms: Optional[int] = None,
        renew_policy: Optional[RenewPolicy] = None,
        expiration_policy: Optional[ExpirationPolicy] = None,
        start_date: Optional[float] = None,
        end_date: Optional[float] = None,
        notify: bool = True,
    ) -> InstallRecord:
        """Install a driver and grant its distribution permission.

        This is the paper's single-step client-wide upgrade: one INSERT into
        the drivers table (plus its permission row) on the Drivolution
        server, replicated to every peer server given at construction time.
        """
        if self.signer is not None and package.signature is None:
            package = package.signed_by(self.signer)
        record = InstallRecord(driver_name=package.name)
        for server in self.servers:
            driver_id = server.registry.install_driver(package)
            record.driver_ids[server.server_id] = driver_id
            permission = DriverPermission(
                driver_id=driver_id,
                database=database,
                user=user,
                client_ip=client_ip,
                driver_options=dict(driver_options or {}),
                start_date=start_date,
                end_date=end_date,
                lease_time_in_ms=(
                    lease_time_ms if lease_time_ms is not None else self.default_lease_time_ms
                ),
                renew_policy=(
                    renew_policy if renew_policy is not None else self.default_renew_policy
                ),
                expiration_policy=(
                    expiration_policy
                    if expiration_policy is not None
                    else self.default_expiration_policy
                ),
            )
            record.permission_ids[server.server_id] = server.registry.grant_permission(permission)
        self.operation_log.append(f"install_driver:{package.name}")
        if notify:
            for server in self.servers:
                record.notified_clients += server.notify_update(package.api_name, database)
        return record

    def revoke_driver(self, driver_id_by_server: Dict[str, int], notify: bool = True, api_name: str = "") -> None:
        """Disable a driver on every server by expiring its permissions."""
        for server in self.servers:
            driver_id = driver_id_by_server.get(server.server_id)
            if driver_id is None:
                continue
            server.registry.revoke_permissions_for_driver(driver_id)
        self.operation_log.append(f"revoke_driver:{sorted(driver_id_by_server.values())}")
        if notify and api_name:
            for server in self.servers:
                server.notify_update(api_name)

    def remove_driver(self, driver_id_by_server: Dict[str, int]) -> None:
        """Delete a driver entirely (permissions and leases included)."""
        for server in self.servers:
            driver_id = driver_id_by_server.get(server.server_id)
            if driver_id is None:
                continue
            server.registry.remove_driver(driver_id)
        self.operation_log.append(f"remove_driver:{sorted(driver_id_by_server.values())}")

    def push_upgrade(
        self,
        new_package: DriverPackage,
        old_record: Optional[InstallRecord] = None,
        database: Optional[str] = None,
        lease_time_ms: Optional[int] = None,
        renew_policy: RenewPolicy = RenewPolicy.UPGRADE,
        expiration_policy: Optional[ExpirationPolicy] = None,
        notify: bool = True,
    ) -> InstallRecord:
        """Upgrade clients to ``new_package``: expire the old driver's
        permissions and install the new driver in one administrative step.

        Used by the master/slave failover case study: ``new_package`` is the
        pre-configured DBslave driver and ``old_record`` the DBmaster one.
        """
        if old_record is not None:
            self.revoke_driver(old_record.driver_ids, notify=False)
        return self.install_driver(
            new_package,
            database=database,
            lease_time_ms=lease_time_ms,
            renew_policy=renew_policy,
            expiration_policy=expiration_policy,
            notify=notify,
        )

    def rollback_upgrade(self, bad_record: InstallRecord, good_package: DriverPackage, **kwargs) -> InstallRecord:
        """Revert a faulty upgrade: expire the bad driver and re-offer the
        known-good package (paper Section 3.2: "the administrator can revert
        the driver in the Drivolution server")."""
        self.revoke_driver(bad_record.driver_ids, notify=False)
        record = self.install_driver(good_package, **kwargs)
        self.operation_log.append(f"rollback_to:{good_package.name}")
        return record

    # -- observability --------------------------------------------------------------

    def installed_drivers(self) -> Dict[str, List[str]]:
        """Driver names installed on each server (sanity-check helper)."""
        return {
            server.server_id: [package.name for _id, package in server.registry.list_drivers()]
            for server in self.servers
        }

    def step_count(self) -> int:
        """Number of administrative operations performed so far."""
        return len(self.operation_log)
