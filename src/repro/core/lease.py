"""Leases: the DHCP-like validity window of a distributed driver.

A lease binds one client (bootloader instance) to one driver for a limited
time. The Drivolution server grants leases through the
:class:`LeaseManager`, which persists them in the ``leases`` table via the
registry (so replicated servers sharing a database also share lease
state), and answers the questions the server logic needs: is this lease
still valid, which clients currently hold a given driver, which leases
have expired without renewal (the failure-detector used by the license
server case study).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.constants import ExpirationPolicy, RenewPolicy
from repro.core.registry import DriverRegistry
from repro.errors import DrivolutionError


class LeaseError(DrivolutionError):
    """Invalid lease operation."""


@dataclass
class Lease:
    """An issued lease as seen by the server."""

    lease_id: str
    client_id: str
    driver_id: int
    granted_at: float
    expires_at: float
    renew_policy: RenewPolicy
    expiration_policy: ExpirationPolicy
    database: Optional[str] = None
    user: Optional[str] = None
    released_at: Optional[float] = None

    def remaining_seconds(self, now: float) -> float:
        return max(0.0, self.expires_at - now)

    def is_expired(self, now: float) -> bool:
        return now >= self.expires_at

    def is_active(self, now: float) -> bool:
        return self.released_at is None and not self.is_expired(now)

    @staticmethod
    def from_row(row: Dict) -> "Lease":
        return Lease(
            lease_id=str(row["lease_id"]),
            client_id=str(row["client_id"]),
            driver_id=int(row["driver_id"]),
            granted_at=float(row["granted_at"]),
            expires_at=float(row["expires_at"]),
            renew_policy=RenewPolicy.from_value(row.get("renew_policy") or 0),
            expiration_policy=ExpirationPolicy.from_value(row.get("expiration_policy") or 0),
            database=row.get("database"),
            user=row.get("user"),
            released_at=row.get("released_at"),
        )


class LeaseManager:
    """Grants, renews, releases and reaps leases through the registry."""

    def __init__(self, registry: DriverRegistry, clock: Callable[[], float] = time.time) -> None:
        self._registry = registry
        self._clock = clock

    # -- grant / renew / release -------------------------------------------------

    def grant(
        self,
        client_id: str,
        driver_id: int,
        lease_time_ms: int,
        renew_policy: RenewPolicy,
        expiration_policy: ExpirationPolicy,
        database: Optional[str] = None,
        user: Optional[str] = None,
        client_ip: Optional[str] = None,
    ) -> Lease:
        """Grant a new lease and log it in the leases table."""
        if lease_time_ms <= 0:
            raise LeaseError(f"lease time must be positive, got {lease_time_ms}")
        row = self._registry.record_lease(
            client_id=client_id,
            driver_id=driver_id,
            database=database,
            user=user,
            client_ip=client_ip,
            lease_time_ms=lease_time_ms,
            renew_policy=renew_policy,
            expiration_policy=expiration_policy,
        )
        return Lease(
            lease_id=row["lease_id"],
            client_id=client_id,
            driver_id=driver_id,
            granted_at=row["granted_at"],
            expires_at=row["expires_at"],
            renew_policy=renew_policy,
            expiration_policy=expiration_policy,
            database=database,
            user=user,
        )

    def renew(
        self,
        previous_lease_id: Optional[str],
        client_id: str,
        driver_id: int,
        lease_time_ms: int,
        renew_policy: RenewPolicy,
        expiration_policy: ExpirationPolicy,
        database: Optional[str] = None,
        user: Optional[str] = None,
    ) -> Lease:
        """Release the previous lease (if any) and grant a fresh one."""
        if previous_lease_id:
            self._registry.release_lease(previous_lease_id)
        return self.grant(
            client_id=client_id,
            driver_id=driver_id,
            lease_time_ms=lease_time_ms,
            renew_policy=renew_policy,
            expiration_policy=expiration_policy,
            database=database,
            user=user,
        )

    def release(self, lease_id: str) -> bool:
        """Voluntary release by the client (license give-back)."""
        return self._registry.release_lease(lease_id)

    # -- queries -----------------------------------------------------------------

    def get(self, lease_id: str) -> Optional[Lease]:
        row = self._registry.get_lease(lease_id)
        return Lease.from_row(row) if row else None

    def active_leases(self, driver_id: Optional[int] = None) -> List[Lease]:
        return [Lease.from_row(row) for row in self._registry.active_leases(driver_id)]

    def active_lease_count(self, driver_id: Optional[int] = None) -> int:
        return len(self.active_leases(driver_id))

    def client_history(self, client_id: str) -> List[Lease]:
        return [Lease.from_row(row) for row in self._registry.leases_for_client(client_id)]

    def expired_unreleased(self) -> List[Lease]:
        """Leases whose holders disappeared without renewing or releasing.

        This is the failure detector of the license-server case study: a
        client that died keeps its license only until the lease expires.
        """
        now = self._clock()
        return [
            lease
            for lease in (Lease.from_row(row) for row in self._registry.unreleased_leases())
            if lease.is_expired(now)
        ]
