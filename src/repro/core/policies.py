"""Renew and expiration policies applied to live connections (Section 3.3).

When a driver is upgraded or revoked, existing connections created with
the old driver must be terminated before the old driver can be unloaded.
The *expiration policy* decides how aggressively:

- ``AFTER_CLOSE`` — wait for the application to close each connection
  itself. Nothing is forced; with connection pools this can take
  arbitrarily long (the paper explicitly warns about this).
- ``AFTER_COMMIT`` — connections that are idle (no transaction in flight)
  are closed immediately; connections inside a transaction are closed as
  soon as that transaction commits or rolls back.
- ``IMMEDIATE`` — every connection is terminated right away, aborting any
  in-flight transaction.

The functions here operate on the bootloader's
:class:`~repro.core.bootloader.ManagedConnection` wrappers and return a
:class:`TransitionReport` describing what happened, which the experiments
use to measure aborted transactions and time-to-full-transition per
policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List

from repro.core.constants import ExpirationPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.core.bootloader import ManagedConnection


@dataclass
class TransitionReport:
    """Outcome of applying an expiration policy to a set of connections."""

    policy: ExpirationPolicy
    total_connections: int = 0
    closed_immediately: int = 0
    aborted_transactions: int = 0
    deferred_to_commit: int = 0
    deferred_to_close: int = 0
    already_closed: int = 0
    details: List[str] = field(default_factory=list)

    @property
    def still_open(self) -> int:
        return self.deferred_to_commit + self.deferred_to_close


def apply_expiration_policy(
    connections: List["ManagedConnection"], policy: ExpirationPolicy
) -> TransitionReport:
    """Transition ``connections`` off their (old) driver according to ``policy``."""
    report = TransitionReport(policy=policy, total_connections=len(connections))
    for managed in connections:
        if managed.closed:
            report.already_closed += 1
            continue
        if policy == ExpirationPolicy.IMMEDIATE:
            if managed.in_transaction:
                report.aborted_transactions += 1
                report.details.append(f"{managed.connection_id}: aborted in-flight transaction")
            managed.force_close()
            report.closed_immediately += 1
        elif policy == ExpirationPolicy.AFTER_COMMIT:
            if managed.in_transaction:
                managed.close_after_commit()
                report.deferred_to_commit += 1
                report.details.append(f"{managed.connection_id}: will close after commit")
            else:
                managed.force_close()
                report.closed_immediately += 1
        elif policy == ExpirationPolicy.AFTER_CLOSE:
            managed.mark_stale()
            report.deferred_to_close += 1
            report.details.append(f"{managed.connection_id}: waiting for application close")
        else:  # pragma: no cover - exhaustive over the enum
            raise ValueError(f"unknown expiration policy {policy!r}")
    return report
