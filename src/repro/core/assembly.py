"""On-demand driver assembly (paper Section 5.4.1).

Some drivers are split into a base package plus optional feature packages:
internationalisation bundles (NLS), GIS extensions, Kerberos security
libraries, license keys. Shipping every client the monolithic
"everything" driver wastes bandwidth and loads unused code; Drivolution
can instead assemble, per client, exactly the base + extensions that
client requested (statically via the connection URL, or lazily when the
bootloader traps a missing-feature error).

The :class:`DriverAssembler` composes Python driver source from a base
template and registered extension fragments, producing a
:class:`~repro.core.package.DriverPackage` whose size reflects exactly the
features included — which is what experiment E9 measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.constants import BinaryFormat
from repro.core.package import DriverPackage
from repro.errors import DrivolutionError


class AssemblyError(DrivolutionError):
    """Unknown extension or invalid assembly request."""


@dataclass(frozen=True)
class ExtensionPackage:
    """One optional driver feature.

    ``source_fragment`` is Python source appended to the base driver; it
    typically registers entries in the module-level ``FEATURES`` dict.
    ``payload`` models the bulk of real extension packages (message
    catalogs, projection tables, crypto libraries): it is embedded into the
    driver source so that package sizes are realistic.
    """

    name: str
    source_fragment: str
    payload: bytes = b""
    description: str = ""

    @property
    def size_bytes(self) -> int:
        return len(self.source_fragment.encode("utf-8")) + len(self.payload)


class DriverAssembler:
    """Builds driver packages from a base source plus extension fragments."""

    def __init__(
        self,
        base_name: str,
        api_name: str,
        base_source: str,
        driver_version: Tuple[int, int, int] = (1, 0, 0),
        binary_format: str = BinaryFormat.PYSRC,
    ) -> None:
        self.base_name = base_name
        self.api_name = api_name
        self.base_source = base_source
        self.driver_version = driver_version
        self.binary_format = binary_format
        self._extensions: Dict[str, ExtensionPackage] = {}

    # -- registration -----------------------------------------------------------

    def register_extension(self, extension: ExtensionPackage) -> None:
        self._extensions[extension.name] = extension

    def available_extensions(self) -> List[str]:
        return sorted(self._extensions)

    def extension(self, name: str) -> ExtensionPackage:
        if name not in self._extensions:
            raise AssemblyError(
                f"unknown extension {name!r}; available: {self.available_extensions()}"
            )
        return self._extensions[name]

    # -- assembly ------------------------------------------------------------------

    def assemble(
        self,
        extensions: Iterable[str] = (),
        name: Optional[str] = None,
        platform: Optional[str] = None,
    ) -> DriverPackage:
        """Build a driver package containing the base plus ``extensions``."""
        requested = list(extensions)
        fragments: List[str] = [self.base_source]
        payload_blobs: List[Tuple[str, bytes]] = []
        for extension_name in requested:
            extension = self.extension(extension_name)
            fragments.append(f"\n# --- extension: {extension.name} ---\n")
            fragments.append(extension.source_fragment)
            if extension.payload:
                payload_blobs.append((extension.name, extension.payload))
        if requested:
            fragments.append(
                "\nEXTENSIONS = list(dict.fromkeys(list(EXTENSIONS) + "
                f"{requested!r}))\n"
            )
        for extension_name, payload in payload_blobs:
            # Embed the payload so the delivered package size reflects it.
            fragments.append(
                f"_PAYLOAD_{_identifier(extension_name)} = bytes.fromhex({payload.hex()!r})\n"
            )
        source = "".join(fragments)
        package_name = name or (
            self.base_name if not requested else f"{self.base_name}+{'+'.join(requested)}"
        )
        return DriverPackage.from_source(
            name=package_name,
            api_name=self.api_name,
            source=source,
            binary_format=self.binary_format,
            platform=platform,
            driver_version=self.driver_version,
            metadata={"extensions": requested},
        )

    def assemble_monolithic(self, name: Optional[str] = None) -> DriverPackage:
        """The "everything" driver every client would get without assembly."""
        return self.assemble(
            extensions=self.available_extensions(),
            name=name or f"{self.base_name}-monolithic",
        )

    # -- lazy extension resolution ------------------------------------------------------

    def resolve_missing_feature(self, feature: str) -> ExtensionPackage:
        """Map a missing feature probe to the extension providing it.

        Models the paper's lazy path where the bootloader traps a
        missing-class error and asks the server for the corresponding
        extension package.
        """
        for extension in self._extensions.values():
            if extension.name == feature or feature in extension.description:
                return extension
        raise AssemblyError(f"no extension provides feature {feature!r}")


def _identifier(name: str) -> str:
    return "".join(char if char.isalnum() else "_" for char in name).upper()
