"""Driver registry: SQL-backed management of the Drivolution tables.

The registry is the only component that touches the ``drivers``,
``driver_permission`` and ``leases`` tables, and it does so exclusively
through SQL so that it works identically whether the Drivolution server is

- **in-database** (executing against a local SQL session),
- **external** (executing through a legacy DB-API connection to a remote
  database, Section 4.1.3), or
- **standalone** (executing against its own embedded database,
  Section 4.1.4).

The two entry points used by the match-making logic are
:meth:`DriverRegistry.query_drivers` and
:meth:`DriverRegistry.query_permissions`, which run exactly the SQL of the
paper's Sample code 1 and Sample code 2.
"""

from __future__ import annotations

import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.constants import DEFAULT_LEASE_TIME_MS, ExpirationPolicy, RenewPolicy, TransferMethod
from repro.core.package import DriverPackage
from repro.core.schema import DRIVERS_TABLE, LEASES_TABLE, PERMISSIONS_TABLE, install_drivolution_schema
from repro.errors import DrivolutionError


class RegistryError(DrivolutionError):
    """Driver registry operation failed."""


class SqlBackend:
    """Minimal SQL access interface used by the registry.

    ``query`` returns a list of row dictionaries; ``execute`` returns the
    affected row count. Two adapters are provided: one for local
    :class:`~repro.sqlengine.engine.Session` objects and one for DB-API
    connections (the external-server deployment).
    """

    def query(self, sql: str, params: Optional[Dict[str, Any]] = None) -> List[Dict[str, Any]]:
        raise NotImplementedError

    def execute(self, sql: str, params: Optional[Dict[str, Any]] = None) -> int:
        raise NotImplementedError


class SessionBackend(SqlBackend):
    """Backend over a local SQL engine session (in-database / standalone)."""

    def __init__(self, session) -> None:
        self._session = session

    def query(self, sql: str, params: Optional[Dict[str, Any]] = None) -> List[Dict[str, Any]]:
        return self._session.execute(sql, params=params).as_dicts()

    def execute(self, sql: str, params: Optional[Dict[str, Any]] = None) -> int:
        return self._session.execute(sql, params=params).rowcount


class ConnectionBackend(SqlBackend):
    """Backend over a DB-API connection (external Drivolution server)."""

    def __init__(self, connection) -> None:
        self._connection = connection

    def query(self, sql: str, params: Optional[Dict[str, Any]] = None) -> List[Dict[str, Any]]:
        cursor = self._connection.cursor()
        cursor.execute(sql, params or {})
        columns = [item[0] for item in (cursor.description or [])]
        rows = cursor.fetchall()
        cursor.close()
        return [dict(zip(columns, row)) for row in rows]

    def execute(self, sql: str, params: Optional[Dict[str, Any]] = None) -> int:
        cursor = self._connection.cursor()
        cursor.execute(sql, params or {})
        rowcount = cursor.rowcount
        cursor.close()
        return rowcount


@dataclass
class DriverPermission:
    """One row of the driver_permission (distribution) table — paper Table 2."""

    driver_id: int
    user: Optional[str] = None
    client_ip: Optional[str] = None
    database: Optional[str] = None
    driver_options: Dict[str, Any] = field(default_factory=dict)
    start_date: Optional[float] = None
    end_date: Optional[float] = None
    lease_time_in_ms: int = DEFAULT_LEASE_TIME_MS
    renew_policy: RenewPolicy = RenewPolicy.RENEW
    expiration_policy: ExpirationPolicy = ExpirationPolicy.AFTER_COMMIT
    transfer_method: TransferMethod = TransferMethod.ANY
    permission_id: Optional[int] = None


def _encode_options(options: Dict[str, Any]) -> str:
    """Options travel in a VARCHAR column as ``k=v`` pairs (paper Table 2)."""
    return ";".join(f"{key}={value}" for key, value in sorted(options.items()))


def _decode_options(text: Optional[str]) -> Dict[str, str]:
    if not text:
        return {}
    options: Dict[str, str] = {}
    for pair in text.split(";"):
        if not pair:
            continue
        key, _, value = pair.partition("=")
        options[key] = value
    return options


class DriverRegistry:
    """CRUD and match-making queries over the Drivolution tables."""

    def __init__(self, backend: SqlBackend, clock: Callable[[], float] = time.time) -> None:
        self._backend = backend
        self._clock = clock

    # -- schema ----------------------------------------------------------------

    def install_schema(self) -> None:
        """Create the Drivolution tables if they do not exist."""
        install_drivolution_schema(lambda sql: self._backend.execute(sql))

    # -- drivers (Table 1) --------------------------------------------------------

    def next_driver_id(self) -> int:
        rows = self._backend.query(f"SELECT MAX(driver_id) AS max_id FROM {DRIVERS_TABLE}")
        max_id = rows[0].get("max_id") if rows else None
        return int(max_id) + 1 if max_id is not None else 1

    def install_driver(self, package: DriverPackage, driver_id: Optional[int] = None) -> int:
        """Insert a driver package; returns its driver_id.

        This is the paper's single-step upgrade operation: "Add new driver
        to the Drivolution Server" is one INSERT.
        """
        if driver_id is None:
            driver_id = self.next_driver_id()
        api_major, api_minor = (package.api_version or (None, None))
        major, minor, micro = package.driver_version
        self._backend.execute(
            f"INSERT INTO {DRIVERS_TABLE} (driver_id, api_name, api_version_major, "
            "api_version_minor, platform, driver_version_major, driver_version_minor, "
            "driver_version_micro, binary_code, binary_format, driver_name, signature) "
            "VALUES ($driver_id, $api_name, $api_major, $api_minor, $platform, $major, "
            "$minor, $micro, $binary_code, $binary_format, $driver_name, $signature)",
            params={
                "driver_id": driver_id,
                "api_name": package.api_name,
                "api_major": api_major,
                "api_minor": api_minor,
                "platform": package.platform,
                "major": major,
                "minor": minor,
                "micro": micro,
                "binary_code": package.binary_code,
                "binary_format": package.binary_format,
                "driver_name": package.name,
                "signature": package.signature,
            },
        )
        return driver_id

    def remove_driver(self, driver_id: int) -> bool:
        """Delete a driver and its permissions/leases."""
        self._backend.execute(
            f"DELETE FROM {LEASES_TABLE} WHERE driver_id = $driver_id", {"driver_id": driver_id}
        )
        self._backend.execute(
            f"DELETE FROM {PERMISSIONS_TABLE} WHERE driver_id = $driver_id", {"driver_id": driver_id}
        )
        count = self._backend.execute(
            f"DELETE FROM {DRIVERS_TABLE} WHERE driver_id = $driver_id", {"driver_id": driver_id}
        )
        return count > 0

    def get_driver(self, driver_id: int) -> DriverPackage:
        rows = self._backend.query(
            f"SELECT * FROM {DRIVERS_TABLE} WHERE driver_id = $driver_id", {"driver_id": driver_id}
        )
        if not rows:
            raise RegistryError(f"driver {driver_id} not found")
        return self._row_to_package(rows[0])

    def list_drivers(self) -> List[Tuple[int, DriverPackage]]:
        rows = self._backend.query(f"SELECT * FROM {DRIVERS_TABLE} ORDER BY driver_id")
        return [(int(row["driver_id"]), self._row_to_package(row)) for row in rows]

    @staticmethod
    def _row_to_package(row: Dict[str, Any]) -> DriverPackage:
        api_major = row.get("api_version_major")
        api_minor = row.get("api_version_minor")
        api_version = (int(api_major), int(api_minor or 0)) if api_major is not None else None
        return DriverPackage(
            name=str(row.get("driver_name") or f"driver-{row.get('driver_id')}"),
            api_name=str(row["api_name"]),
            binary_code=bytes(row["binary_code"]),
            binary_format=str(row["binary_format"]),
            api_version=api_version,
            platform=row.get("platform"),
            driver_version=(
                int(row.get("driver_version_major") or 1),
                int(row.get("driver_version_minor") or 0),
                int(row.get("driver_version_micro") or 0),
            ),
            signature=row.get("signature"),
        )

    # -- permissions (Table 2) -------------------------------------------------------

    def next_permission_id(self) -> int:
        rows = self._backend.query(f"SELECT MAX(permission_id) AS max_id FROM {PERMISSIONS_TABLE}")
        max_id = rows[0].get("max_id") if rows else None
        return int(max_id) + 1 if max_id is not None else 1

    def grant_permission(self, permission: DriverPermission) -> int:
        permission_id = permission.permission_id or self.next_permission_id()
        self._backend.execute(
            f"INSERT INTO {PERMISSIONS_TABLE} (permission_id, user, client_ip, database, "
            "driver_id, driver_options, start_date, end_date, lease_time_in_ms, renew_policy, "
            "expiration_policy, transfer_method) VALUES ($permission_id, $user, $client_ip, "
            "$database, $driver_id, $driver_options, $start_date, $end_date, $lease_time_in_ms, "
            "$renew_policy, $expiration_policy, $transfer_method)",
            params={
                "permission_id": permission_id,
                "user": permission.user,
                "client_ip": permission.client_ip,
                "database": permission.database,
                "driver_id": permission.driver_id,
                "driver_options": _encode_options(permission.driver_options),
                "start_date": permission.start_date,
                "end_date": permission.end_date,
                "lease_time_in_ms": permission.lease_time_in_ms,
                "renew_policy": int(permission.renew_policy),
                "expiration_policy": int(permission.expiration_policy),
                "transfer_method": int(permission.transfer_method),
            },
        )
        return permission_id

    def revoke_permissions_for_driver(self, driver_id: int) -> int:
        """Disable a driver by expiring its distribution entries now.

        The paper: "Obsolete drivers can be disabled by either deleting
        them or setting the end_date to the current_date."
        """
        # A hair before "now" so that a non-advancing simulated clock still
        # sees the permission as expired on the very next query.
        now = self._clock() - 0.001
        return self._backend.execute(
            f"UPDATE {PERMISSIONS_TABLE} SET end_date = $now WHERE driver_id = $driver_id",
            {"now": now, "driver_id": driver_id},
        )

    def delete_permission(self, permission_id: int) -> bool:
        count = self._backend.execute(
            f"DELETE FROM {PERMISSIONS_TABLE} WHERE permission_id = $permission_id",
            {"permission_id": permission_id},
        )
        return count > 0

    def list_permissions(self) -> List[DriverPermission]:
        rows = self._backend.query(f"SELECT * FROM {PERMISSIONS_TABLE} ORDER BY permission_id")
        return [self._row_to_permission(row) for row in rows]

    @staticmethod
    def _row_to_permission(row: Dict[str, Any]) -> DriverPermission:
        return DriverPermission(
            permission_id=int(row["permission_id"]),
            user=row.get("user"),
            client_ip=row.get("client_ip"),
            database=row.get("database"),
            driver_id=int(row["driver_id"]),
            driver_options=_decode_options(row.get("driver_options")),
            start_date=row.get("start_date"),
            end_date=row.get("end_date"),
            lease_time_in_ms=int(row.get("lease_time_in_ms") or DEFAULT_LEASE_TIME_MS),
            renew_policy=RenewPolicy.from_value(row.get("renew_policy") or 0),
            expiration_policy=ExpirationPolicy.from_value(row.get("expiration_policy") or 0),
            transfer_method=TransferMethod(int(row.get("transfer_method", -1) if row.get("transfer_method") is not None else -1)),
        )

    # -- the paper's match-making queries ----------------------------------------------

    def query_permissions(
        self,
        database: Optional[str],
        user: Optional[str],
        client_ip: Optional[str],
    ) -> List[DriverPermission]:
        """Sample code 2: driver retrieval based on the distribution table."""
        rows = self._backend.query(
            f"SELECT * FROM {PERMISSIONS_TABLE} "
            "WHERE (database IS NULL OR database LIKE $user_database) "
            "AND (user IS NULL OR user LIKE $client_user) "
            "AND (client_ip IS NULL OR client_ip LIKE $client_client_ip) "
            "AND (start_date IS NULL OR now() >= start_date) "
            "AND (end_date IS NULL OR now() <= end_date) "
            # Most recently granted permission first, so that installing a
            # new driver makes it the one offered at the next renewal.
            "ORDER BY permission_id DESC",
            params={
                "user_database": database if database is not None else "%",
                "client_user": user if user is not None else "%",
                "client_client_ip": client_ip if client_ip is not None else "%",
            },
        )
        return [self._row_to_permission(row) for row in rows]

    def query_drivers(
        self,
        api_name: str,
        client_platform: Optional[str] = None,
        api_version: Optional[Tuple[int, int]] = None,
        driver_version: Optional[Tuple[int, int, int]] = None,
        with_preferences: bool = True,
    ) -> List[Dict[str, Any]]:
        """Sample code 1: driver retrieval based on client preferences.

        With ``with_preferences=False`` the preference clauses (in italics
        in the paper) are omitted — the fallback query issued when the
        strict one returns nothing.
        """
        params: Dict[str, Any] = {
            "client_api_name": api_name,
            "client_platform": client_platform if client_platform is not None else "%",
        }
        sql = (
            f"SELECT * FROM {DRIVERS_TABLE} "
            "WHERE api_name LIKE $client_api_name "
            "AND (platform IS NULL OR platform LIKE $client_platform)"
        )
        if with_preferences:
            params["client_api_version"] = api_version[0] if api_version else None
            params["client_driver_version"] = driver_version[0] if driver_version else None
            sql += (
                " AND ($client_api_version IS NULL OR api_version_major IS NULL "
                "OR $client_api_version = api_version_major)"
                " AND ($client_driver_version IS NULL OR driver_version_major IS NULL "
                "OR $client_driver_version = driver_version_major)"
            )
        sql += " ORDER BY driver_id DESC"
        return self._backend.query(sql, params)

    # -- leases -------------------------------------------------------------------------

    def record_lease(
        self,
        client_id: str,
        driver_id: int,
        database: Optional[str],
        user: Optional[str],
        client_ip: Optional[str],
        lease_time_ms: int,
        renew_policy: RenewPolicy,
        expiration_policy: ExpirationPolicy,
        lease_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Insert one lease row; returns the row as a dict."""
        lease_id = lease_id or uuid.uuid4().hex
        granted_at = self._clock()
        expires_at = granted_at + lease_time_ms / 1000.0
        self._backend.execute(
            f"INSERT INTO {LEASES_TABLE} (lease_id, client_id, user, client_ip, database, "
            "driver_id, granted_at, expires_at, released_at, renew_policy, expiration_policy) "
            "VALUES ($lease_id, $client_id, $user, $client_ip, $database, $driver_id, "
            "$granted_at, $expires_at, NULL, $renew_policy, $expiration_policy)",
            params={
                "lease_id": lease_id,
                "client_id": client_id,
                "user": user,
                "client_ip": client_ip,
                "database": database,
                "driver_id": driver_id,
                "granted_at": granted_at,
                "expires_at": expires_at,
                "renew_policy": int(renew_policy),
                "expiration_policy": int(expiration_policy),
            },
        )
        return {
            "lease_id": lease_id,
            "client_id": client_id,
            "driver_id": driver_id,
            "granted_at": granted_at,
            "expires_at": expires_at,
        }

    def release_lease(self, lease_id: str) -> bool:
        count = self._backend.execute(
            f"UPDATE {LEASES_TABLE} SET released_at = $now WHERE lease_id = $lease_id "
            "AND released_at IS NULL",
            {"now": self._clock(), "lease_id": lease_id},
        )
        return count > 0

    def get_lease(self, lease_id: str) -> Optional[Dict[str, Any]]:
        rows = self._backend.query(
            f"SELECT * FROM {LEASES_TABLE} WHERE lease_id = $lease_id", {"lease_id": lease_id}
        )
        return rows[0] if rows else None

    def active_leases(self, driver_id: Optional[int] = None) -> List[Dict[str, Any]]:
        """Leases that have not been released and have not expired."""
        sql = (
            f"SELECT * FROM {LEASES_TABLE} WHERE released_at IS NULL AND expires_at > now()"
        )
        params: Dict[str, Any] = {}
        if driver_id is not None:
            sql += " AND driver_id = $driver_id"
            params["driver_id"] = driver_id
        return self._backend.query(sql, params)

    def unreleased_leases(self) -> List[Dict[str, Any]]:
        """Every lease that has not been voluntarily released (expired or not)."""
        return self._backend.query(
            f"SELECT * FROM {LEASES_TABLE} WHERE released_at IS NULL ORDER BY granted_at"
        )

    def leases_for_client(self, client_id: str) -> List[Dict[str, Any]]:
        return self._backend.query(
            f"SELECT * FROM {LEASES_TABLE} WHERE client_id = $client_id ORDER BY granted_at",
            {"client_id": client_id},
        )
