"""Drivolution core — the paper's contribution.

The subpackages follow the paper's structure:

- :mod:`repro.core.package` — the driver package format stored as a BLOB in
  the database (Table 1) plus signing (Section 3.1).
- :mod:`repro.core.schema` — the ``drivers``, ``driver_permission`` and
  ``leases`` information-schema tables (Tables 1 and 2).
- :mod:`repro.core.messages` / :mod:`repro.core.protocol` — the
  DHCP-inspired bootstrap protocol: ``DRIVOLUTION_REQUEST``, ``OFFER``,
  ``ERROR``, ``DISCOVER`` and the FILE transfer messages (Tables 3 and 4).
- :mod:`repro.core.matchmaker` — driver match-making with the SQL of
  Sample code 1 and 2.
- :mod:`repro.core.lease` — leases and renewal bookkeeping.
- :mod:`repro.core.registry` — DBA-facing management of the driver tables.
- :mod:`repro.core.server` — the Drivolution Server in its in-database,
  external and standalone deployments (Section 4).
- :mod:`repro.core.loader` — dynamic loading of driver code blobs.
- :mod:`repro.core.bootloader` — the client-side bootloader (Section 3.1.1)
  with lease renewal, driver switching and the renew/expiration policies.
- :mod:`repro.core.policies` — RENEW/UPGRADE/REVOKE and
  AFTER_CLOSE/AFTER_COMMIT/IMMEDIATE policy machinery (Section 3.3).
- :mod:`repro.core.discovery` — broadcast discovery of replicated
  Drivolution servers.
- :mod:`repro.core.assembly` — on-demand driver assembly (Section 5.4.1).
- :mod:`repro.core.license_server` — license management (Section 5.4.2).
- :mod:`repro.core.admin` — DBA operations used by the case studies.
"""

from repro.core.constants import (
    RenewPolicy,
    ExpirationPolicy,
    TransferMethod,
    BinaryFormat,
)
from repro.core.package import DriverPackage, DriverSigner, PackageError
from repro.core.schema import install_drivolution_schema, DRIVERS_TABLE, PERMISSIONS_TABLE, LEASES_TABLE
from repro.core.messages import (
    DrivolutionRequest,
    DrivolutionOffer,
    DrivolutionErrorMessage,
    DrivolutionDiscover,
)
from repro.core.lease import Lease, LeaseManager
from repro.core.registry import DriverRegistry, DriverPermission
from repro.core.matchmaker import Matchmaker, MatchRequest
from repro.core.server import DrivolutionServer, InDatabaseServerBinding, StandaloneServerBinding, ExternalServerBinding
from repro.core.loader import DriverLoader, LoadedDriver
from repro.core.bootloader import Bootloader, BootloaderConfig
from repro.core.admin import DrivolutionAdmin
from repro.core.assembly import DriverAssembler
from repro.core.license_server import LicenseServer, LicensePolicy
from repro.errors import DrivolutionError

__all__ = [
    "RenewPolicy",
    "ExpirationPolicy",
    "TransferMethod",
    "BinaryFormat",
    "DriverPackage",
    "DriverSigner",
    "PackageError",
    "install_drivolution_schema",
    "DRIVERS_TABLE",
    "PERMISSIONS_TABLE",
    "LEASES_TABLE",
    "DrivolutionRequest",
    "DrivolutionOffer",
    "DrivolutionErrorMessage",
    "DrivolutionDiscover",
    "Lease",
    "LeaseManager",
    "DriverRegistry",
    "DriverPermission",
    "Matchmaker",
    "MatchRequest",
    "DrivolutionServer",
    "InDatabaseServerBinding",
    "StandaloneServerBinding",
    "ExternalServerBinding",
    "DriverLoader",
    "LoadedDriver",
    "Bootloader",
    "BootloaderConfig",
    "DrivolutionAdmin",
    "DriverAssembler",
    "LicenseServer",
    "LicensePolicy",
    "DrivolutionError",
]
