"""Driver package format, encoding and signing.

A driver package is what the paper stores in the ``binary_code`` column of
the drivers table: the driver's code plus the metadata needed to match it
to a client (API name/version, platform, driver version) and to decode and
verify it on the client side (binary format, signature).

In this reproduction the code is Python source which, once loaded by the
bootloader, exposes a module-level ``connect(url, **options)`` callable and
metadata constants (see :mod:`repro.dbapi.driver_factory` for the
templates). Packages can be transported as plain source (``PYSRC``) or
zlib-compressed (``PYSRC-ZLIB``), and can be signed so that bootloaders
configured with a signer reject tampered or unsigned drivers.
"""

from __future__ import annotations

import hashlib
import hmac
import zlib
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

from repro.core.constants import BinaryFormat
from repro.errors import DrivolutionError


class PackageError(DrivolutionError):
    """Malformed, unsupported or tampered driver package."""


@dataclass(frozen=True)
class DriverPackage:
    """An installable driver: metadata plus encoded code."""

    name: str
    api_name: str
    binary_code: bytes
    binary_format: str = BinaryFormat.PYSRC
    api_version: Optional[Tuple[int, int]] = None
    platform: Optional[str] = None
    driver_version: Tuple[int, int, int] = (1, 0, 0)
    signature: Optional[str] = None
    metadata: Dict[str, Any] = field(default_factory=dict)

    # -- construction ---------------------------------------------------------

    @staticmethod
    def from_source(
        name: str,
        api_name: str,
        source: str,
        binary_format: str = BinaryFormat.PYSRC,
        api_version: Optional[Tuple[int, int]] = None,
        platform: Optional[str] = None,
        driver_version: Tuple[int, int, int] = (1, 0, 0),
        metadata: Optional[Dict[str, Any]] = None,
    ) -> "DriverPackage":
        """Encode Python ``source`` into a package with the given format."""
        if binary_format == BinaryFormat.PYSRC:
            code = source.encode("utf-8")
        elif binary_format == BinaryFormat.PYSRC_ZLIB:
            code = zlib.compress(source.encode("utf-8"), level=6)
        else:
            raise PackageError(f"unsupported binary format {binary_format!r}")
        return DriverPackage(
            name=name,
            api_name=api_name,
            binary_code=code,
            binary_format=binary_format,
            api_version=tuple(api_version) if api_version else None,
            platform=platform,
            driver_version=tuple(driver_version),
            metadata=dict(metadata or {}),
        )

    # -- decoding ---------------------------------------------------------------

    def decode_source(self) -> str:
        """Decode ``binary_code`` back into Python source (Table 3 ``decode``)."""
        if self.binary_format == BinaryFormat.PYSRC:
            try:
                return self.binary_code.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise PackageError(f"corrupt PYSRC package {self.name!r}: {exc}") from exc
        if self.binary_format == BinaryFormat.PYSRC_ZLIB:
            try:
                return zlib.decompress(self.binary_code).decode("utf-8")
            except (zlib.error, UnicodeDecodeError) as exc:
                raise PackageError(f"corrupt PYSRC-ZLIB package {self.name!r}: {exc}") from exc
        raise PackageError(f"unsupported binary format {self.binary_format!r}")

    @property
    def size_bytes(self) -> int:
        """Size of the encoded driver code (what travels over the wire)."""
        return len(self.binary_code)

    @property
    def version_string(self) -> str:
        return ".".join(str(part) for part in self.driver_version)

    # -- signing ------------------------------------------------------------------

    def signed_by(self, signer: "DriverSigner") -> "DriverPackage":
        """Return a copy of this package carrying ``signer``'s signature."""
        return replace(self, signature=signer.sign(self.binary_code))

    def tampered(self, payload: bytes = b"# malicious payload\n") -> "DriverPackage":
        """Return a copy with modified code but the original signature.

        Only used by security tests and the security experiment to model a
        man-in-the-middle substituting driver code (Section 3.1).
        """
        return replace(self, binary_code=self.binary_code + payload)

    # -- (de)serialisation -----------------------------------------------------------

    def to_wire(self) -> Dict[str, Any]:
        """Serialise for transport inside protocol messages."""
        return {
            "name": self.name,
            "api_name": self.api_name,
            "api_version": list(self.api_version) if self.api_version else None,
            "platform": self.platform,
            "driver_version": list(self.driver_version),
            "binary_format": self.binary_format,
            "binary_code": self.binary_code,
            "signature": self.signature,
            "metadata": self.metadata,
        }

    @staticmethod
    def from_wire(data: Dict[str, Any]) -> "DriverPackage":
        try:
            api_version = data.get("api_version")
            return DriverPackage(
                name=str(data["name"]),
                api_name=str(data["api_name"]),
                binary_code=bytes(data["binary_code"]),
                binary_format=str(data["binary_format"]),
                api_version=tuple(api_version) if api_version else None,
                platform=data.get("platform"),
                driver_version=tuple(data.get("driver_version", (1, 0, 0))),
                signature=data.get("signature"),
                metadata=dict(data.get("metadata") or {}),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise PackageError(f"malformed driver package on the wire: {exc}") from exc

    def fingerprint(self) -> str:
        """Content hash identifying this exact package build."""
        digest = hashlib.sha256()
        digest.update(self.name.encode("utf-8"))
        digest.update(self.binary_format.encode("utf-8"))
        digest.update(self.binary_code)
        return digest.hexdigest()


class DriverSigner:
    """Signs driver packages and verifies signatures (code signing, Section 3.1).

    The trusted wrapper in the bootloader holds the same secret (in a real
    deployment this would be a public-key scheme; HMAC keeps the repro
    dependency-free while preserving the accept/reject behaviour).
    """

    def __init__(self, secret: bytes) -> None:
        if not secret:
            raise PackageError("signer secret must not be empty")
        self._secret = secret

    def sign(self, code: bytes) -> str:
        return hmac.new(self._secret, code, hashlib.sha256).hexdigest()

    def verify(self, package: DriverPackage) -> bool:
        """Whether ``package`` carries a valid signature for its code."""
        if not package.signature:
            return False
        expected = self.sign(package.binary_code)
        return hmac.compare_digest(expected, package.signature)

    def require_valid(self, package: DriverPackage) -> None:
        """Raise :class:`PackageError` unless the signature verifies."""
        if not self.verify(package):
            raise PackageError(
                f"driver package {package.name!r} failed signature verification"
            )
