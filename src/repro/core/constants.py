"""Drivolution constants: policies, transfer methods and binary formats.

The integer encodings match the paper's Table 2 exactly:

- ``renew_policy``: 0 = RENEW, 1 = UPGRADE, 2 = REVOKE
- ``expiration_policy``: 0 = AFTER_CLOSE, 1 = AFTER_COMMIT, 2 = IMMEDIATE
- ``transfer_method``: -1 = ANY, >= 0 = specific protocol id
"""

from __future__ import annotations

import enum


class RenewPolicy(enum.IntEnum):
    """Action the bootloader must take when a lease needs to be renewed."""

    RENEW = 0
    UPGRADE = 1
    REVOKE = 2

    @staticmethod
    def from_value(value) -> "RenewPolicy":
        if isinstance(value, RenewPolicy):
            return value
        if isinstance(value, str):
            return RenewPolicy[value.upper()]
        return RenewPolicy(int(value))


class ExpirationPolicy(enum.IntEnum):
    """When the renew policy must be applied to existing connections."""

    AFTER_CLOSE = 0
    AFTER_COMMIT = 1
    IMMEDIATE = 2

    @staticmethod
    def from_value(value) -> "ExpirationPolicy":
        if isinstance(value, ExpirationPolicy):
            return value
        if isinstance(value, str):
            return ExpirationPolicy[value.upper()]
        return ExpirationPolicy(int(value))


class TransferMethod(enum.IntEnum):
    """Transfer protocol used to download driver code (Table 2)."""

    ANY = -1
    PLAIN = 0
    SECURE = 1


class BinaryFormat:
    """Formats of the ``binary_code`` BLOB (paper examples: JAR, ZIP).

    Python driver packages are plain source (``PYSRC``) or zlib-compressed
    source (``PYSRC-ZLIB``); the bootloader's ``decode`` step (Table 3)
    dispatches on this value.
    """

    PYSRC = "PYSRC"
    PYSRC_ZLIB = "PYSRC-ZLIB"

    ALL = (PYSRC, PYSRC_ZLIB)


#: Default lease time used when a permission row does not specify one.
#: The paper suggests "an hour to a day"; experiments typically override
#: this with much shorter leases on a simulated clock.
DEFAULT_LEASE_TIME_MS = 3_600_000
