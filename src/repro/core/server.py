"""The Drivolution Server (paper Sections 3 and 4).

A :class:`DrivolutionServer` answers bootloader requests over the
Drivolution bootstrap protocol: it matches drivers, grants leases and
serves driver files. How it stores drivers and which databases it speaks
for is determined by its *binding*:

- :class:`InDatabaseServerBinding` — the server lives inside a DBMS
  (Section 4.1.2). Drivers are rows of that engine's information schema;
  the server either shares the database's listener (registered as an
  extension, so bootloader connections and database connections arrive on
  the same port) or listens on a separate port.
- :class:`ExternalServerBinding` — the server is an external process that
  queries a legacy database through a conventional driver (Section 4.1.3,
  Figure 2).
- :class:`StandaloneServerBinding` — the server owns an embedded database
  and distributes drivers for any number of databases (Section 4.1.4,
  used by the Sequoia legacy-environment case study, Figure 5).

The server also supports the paper's dedicated notification channel: a
bootloader may SUBSCRIBE, and :meth:`DrivolutionServer.notify_update`
(called by the admin after installing a driver) immediately pushes an
update-available signal instead of waiting for lease expiry.
"""

from __future__ import annotations

import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core import messages
from repro.core.constants import ExpirationPolicy, RenewPolicy, TransferMethod
from repro.core.lease import LeaseManager
from repro.core.matchmaker import Matchmaker, MatchRequest, NoMatchingDriver
from repro.core.messages import (
    DrivolutionErrorMessage,
    DrivolutionOffer,
    DrivolutionRequest,
)
from repro.core.package import DriverPackage, DriverSigner
from repro.core.registry import ConnectionBackend, DriverRegistry, SessionBackend
from repro.errors import DrivolutionError, TransportError
from repro.netsim.secure import Certificate, CertificateAuthority, SecureChannel
from repro.netsim.transport import Address, Channel, ChannelServer, Network
from repro.sqlengine.engine import Engine


class ServerBinding:
    """How a Drivolution server reaches its driver store."""

    def __init__(self, registry: DriverRegistry, known_databases: Optional[Callable[[], List[str]]] = None):
        self.registry = registry
        self.known_databases = known_databases

    def describe(self) -> str:
        return type(self).__name__


class InDatabaseServerBinding(ServerBinding):
    """Drivers live in the hosting DBMS's information schema."""

    def __init__(self, engine: Engine, database_name: str, clock: Callable[[], float] = time.time) -> None:
        self.engine = engine
        self.database_name = database_name
        engine.create_database(database_name)
        session = engine.open_session(database_name)
        registry = DriverRegistry(SessionBackend(session), clock=clock)
        registry.install_schema()
        super().__init__(registry, known_databases=engine.database_names)


class StandaloneServerBinding(ServerBinding):
    """Drivers live in an embedded database owned by the Drivolution server.

    ``served_databases`` restricts which database names this server will
    answer for; empty means "any" (a pure distribution service).
    """

    def __init__(
        self,
        served_databases: Optional[List[str]] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.engine = Engine(name="drivolution-embedded", clock=clock)
        self.engine.create_database("drivolution")
        session = self.engine.open_session("drivolution")
        registry = DriverRegistry(SessionBackend(session), clock=clock)
        registry.install_schema()
        served = list(served_databases or [])
        super().__init__(registry, known_databases=(lambda: served) if served else None)


class ExternalServerBinding(ServerBinding):
    """Drivers live in a legacy database reached through a legacy driver.

    ``connection_factory`` opens a DB-API connection to the legacy
    database (Figure 2's step 2); upgrading that single legacy driver is
    the only client-side driver maintenance left in this deployment.
    """

    def __init__(
        self,
        connection_factory: Callable[[], Any],
        served_databases: Optional[List[str]] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self._connection_factory = connection_factory
        self.connection = connection_factory()
        registry = DriverRegistry(ConnectionBackend(self.connection), clock=clock)
        registry.install_schema()
        served = list(served_databases or [])
        super().__init__(registry, known_databases=(lambda: served) if served else None)

    def reconnect(self) -> None:
        """Re-open the legacy connection (e.g. after upgrading that driver)."""
        try:
            self.connection.close()
        except Exception:
            pass
        self.connection = self._connection_factory()
        self.registry = DriverRegistry(ConnectionBackend(self.connection))
        self.registry.install_schema()


@dataclass
class ServerStats:
    """Counters for experiments and tests."""

    requests: int = 0
    discovers: int = 0
    offers: int = 0
    errors: int = 0
    files_served: int = 0
    bytes_served: int = 0
    renewals: int = 0
    notifications_sent: int = 0


class DrivolutionServer:
    """Answers the Drivolution bootstrap protocol for one binding."""

    def __init__(
        self,
        binding: ServerBinding,
        network: Optional[Network] = None,
        address: Optional[Address] = None,
        clock: Callable[[], float] = time.time,
        server_id: Optional[str] = None,
        signer: Optional[DriverSigner] = None,
        certificate: Optional[Certificate] = None,
        certificate_authority: Optional[CertificateAuthority] = None,
        require_secure_channel: bool = False,
    ) -> None:
        self.binding = binding
        self.network = network
        self.address = address
        self.clock = clock
        self.server_id = server_id or f"drivolution-{uuid.uuid4().hex[:8]}"
        self.signer = signer
        self.certificate = certificate
        self.certificate_authority = certificate_authority
        self.require_secure_channel = require_secure_channel
        self.stats = ServerStats()
        self.leases = LeaseManager(binding.registry, clock=clock)
        self.matchmaker = Matchmaker(
            binding.registry, known_databases=binding.known_databases, clock=clock
        )
        self._subscribers: List[Dict[str, Any]] = []
        self._channel_server: Optional[ChannelServer] = None
        self._lock = threading.Lock()

    # -- deployment ------------------------------------------------------------

    def start(self) -> "DrivolutionServer":
        """Listen on the configured network address (standalone/in-database
        on a separate port)."""
        if self.network is None or self.address is None:
            raise DrivolutionError("start() requires a network and an address")
        if self._channel_server is not None:
            return self
        listener = self.network.listen(self.address)
        self._channel_server = ChannelServer(listener, self._serve_channel, name=self.server_id)
        self._channel_server.start()
        return self

    def stop(self) -> None:
        if self._channel_server is not None:
            self._channel_server.stop()
            self._channel_server = None

    @property
    def running(self) -> bool:
        return self._channel_server is not None

    def attach_to_database_server(self, database_server) -> None:
        """Share the database's listener (in-database deployment on the
        same port): Drivolution traffic is dispatched by message prefix."""
        database_server.register_extension(messages.MESSAGE_PREFIX, self.handle_connection)

    # -- registry passthroughs used by the admin ----------------------------------

    @property
    def registry(self) -> DriverRegistry:
        return self.binding.registry

    # -- notification channel -------------------------------------------------------

    def notify_update(self, api_name: str, database: Optional[str] = None) -> int:
        """Push an update-available signal to matching subscribers.

        Returns the number of subscribers notified. Dead channels are
        dropped silently (their bootloaders fall back to lease polling).
        """
        notified = 0
        with self._lock:
            subscribers = list(self._subscribers)
        for subscriber in subscribers:
            if subscriber["api_name"] and api_name and subscriber["api_name"] != api_name:
                continue
            if database and subscriber["database"] and subscriber["database"] != database:
                continue
            try:
                subscriber["channel"].send(messages.make_update_available(api_name, database))
                notified += 1
            except TransportError:
                with self._lock:
                    if subscriber in self._subscribers:
                        self._subscribers.remove(subscriber)
        self.stats.notifications_sent += notified
        return notified

    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subscribers)

    # -- connection handling -----------------------------------------------------------

    def _serve_channel(self, channel: Channel) -> None:
        """Entry point for connections on the server's own listener."""
        try:
            first = channel.recv(timeout=30.0)
        except TransportError:
            return
        self.handle_connection(channel, first)

    def handle_connection(self, channel: Channel, first_message: Dict[str, Any]) -> None:
        """Serve one bootloader connection starting with ``first_message``.

        Also used as the database-server extension entry point.
        """
        if first_message.get("type") == "secure_hello":
            channel, first_message = self._upgrade_to_secure(channel, first_message)
            if channel is None:
                return
        elif self.require_secure_channel:
            channel.send(
                DrivolutionErrorMessage(
                    "secure_channel_required",
                    "this Drivolution server only serves drivers over secure channels",
                ).to_wire()
            )
            return
        message: Optional[Dict[str, Any]] = first_message
        while message is not None:
            try:
                keep_going = self._dispatch(channel, message)
            except TransportError:
                return
            if not keep_going:
                return
            try:
                message = channel.recv(timeout=None)
            except TransportError:
                return

    def _upgrade_to_secure(self, channel: Channel, first_message: Dict[str, Any]):
        """Perform the server side of the secure handshake.

        The first message (``secure_hello``) has already been read, so the
        handshake is completed manually here rather than via
        :meth:`SecureChannel.server_handshake`.
        """
        if self.certificate is None:
            channel.send(DrivolutionErrorMessage("no_certificate", "server has no certificate").to_wire())
            return None, None
        import os

        server_nonce = os.urandom(16)
        channel.send(
            {
                "type": "secure_hello_ack",
                "nonce": server_nonce,
                "certificate": self.certificate.to_wire(),
            }
        )
        from repro.netsim.secure import _derive_key

        client_nonce = first_message.get("nonce", b"")
        session_key = _derive_key(client_nonce, server_nonce, self.certificate.fingerprint)
        secure = SecureChannel(channel, session_key, self.certificate)
        try:
            first = secure.recv(timeout=30.0)
        except TransportError:
            return None, None
        return secure, first

    # -- protocol dispatch ----------------------------------------------------------------

    def _dispatch(self, channel: Channel, message: Dict[str, Any]) -> bool:
        """Handle one message; returns False when the conversation is over."""
        message_type = message.get("type")
        if message_type in (messages.REQUEST, messages.DISCOVER):
            self._handle_request(channel, message)
            return True
        if message_type == messages.FILE_REQUEST:
            self._handle_file_request(channel, message)
            return True
        if message_type == messages.RELEASE:
            self._handle_release(channel, message)
            return True
        if message_type == messages.SUBSCRIBE:
            self._handle_subscribe(channel, message)
            return True
        channel.send(
            DrivolutionErrorMessage("bad_message", f"unexpected message {message_type!r}").to_wire()
        )
        return True

    def _handle_request(self, channel: Channel, message: Dict[str, Any]) -> None:
        request = DrivolutionRequest.from_wire(message)
        is_discover = message.get("type") == messages.DISCOVER
        if is_discover:
            self.stats.discovers += 1
        else:
            self.stats.requests += 1
        try:
            result = self.matchmaker.match(MatchRequest.from_protocol(request))
        except NoMatchingDriver as exc:
            self.stats.errors += 1
            channel.send(DrivolutionErrorMessage("no_driver", str(exc)).to_wire())
            return

        previous = None
        if request.current_lease_id:
            previous = self.leases.get(request.current_lease_id)

        if is_discover:
            # Discover answers describe what would be offered, without
            # granting a lease yet (the client will send a unicast REQUEST).
            offer = DrivolutionOffer(
                lease_id="",
                lease_time_ms=result.lease_time_ms,
                driver_id=result.driver_id,
                driver_location=f"driver:{result.driver_id}",
                binary_format=str(result.driver_row.get("binary_format", "")),
                renew_policy=int(result.renew_policy),
                expiration_policy=int(result.expiration_policy),
                driver_version=self._row_version(result.driver_row),
                driver_options=result.driver_options,
                includes_file=False,
                server_id=self.server_id,
            )
            channel.send(offer.to_wire())
            self.stats.offers += 1
            return

        lease = self.leases.renew(
            previous_lease_id=request.current_lease_id,
            client_id=request.client_id or f"client-{uuid.uuid4().hex[:8]}",
            driver_id=result.driver_id,
            lease_time_ms=result.lease_time_ms,
            renew_policy=result.renew_policy,
            expiration_policy=result.expiration_policy,
            database=request.database,
            user=request.user,
        )
        same_driver = previous is not None and previous.driver_id == result.driver_id
        if same_driver:
            self.stats.renewals += 1
        offer = DrivolutionOffer(
            lease_id=lease.lease_id,
            lease_time_ms=result.lease_time_ms,
            driver_id=result.driver_id,
            driver_location=f"driver:{result.driver_id}",
            binary_format=str(result.driver_row.get("binary_format", "")),
            renew_policy=int(result.renew_policy),
            expiration_policy=int(result.expiration_policy),
            driver_version=self._row_version(result.driver_row),
            driver_options=result.driver_options,
            includes_file=not same_driver,
            server_id=self.server_id,
        )
        channel.send(offer.to_wire())
        self.stats.offers += 1

    @staticmethod
    def _row_version(row: Dict[str, Any]) -> tuple:
        return (
            int(row.get("driver_version_major") or 1),
            int(row.get("driver_version_minor") or 0),
            int(row.get("driver_version_micro") or 0),
        )

    def _handle_file_request(self, channel: Channel, message: Dict[str, Any]) -> None:
        location = str(message.get("driver_location", ""))
        if not location.startswith("driver:"):
            channel.send(
                DrivolutionErrorMessage("bad_location", f"unknown driver location {location!r}").to_wire()
            )
            return
        driver_id = int(location.split(":", 1)[1])
        try:
            package = self.registry.get_driver(driver_id)
        except DrivolutionError as exc:
            self.stats.errors += 1
            channel.send(DrivolutionErrorMessage("no_driver", str(exc)).to_wire())
            return
        if self.signer is not None and package.signature is None:
            package = package.signed_by(self.signer)
        channel.send(messages.make_file_data(package.to_wire()))
        self.stats.files_served += 1
        self.stats.bytes_served += package.size_bytes

    def _handle_release(self, channel: Channel, message: Dict[str, Any]) -> None:
        lease_id = str(message.get("lease_id", ""))
        released = self.leases.release(lease_id)
        channel.send({"type": "drivolution_release_ack", "released": released})

    def _handle_subscribe(self, channel: Channel, message: Dict[str, Any]) -> None:
        subscriber = {
            "channel": channel,
            "client_id": str(message.get("client_id", "")),
            "api_name": str(message.get("api_name", "")),
            "database": str(message.get("database", "")),
        }
        with self._lock:
            self._subscribers.append(subscriber)
        channel.send({"type": "drivolution_subscribe_ack", "server_id": self.server_id})
