"""The database server process."""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dbserver.auth import Authenticator, PasswordAuthenticator
from repro.dbserver.session import ExtensionHandler, ServerSession
from repro.dbserver.wire import PROTOCOL_VERSION
from repro.netsim.transport import Address, Channel, ChannelServer, Network
from repro.sqlengine.engine import Engine


@dataclass
class ServerConfig:
    """Tunable parameters of a :class:`DatabaseServer`."""

    name: str = "repro-db"
    min_protocol_version: int = PROTOCOL_VERSION - 1
    max_protocol_version: int = PROTOCOL_VERSION
    authenticators: Dict[str, Authenticator] = field(default_factory=dict)
    #: When set, listeners serve sessions from a fixed worker pool of this
    #: size instead of one thread per accepted channel (the massive-
    #: concurrency front end; see docs/wire.md). None keeps the
    #: thread-per-connection behaviour.
    handler_workers: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.authenticators:
            self.authenticators = {"password": PasswordAuthenticator()}


class DatabaseServer:
    """Hosts a :class:`~repro.sqlengine.engine.Engine` behind the wire protocol.

    Extensions registered via :meth:`register_extension` take over
    connections whose first message type starts with the extension's
    prefix; this is how the in-database Drivolution server shares the
    database's listener (paper Section 4.1.2). A second listener on a
    different address can also be attached with :meth:`listen_also`, which
    is the "different port than the database engine" deployment.
    """

    def __init__(
        self,
        engine: Engine,
        network: Network,
        address: Address,
        config: Optional[ServerConfig] = None,
    ) -> None:
        self.engine = engine
        self.network = network
        self.address = address
        self.config = config or ServerConfig(name=engine.name)
        self._extensions: Dict[str, ExtensionHandler] = {}
        self._servers: List[ChannelServer] = []
        self._active_sessions: Dict[str, ServerSession] = {}
        self._lock = threading.Lock()
        self._started = False

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "DatabaseServer":
        """Bind the main listener and start serving."""
        if self._started:
            return self
        listener = self.network.listen(self.address)
        server = ChannelServer(
            listener,
            self._handle_channel,
            name=f"db-{self.config.name}",
            workers=self.config.handler_workers,
        )
        server.start()
        self._servers.append(server)
        self._started = True
        return self

    def listen_also(self, address: Address) -> None:
        """Serve the same engine (and extensions) on an additional address."""
        listener = self.network.listen(address)
        server = ChannelServer(
            listener,
            self._handle_channel,
            name=f"db-{self.config.name}-alt",
            workers=self.config.handler_workers,
        )
        server.start()
        self._servers.append(server)

    def stop(self) -> None:
        """Stop all listeners. Existing connections finish their work."""
        for server in self._servers:
            server.stop()
        self._servers.clear()
        self._started = False

    @property
    def running(self) -> bool:
        return self._started

    # -- extensions --------------------------------------------------------------

    def register_extension(self, message_prefix: str, handler: ExtensionHandler) -> None:
        """Register a handler for connections opening with ``message_prefix`` messages."""
        self._extensions[message_prefix] = handler

    # -- observability -------------------------------------------------------------

    def active_session_count(self) -> int:
        with self._lock:
            return len(self._active_sessions)

    def active_sessions(self) -> List[ServerSession]:
        with self._lock:
            return list(self._active_sessions.values())

    # -- internals -------------------------------------------------------------------

    def _handle_channel(self, channel: Channel) -> None:
        session = ServerSession(
            server_name=self.config.name,
            engine=self.engine,
            channel=channel,
            min_protocol_version=self.config.min_protocol_version,
            max_protocol_version=self.config.max_protocol_version,
            authenticators=self.config.authenticators,
            extensions=self._extensions,
            on_session_open=self._track_open,
            on_session_close=self._track_close,
        )
        session.run()

    def _track_open(self, session: ServerSession) -> None:
        with self._lock:
            self._active_sessions[session.session_id] = session

    def _track_close(self, session: ServerSession) -> None:
        with self._lock:
            self._active_sessions.pop(session.session_id, None)
