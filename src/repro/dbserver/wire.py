"""Database wire protocol message definitions.

The protocol is deliberately simple (connect / execute / result / error /
close) but carries an explicit ``protocol_version`` so that driver/server
mismatches surface exactly where the paper says they do: at connection
time (step 5 of the legacy lifecycle) rather than at install time.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.errors import DriverError

#: Current protocol version spoken by the reference server and the
#: up-to-date driver generation. Older driver generations speak lower
#: versions; the server accepts a configurable range.
PROTOCOL_VERSION = 3


class WireError(DriverError):
    """Malformed or unexpected wire message."""


class MessageType:
    """Message type tags used on the database wire protocol."""

    CONNECT = "db_connect"
    CONNECT_OK = "db_connect_ok"
    EXECUTE = "db_execute"
    RESULT = "db_result"
    ERROR = "db_error"
    CLOSE = "db_close"
    PING = "db_ping"
    PONG = "db_pong"


def make_connect(
    database: str,
    user: Optional[str],
    password: Optional[str],
    protocol_version: int,
    auth_method: str = "password",
    auth_token: Optional[str] = None,
    options: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Build a CONNECT message."""
    return {
        "type": MessageType.CONNECT,
        "database": database,
        "user": user,
        "password": password,
        "protocol_version": protocol_version,
        "auth_method": auth_method,
        "auth_token": auth_token,
        "options": options or {},
    }


def make_connect_ok(server_name: str, protocol_version: int, session_id: str) -> Dict[str, Any]:
    return {
        "type": MessageType.CONNECT_OK,
        "server": server_name,
        "protocol_version": protocol_version,
        "session_id": session_id,
    }


def make_execute(sql: str, params: Optional[Dict[str, Any]] = None, positional: Optional[list] = None) -> Dict[str, Any]:
    return {
        "type": MessageType.EXECUTE,
        "sql": sql,
        "params": params or {},
        "positional": positional or [],
    }


def make_result(columns: list, rows: list, rowcount: int) -> Dict[str, Any]:
    return {
        "type": MessageType.RESULT,
        "columns": columns,
        "rows": [list(row) for row in rows],
        "rowcount": rowcount,
    }


def make_error(code: str, message: str) -> Dict[str, Any]:
    return {"type": MessageType.ERROR, "code": code, "message": message}


def expect_type(message: Dict[str, Any], expected: str) -> Dict[str, Any]:
    """Validate that ``message`` has the expected type tag."""
    received = message.get("type")
    if received == MessageType.ERROR:
        raise WireError(f"server error [{message.get('code')}]: {message.get('message')}")
    if received != expected:
        raise WireError(f"expected {expected!r} message, got {received!r}")
    return message
