"""Server-side handling of one client connection."""

from __future__ import annotations

import uuid
from typing import Any, Callable, Dict, Optional

from repro.errors import ReproError, TransportError
from repro.dbserver.auth import AuthenticationError, Authenticator
from repro.dbserver.wire import MessageType, make_connect_ok, make_error, make_result
from repro.netsim.transport import Channel
from repro.sqlengine.engine import Engine, Session
from repro.sqlengine.errors import SqlEngineError

#: Extension handlers receive (server, channel, first_message) and take
#: over the connection entirely (used by the in-database Drivolution server).
ExtensionHandler = Callable[[Channel, Dict[str, Any]], None]


class ServerSession:
    """Serves one client channel until it closes.

    The session performs the protocol-version handshake, authentication,
    then loops on EXECUTE messages, mapping them to a
    :class:`repro.sqlengine.engine.Session`.
    """

    def __init__(
        self,
        server_name: str,
        engine: Engine,
        channel: Channel,
        min_protocol_version: int,
        max_protocol_version: int,
        authenticators: Dict[str, Authenticator],
        extensions: Dict[str, ExtensionHandler],
        on_session_open: Optional[Callable[["ServerSession"], None]] = None,
        on_session_close: Optional[Callable[["ServerSession"], None]] = None,
    ) -> None:
        self._server_name = server_name
        self._engine = engine
        self._channel = channel
        self._min_version = min_protocol_version
        self._max_version = max_protocol_version
        self._authenticators = authenticators
        self._extensions = extensions
        self._on_session_open = on_session_open
        self._on_session_close = on_session_close
        self.session_id = uuid.uuid4().hex
        self.sql_session: Optional[Session] = None
        self.user: Optional[str] = None
        self.database: Optional[str] = None

    # -- main loop -----------------------------------------------------------

    def run(self) -> None:
        try:
            first = self._channel.recv(timeout=30.0)
        except TransportError:
            return
        message_type = str(first.get("type", ""))
        # Dispatch extension traffic (e.g. Drivolution bootstrap) before
        # treating the connection as a database session.
        for prefix, handler in self._extensions.items():
            if message_type.startswith(prefix):
                handler(self._channel, first)
                return
        if message_type != MessageType.CONNECT:
            self._channel.send(make_error("bad_handshake", f"expected connect, got {message_type!r}"))
            return
        if not self._handshake(first):
            return
        if self._on_session_open is not None:
            self._on_session_open(self)
        try:
            self._serve_statements()
        finally:
            if self.sql_session is not None:
                self.sql_session.close()
            if self._on_session_close is not None:
                self._on_session_close(self)

    # -- handshake -----------------------------------------------------------

    def _handshake(self, connect: Dict[str, Any]) -> bool:
        client_version = connect.get("protocol_version")
        if not isinstance(client_version, int) or not (
            self._min_version <= client_version <= self._max_version
        ):
            self._channel.send(
                make_error(
                    "protocol_mismatch",
                    f"client protocol version {client_version!r} not supported "
                    f"(server accepts {self._min_version}..{self._max_version})",
                )
            )
            return False
        auth_method = str(connect.get("auth_method", "password"))
        authenticator = self._authenticators.get(auth_method)
        if authenticator is None:
            self._channel.send(
                make_error(
                    "auth_method_unsupported",
                    f"authentication method {auth_method!r} not enabled on this server",
                )
            )
            return False
        try:
            authenticator.authenticate(self._engine, connect)
        except AuthenticationError as exc:
            self._channel.send(make_error("auth_failed", str(exc)))
            return False
        database_name = str(connect.get("database", ""))
        database = self._engine.database(database_name)
        if database is None:
            self._channel.send(make_error("unknown_database", f"database {database_name!r} does not exist"))
            return False
        self.user = connect.get("user")
        self.database = database_name
        self.sql_session = self._engine.open_session(database_name, user=self.user)
        self._channel.send(
            make_connect_ok(self._server_name, self._max_version, self.session_id)
        )
        return True

    # -- statement loop --------------------------------------------------------

    def _serve_statements(self) -> None:
        assert self.sql_session is not None
        while True:
            try:
                message = self._channel.recv(timeout=None)
            except TransportError:
                return
            message_type = message.get("type")
            if message_type == MessageType.CLOSE:
                return
            if message_type == MessageType.PING:
                self._channel.send({"type": MessageType.PONG})
                continue
            if message_type != MessageType.EXECUTE:
                self._channel.send(make_error("bad_message", f"unexpected message {message_type!r}"))
                continue
            sql = str(message.get("sql", ""))
            params = message.get("params") or {}
            positional = message.get("positional") or []
            try:
                result = self.sql_session.execute(sql, params=params, positional=positional)
            except SqlEngineError as exc:
                self._channel.send(make_error("sql_error", str(exc)))
                continue
            except ReproError as exc:  # pragma: no cover - defensive
                self._channel.send(make_error("internal_error", str(exc)))
                continue
            try:
                self._channel.send(make_result(result.columns, result.rows, result.rowcount))
            except TransportError:
                return
