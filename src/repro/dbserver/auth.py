"""Authentication methods for the database server.

The paper's step 6 ("Authenticate") notes that a driver which does not
support the authentication method required by the database fails at this
point. We model two methods:

- ``password`` — classic user/password lookup against the engine's user
  catalog,
- ``token`` — a Kerberos-like method where the client must present a token
  derived from a realm secret (drivers without the "kerberos extension"
  package simply cannot produce one).
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from typing import Any, Dict, Optional

from repro.errors import DriverError
from repro.sqlengine.engine import Engine


class AuthenticationError(DriverError):
    """Authentication failed or the method is not supported."""


class Authenticator(ABC):
    """One server-side authentication method."""

    name: str = "abstract"

    @abstractmethod
    def authenticate(self, engine: Engine, connect_message: Dict[str, Any]) -> None:
        """Raise :class:`AuthenticationError` if the credentials are bad."""


class PasswordAuthenticator(Authenticator):
    """User/password authentication against the engine's user catalog."""

    name = "password"

    def authenticate(self, engine: Engine, connect_message: Dict[str, Any]) -> None:
        user = connect_message.get("user")
        password = connect_message.get("password")
        if not engine.authenticate(user, password):
            raise AuthenticationError(f"invalid credentials for user {user!r}")


class TokenAuthenticator(Authenticator):
    """Kerberos-like token authentication.

    The expected token for user ``u`` is ``sha256(realm_secret + u)``.
    Only drivers shipped with the security extension know how to compute
    it (see :func:`repro.dbapi.driver_factory.kerberos_token`).
    """

    name = "token"

    def __init__(self, realm_secret: str) -> None:
        self._realm_secret = realm_secret

    def expected_token(self, user: Optional[str]) -> str:
        return hashlib.sha256(f"{self._realm_secret}:{user}".encode("utf-8")).hexdigest()

    def authenticate(self, engine: Engine, connect_message: Dict[str, Any]) -> None:
        user = connect_message.get("user")
        token = connect_message.get("auth_token")
        if token is None:
            raise AuthenticationError(
                "token authentication required but no token presented "
                "(driver lacks the security extension)"
            )
        if token != self.expected_token(user):
            raise AuthenticationError(f"invalid authentication token for user {user!r}")


def compute_token(realm_secret: str, user: Optional[str]) -> str:
    """Client-side helper mirroring :class:`TokenAuthenticator`."""
    return hashlib.sha256(f"{realm_secret}:{user}".encode("utf-8")).hexdigest()
