"""Database server: a versioned wire protocol in front of the SQL engine.

This is the analogue of a production DBMS's client/server protocol. The
points that matter for reproducing the paper are:

- the protocol is **versioned** and the server only accepts a range of
  protocol versions, so a driver built for the wrong version fails at
  connection time (the incompatibility the legacy lifecycle suffers from),
- the server supports multiple **authentication methods** (password and a
  Kerberos-like token method), so a driver lacking the method required by
  the database fails at authentication time (step 6 of the paper's
  lifecycle),
- the server can host **extensions** on its listener — this is how the
  in-database Drivolution server answers bootloader requests on the same
  or a separate port (paper Section 4.1.2).
"""

from repro.dbserver.wire import (
    PROTOCOL_VERSION,
    MessageType,
    WireError,
    make_error,
)
from repro.dbserver.auth import AuthenticationError, Authenticator, PasswordAuthenticator, TokenAuthenticator
from repro.dbserver.server import DatabaseServer, ServerConfig

__all__ = [
    "PROTOCOL_VERSION",
    "MessageType",
    "WireError",
    "make_error",
    "AuthenticationError",
    "Authenticator",
    "PasswordAuthenticator",
    "TokenAuthenticator",
    "DatabaseServer",
    "ServerConfig",
]
