"""Named checkpoints over the recovery log.

The original implementation recorded a backend's checkpoint as a bare
integer on the backend object. That breaks down as soon as anything else
needs to pin a log position: a disabled backend, a database dump a new
backend will cold-start from, an operator snapshot. A
:class:`CheckpointRegistry` names each pinned position; the oldest live
checkpoint is the compaction floor — entries at or below every live
checkpoint can never be needed for a replay and may be truncated.

With a ``path`` the registry persists itself as JSON next to a
:class:`~repro.cluster.recovery.logstore.FileLogStore`'s segments, so a
restarted controller still knows which positions are pinned.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.cluster.recovery.logstore import atomic_write_json
from repro.errors import DriverError


class CheckpointError(DriverError):
    """Invalid checkpoint operation (duplicate name, unknown name...)."""


@dataclass(frozen=True)
class Checkpoint:
    """One named, pinned log position."""

    name: str
    index: int

    def to_wire(self) -> Dict[str, Any]:
        return {"name": self.name, "index": self.index}


class CheckpointRegistry:
    """Named log positions; live ones pin entries against compaction."""

    def __init__(self, path: Optional[str] = None) -> None:
        self._path = path
        self._checkpoints: Dict[str, Checkpoint] = {}
        self._lock = threading.Lock()
        if path is not None and os.path.exists(path):
            self._load()

    # -- persistence -------------------------------------------------------------

    def _load(self) -> None:
        assert self._path is not None
        try:
            with open(self._path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (ValueError, OSError) as exc:
            raise CheckpointError(f"corrupt checkpoint registry {self._path!r}: {exc}") from exc
        for item in payload.get("checkpoints", []):
            checkpoint = Checkpoint(name=str(item["name"]), index=int(item["index"]))
            self._checkpoints[checkpoint.name] = checkpoint

    def _save_locked(self) -> None:
        if self._path is None:
            return
        atomic_write_json(
            self._path,
            {"checkpoints": [cp.to_wire() for cp in self._checkpoints.values()]},
        )

    # -- checkpoint lifecycle -----------------------------------------------------

    def create(self, name: str, index: int, overwrite: bool = False) -> Checkpoint:
        if index < 0:
            raise CheckpointError(f"checkpoint index must be >= 0, got {index}")
        with self._lock:
            if not overwrite and name in self._checkpoints:
                raise CheckpointError(f"checkpoint {name!r} already exists")
            checkpoint = Checkpoint(name=name, index=index)
            self._checkpoints[name] = checkpoint
            self._save_locked()
            return checkpoint

    def release(self, name: str) -> bool:
        """Drop a checkpoint; returns whether it existed."""
        with self._lock:
            existed = self._checkpoints.pop(name, None) is not None
            if existed:
                self._save_locked()
            return existed

    def get(self, name: str) -> Checkpoint:
        with self._lock:
            checkpoint = self._checkpoints.get(name)
        if checkpoint is None:
            raise CheckpointError(f"unknown checkpoint {name!r}")
        return checkpoint

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._checkpoints)

    # -- HA replication -----------------------------------------------------------

    def snapshot(self) -> List[Dict[str, Any]]:
        """Wire form of every live checkpoint — shipped whole in each
        REPLICATE frame (one row per named checkpoint, so a full snapshot
        is cheaper than a delta protocol and self-healing)."""
        with self._lock:
            return [cp.to_wire() for cp in self._checkpoints.values()]

    def restore_snapshot(self, items: List[Dict[str, Any]]) -> bool:
        """Replace the registry's contents with a replicated primary's
        snapshot; returns whether anything changed. A follower's registry
        is a pure function of the latest frame, so releases propagate as
        naturally as creates."""
        incoming = {
            str(item["name"]): Checkpoint(name=str(item["name"]), index=int(item["index"]))
            for item in items
        }
        with self._lock:
            if incoming == self._checkpoints:
                return False
            self._checkpoints = incoming
            self._save_locked()
            return True

    def live(self) -> List[Checkpoint]:
        with self._lock:
            return sorted(self._checkpoints.values(), key=lambda cp: (cp.index, cp.name))

    def oldest_live_index(self) -> Optional[int]:
        """The compaction floor, or None when nothing is pinned."""
        with self._lock:
            if not self._checkpoints:
                return None
            return min(cp.index for cp in self._checkpoints.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._checkpoints)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._checkpoints

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "count": len(self._checkpoints),
                "oldest_live_index": (
                    min(cp.index for cp in self._checkpoints.values())
                    if self._checkpoints
                    else None
                ),
                "names": sorted(self._checkpoints),
                "persisted": self._path is not None,
            }
