"""Pluggable persistence for the recovery log.

A :class:`LogStore` holds the ordered history of committed write
statements. The :class:`RecoveryLog` facade assigns indexes and enforces
compaction policy; stores only persist and retrieve entries.

Two implementations:

- :class:`MemoryLogStore` — a list, the behaviour of the original
  58-line ``RecoveryLog`` (nothing survives a restart),
- :class:`FileLogStore` — segmented JSONL files. Appends go to the
  current segment, which rolls over after ``segment_max_entries``
  entries; compaction deletes whole segments from disk and memory, so
  both the directory and the in-memory mirror stay bounded. Opening a
  directory recovers from a crash mid-append by truncating a partial
  trailing line, and resumes ``last_index`` where the previous process
  stopped.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, IO, List, Optional, Tuple

from repro.errors import DriverError


@dataclass(frozen=True)
class LogEntry:
    """One logged write statement.

    ``write_tables``/``table_seqs`` carry the per-table ordering model:
    under conflict-aware locking the cluster-wide index order is only
    meaningful *per table* (disjoint-table writes append in whatever
    order they finish), so each entry records the tables it writes and a
    per-table sequence number assigned by the :class:`RecoveryLog`.
    Replay verifies these sequences stay monotone per table, and a
    backend that already applied an entry's every table effect (tracked
    by :class:`repro.cluster.backend.Backend`) can skip it instead of
    double-applying. Entries with an empty ``write_tables`` have an
    unknown table set and are always appended — and replayed — under the
    exclusive global lock, so they keep total order.
    """

    index: int
    sql: str
    params: Dict[str, Any] = field(default_factory=dict)
    transaction_id: Optional[str] = None
    write_tables: Tuple[str, ...] = ()
    table_seqs: Dict[str, int] = field(default_factory=dict)

    def to_wire(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "sql": self.sql,
            "params": _encode_params(self.params),
            "transaction_id": self.transaction_id,
            "write_tables": list(self.write_tables),
            "table_seqs": dict(self.table_seqs),
        }

    @staticmethod
    def from_wire(payload: Dict[str, Any]) -> "LogEntry":
        return LogEntry(
            index=int(payload["index"]),
            sql=str(payload["sql"]),
            params=_decode_params(dict(payload.get("params") or {})),
            transaction_id=payload.get("transaction_id"),
            write_tables=tuple(
                str(table) for table in (payload.get("write_tables") or ())
            ),
            table_seqs={
                str(table): int(seq)
                for table, seq in (payload.get("table_seqs") or {}).items()
            },
        )


def _encode_params(params: Dict[str, Any]) -> Dict[str, Any]:
    """Make statement parameters JSON-safe (BLOB values become hex)."""
    encoded: Dict[str, Any] = {}
    for name, value in params.items():
        if isinstance(value, bytes):
            encoded[name] = {"__blob__": value.hex()}
        else:
            encoded[name] = value
    return encoded


def _decode_params(params: Dict[str, Any]) -> Dict[str, Any]:
    decoded: Dict[str, Any] = {}
    for name, value in params.items():
        if isinstance(value, dict) and "__blob__" in value:
            decoded[name] = bytes.fromhex(value["__blob__"])
        else:
            decoded[name] = value
    return decoded


def atomic_write_json(path: str, payload: Dict[str, Any]) -> None:
    """Durably replace ``path`` with ``payload`` as JSON: tmp-file write,
    fsync, then atomic rename — a crash leaves either the old file or the
    new one, never a torn mix. Shared by the log store's metadata and the
    checkpoint registry."""
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


class LogStoreError(DriverError):
    """A log store could not persist or retrieve entries."""


class LogStore:
    """Interface every log store implements.

    Entries arrive in strictly increasing index order (the
    :class:`RecoveryLog` facade serialises appends). ``truncated_through``
    is the highest index dropped by compaction (0 when nothing was ever
    dropped): entries with index > ``truncated_through`` are retrievable.
    """

    def append(self, entry: LogEntry) -> None:
        raise NotImplementedError

    def append_many(self, entries: List[LogEntry]) -> None:
        """Append a batch of consecutive entries. Durable stores override
        this to pay one flush+fsync for the whole batch (group commit);
        the default just loops."""
        for entry in entries:
            self.append(entry)

    def entries_after(self, index: int) -> List[LogEntry]:
        """Entries with index strictly greater than ``index``.

        Callers must not ask below ``truncated_through`` (the facade
        raises ``LogCompactedError`` first)."""
        raise NotImplementedError

    @property
    def last_index(self) -> int:
        raise NotImplementedError

    @property
    def truncated_through(self) -> int:
        raise NotImplementedError

    @property
    def entry_count(self) -> int:
        """Entries currently retained (bounded by compaction)."""
        raise NotImplementedError

    def truncate_through(self, index: int) -> int:
        """Drop entries with index <= ``index`` where cheap to do so;
        returns how many were dropped. Stores may retain more than asked
        (e.g. only whole segments are dropped) but never less than the
        caller allows."""
        raise NotImplementedError

    def reset_to_floor(self, index: int) -> None:
        """Discard every retained entry and restart the store at
        compaction floor ``index`` — as if entries ``1..index`` existed
        and were all compacted away. The follower half of an HA snapshot
        install: its whole retained log sits below the primary's
        compaction floor and is superseded by the shipped checkpoint
        snapshot, so it adopts the floor and takes the post-floor suffix
        fresh. ``index`` must be at or above ``last_index``."""
        raise NotImplementedError

    def flush(self) -> None:
        """Make appended entries durable (no-op for volatile stores)."""

    def close(self) -> None:
        """Release file handles; the store may be reopened by a new
        instance on the same directory."""

    def stats(self) -> Dict[str, Any]:
        return {
            "kind": type(self).__name__,
            "last_index": self.last_index,
            "truncated_through": self.truncated_through,
            "entry_count": self.entry_count,
        }


class MemoryLogStore(LogStore):
    """Volatile store: the original in-memory list, plus compaction."""

    def __init__(self) -> None:
        self._entries: List[LogEntry] = []
        self._truncated_through = 0

    def append(self, entry: LogEntry) -> None:
        self._entries.append(entry)

    def entries_after(self, index: int) -> List[LogEntry]:
        offset = max(index, self._truncated_through) - self._truncated_through
        return list(self._entries[offset:])

    @property
    def last_index(self) -> int:
        if self._entries:
            return self._entries[-1].index
        return self._truncated_through

    @property
    def truncated_through(self) -> int:
        return self._truncated_through

    @property
    def entry_count(self) -> int:
        return len(self._entries)

    def truncate_through(self, index: int) -> int:
        if index <= self._truncated_through:
            return 0
        drop = min(index - self._truncated_through, len(self._entries))
        self._entries = self._entries[drop:]
        self._truncated_through += drop
        return drop

    def reset_to_floor(self, index: int) -> None:
        if index < self.last_index:
            raise LogStoreError(
                f"cannot reset to floor {index} below log head {self.last_index}"
            )
        self._entries = []
        self._truncated_through = index


class FileLogStore(LogStore):
    """Segmented JSONL store surviving process restarts.

    Layout of ``directory``::

        segment-00000001.jsonl   entries 1..N, one JSON object per line
        segment-00000N.jsonl     current segment, appended to
        logmeta.json             {"truncated_through": n}

    Segment files are named after the index of their first entry. A crash
    mid-append leaves a partial trailing line in the *last* segment only;
    :meth:`_recover` truncates it so the next append continues cleanly.
    Compaction removes whole segments (disk and memory), so retained
    entries round up to the segment boundary above the requested floor.
    """

    _SEGMENT_PREFIX = "segment-"
    _SEGMENT_SUFFIX = ".jsonl"
    _META_FILE = "logmeta.json"

    def __init__(
        self,
        directory: str,
        segment_max_entries: int = 256,
        fsync_on_append: bool = False,
    ) -> None:
        if segment_max_entries <= 0:
            raise ValueError("segment_max_entries must be positive")
        self.directory = directory
        self.segment_max_entries = segment_max_entries
        self.fsync_on_append = fsync_on_append
        os.makedirs(directory, exist_ok=True)
        #: Retained entries, grouped per segment in index order.
        self._segments: List[List[LogEntry]] = []
        self._segment_paths: List[str] = []
        self._truncated_through = 0
        self._last_index = 0
        self._handle: Optional[IO[str]] = None
        #: Guards fsync/close of the segment handle. flush() is called by
        #: the group-commit leader *without* the RecoveryLog's append lock
        #: (holding it across a multi-millisecond fsync would serialise
        #: appends behind the flush and no commit group could ever form),
        #: so the fsync must be atomic against a segment roll closing the
        #: handle under its feet. Plain writes never take this lock —
        #: fsyncing a file another thread is appending to is safe, the
        #: fsync simply covers whatever reached the OS first.
        self._handle_lock = threading.Lock()
        self.recovered_partial_lines = 0
        #: fsync() calls issued (appends, batch tails, rolls, flushes) —
        #: the observable the group-commit bench asserts on.
        self.fsyncs = 0
        self._load()

    # -- opening / crash recovery ------------------------------------------------

    def _segment_path(self, first_index: int) -> str:
        return os.path.join(
            self.directory, f"{self._SEGMENT_PREFIX}{first_index:08d}{self._SEGMENT_SUFFIX}"
        )

    def _meta_path(self) -> str:
        return os.path.join(self.directory, self._META_FILE)

    def _load(self) -> None:
        meta_path = self._meta_path()
        if os.path.exists(meta_path):
            try:
                with open(meta_path, "r", encoding="utf-8") as handle:
                    self._truncated_through = int(json.load(handle).get("truncated_through", 0))
            except (ValueError, OSError) as exc:
                raise LogStoreError(f"corrupt log metadata {meta_path!r}: {exc}") from exc
        names = sorted(
            name
            for name in os.listdir(self.directory)
            if name.startswith(self._SEGMENT_PREFIX) and name.endswith(self._SEGMENT_SUFFIX)
        )
        expected_next = self._truncated_through + 1
        for position, name in enumerate(names):
            path = os.path.join(self.directory, name)
            entries = self._read_segment(path, is_last=(position == len(names) - 1))
            if not entries:
                # A segment created right before a crash, no entry made it
                # to disk; reuse its slot.
                os.remove(path)
                continue
            if entries[-1].index <= self._truncated_through:
                # Compaction persisted the floor but crashed before
                # removing this segment's file; finish the job now.
                os.remove(path)
                continue
            if entries[0].index != expected_next:
                raise LogStoreError(
                    f"log segment {path!r} starts at index {entries[0].index}, "
                    f"expected {expected_next}"
                )
            self._segments.append(entries)
            self._segment_paths.append(path)
            expected_next = entries[-1].index + 1
        self._last_index = expected_next - 1

    def _read_segment(self, path: str, is_last: bool) -> List[LogEntry]:
        entries: List[LogEntry] = []
        with open(path, "rb") as handle:
            data = handle.read()
        good_offset = 0
        previous = None
        for raw_line in data.splitlines(keepends=True):
            line = raw_line.decode("utf-8", errors="replace")
            stripped = line.strip()
            complete = raw_line.endswith(b"\n")
            if not stripped:
                good_offset += len(raw_line)
                continue
            try:
                if not complete:
                    # No trailing newline: the append was cut mid-line.
                    raise ValueError("partial trailing line")
                entry = LogEntry.from_wire(json.loads(stripped))
            except (ValueError, KeyError) as exc:
                if is_last:
                    # Crash mid-append: truncate the partial/corrupt tail
                    # so the next append continues from the last good line.
                    self.recovered_partial_lines += 1
                    with open(path, "r+b") as handle:
                        handle.seek(good_offset)
                        handle.truncate()
                    break
                raise LogStoreError(f"corrupt log segment {path!r}: {exc}") from exc
            if previous is not None and entry.index != previous + 1:
                raise LogStoreError(
                    f"log segment {path!r} skips from index {previous} to {entry.index}"
                )
            previous = entry.index
            entries.append(entry)
            good_offset += len(raw_line)
        return entries

    # -- appends -------------------------------------------------------------------

    def append(self, entry: LogEntry) -> None:
        self._write_entry(entry)
        if self.fsync_on_append:
            self._fsync_handle()

    def append_many(self, entries: List[LogEntry]) -> None:
        """Write the whole batch, then flush+fsync once at its tail —
        the group-commit fast path: N durable appends cost one fsync."""
        for entry in entries:
            self._write_entry(entry)
        if entries and self.fsync_on_append:
            self._fsync_handle()

    def _write_entry(self, entry: LogEntry) -> None:
        if not self._segments or len(self._segments[-1]) >= self.segment_max_entries:
            self._roll_segment(entry.index)
        handle = self._ensure_handle()
        handle.write(json.dumps(entry.to_wire(), separators=(",", ":")) + "\n")
        handle.flush()
        self._segments[-1].append(entry)
        self._last_index = entry.index

    def _fsync_handle(self) -> None:
        with self._handle_lock:
            if self._handle is not None and not self._handle.closed:
                os.fsync(self._handle.fileno())
                self.fsyncs += 1

    def _roll_segment(self, first_index: int) -> None:
        # Seal the outgoing segment durably before the handle closes:
        # under group commit entries are written with fsync deferred to a
        # later flush(), and flush() can only reach the *current* handle
        # — an un-fsynced closed segment would be a durability hole.
        self._fsync_handle()
        self._close_handle()
        path = self._segment_path(first_index)
        self._segments.append([])
        self._segment_paths.append(path)

    def _ensure_handle(self) -> IO[str]:
        if self._handle is None or self._handle.closed:
            self._handle = open(self._segment_paths[-1], "a", encoding="utf-8")
        return self._handle

    def _close_handle(self) -> None:
        with self._handle_lock:
            if self._handle is not None and not self._handle.closed:
                self._handle.close()
            self._handle = None

    # -- reads ---------------------------------------------------------------------

    def entries_after(self, index: int) -> List[LogEntry]:
        result: List[LogEntry] = []
        for segment in self._segments:
            if not segment or segment[-1].index <= index:
                continue
            for entry in segment:
                if entry.index > index:
                    result.append(entry)
        return result

    @property
    def last_index(self) -> int:
        return self._last_index

    @property
    def truncated_through(self) -> int:
        return self._truncated_through

    @property
    def entry_count(self) -> int:
        return sum(len(segment) for segment in self._segments)

    # -- compaction ------------------------------------------------------------------

    def truncate_through(self, index: int) -> int:
        """Delete whole segments whose newest entry is <= ``index``.

        The current (last) segment is never deleted, so appends continue
        in place. The new floor is persisted *before* any file is
        removed: a crash between the two leaves stale segments below the
        floor, which :meth:`_load` recognises and deletes — never a store
        that cannot be reopened."""
        droppable = 0
        while (
            len(self._segments) - droppable > 1
            and self._segments[droppable]
            and self._segments[droppable][-1].index <= index
        ):
            droppable += 1
        if not droppable:
            return 0
        dropped = sum(len(segment) for segment in self._segments[:droppable])
        doomed_paths = self._segment_paths[:droppable]
        self._truncated_through = self._segments[droppable - 1][-1].index
        self._segments = self._segments[droppable:]
        self._segment_paths = self._segment_paths[droppable:]
        self._write_meta()
        for path in doomed_paths:
            try:
                os.remove(path)
            except OSError:
                pass
        return dropped

    def reset_to_floor(self, index: int) -> None:
        if index < self._last_index:
            raise LogStoreError(
                f"cannot reset to floor {index} below log head {self._last_index}"
            )
        self._close_handle()
        doomed_paths = list(self._segment_paths)
        self._segments = []
        self._segment_paths = []
        self._truncated_through = index
        self._last_index = index
        # Same crash rule as truncate_through: persist the floor before
        # removing any file — a crash in between leaves segments wholly
        # below the floor, which _load recognises and deletes.
        self._write_meta()
        for path in doomed_paths:
            try:
                os.remove(path)
            except OSError:
                pass

    def _write_meta(self) -> None:
        atomic_write_json(self._meta_path(), {"truncated_through": self._truncated_through})

    # -- lifecycle --------------------------------------------------------------------

    def flush(self) -> None:
        handle = self._handle
        if handle is not None and not handle.closed:
            try:
                handle.flush()
            except ValueError:
                # A segment roll closed the handle mid-call; the roll
                # itself fsynced everything the old segment held.
                return
            self._fsync_handle()

    def close(self) -> None:
        self._close_handle()

    def stats(self) -> Dict[str, Any]:
        base = super().stats()
        base.update(
            {
                "directory": self.directory,
                "segments": len(self._segments),
                "segment_max_entries": self.segment_max_entries,
                "fsync_on_append": self.fsync_on_append,
                "fsyncs": self.fsyncs,
            }
        )
        return base
