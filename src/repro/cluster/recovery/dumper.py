"""Dump-based cold start for brand-new (or hopelessly stale) backends.

Replaying the full write history from index 0 to bring a backend online
stops being an option the moment the log is compacted — and was never a
good one for a cluster with millions of historical writes. The
:class:`DatabaseDumper` instead snapshots a *healthy* backend through
plain SQL: it reads ``information_schema.columns`` (exposed by the
sqlengine for exactly this purpose) to reconstruct each table's DDL, and
``SELECT * FROM ...`` to capture the rows. The resulting
:class:`DatabaseDump` carries the log index it is consistent with, so a
new backend applies ``dump + tail replay``: restore the snapshot, then
replay only the entries after ``checkpoint_index``.

Everything goes through the DB-API ``execute`` callable the backend
already has — no private engine access, so a dump works across the wire
against any replica the controller can reach.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import DriverError

#: Identifier part that can be re-emitted bare. Anything else (spaces,
#: punctuation — creatable via double-quoted identifiers) must be quoted
#: when the dumper spells it back into SQL, or every wipe/dump/restore
#: would fail to parse.
_BARE_IDENT = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def quote_identifier(name: str) -> str:
    """Spell a (possibly dotted) identifier so the tokenizer re-reads it:
    bare when possible, double-quoted (with ``""`` escaping) otherwise."""
    parts = str(name).split(".")
    spelled = [
        part if _BARE_IDENT.match(part) else '"' + part.replace('"', '""') + '"'
        for part in parts
    ]
    return ".".join(spelled)

#: ``execute(sql, params) -> (columns, rows, rowcount)`` — the shape of
#: :meth:`repro.cluster.backend.Backend.execute`.
ExecuteFn = Callable[[str, Optional[Dict[str, Any]]], Tuple[List[str], List[Any], int]]


class DumpError(DriverError):
    """A dump could not be taken or restored."""


@dataclass(frozen=True)
class ColumnDump:
    """One column definition, enough to regenerate its DDL clause."""

    name: str
    data_type: str
    not_null: bool = False
    primary_key: bool = False
    references_table: Optional[str] = None
    references_column: Optional[str] = None

    def ddl(self) -> str:
        clause = f"{quote_identifier(self.name)} {self.data_type}"
        if self.not_null and not self.primary_key:
            clause += " NOT NULL"
        if self.primary_key:
            clause += " PRIMARY KEY"
        if self.references_table and self.references_column:
            clause += (
                f" REFERENCES {quote_identifier(self.references_table)}"
                f"({quote_identifier(self.references_column)})"
            )
        return clause


@dataclass
class TableDump:
    """One table: schema + rows (row values ordered like ``columns``)."""

    name: str
    columns: List[ColumnDump] = field(default_factory=list)
    rows: List[List[Any]] = field(default_factory=list)

    @property
    def row_count(self) -> int:
        return len(self.rows)


@dataclass
class DatabaseDump:
    """A consistent snapshot of one backend at ``checkpoint_index``."""

    tables: List[TableDump] = field(default_factory=list)
    #: Recovery-log index this snapshot is consistent with: a restored
    #: backend replays only entries strictly after this index.
    checkpoint_index: int = 0
    #: Named checkpoint pinning ``checkpoint_index`` against compaction
    #: (released once every consumer has cold-started).
    checkpoint_name: Optional[str] = None
    #: Which backend the snapshot was taken from (observability).
    source: Optional[str] = None

    @property
    def table_count(self) -> int:
        return len(self.tables)

    @property
    def row_count(self) -> int:
        return sum(table.row_count for table in self.tables)


class DatabaseDumper:
    """Takes and restores :class:`DatabaseDump` snapshots over DB-API."""

    #: Schemas that belong to the engine, never to the application.
    _SYSTEM_SCHEMAS = ("information_schema",)

    @staticmethod
    def _qualified(table_name: Any, table_schema: Any) -> str:
        """Schema-qualified name as the engine (and its DDL) spells it:
        two same-named tables in different schemas stay distinct."""
        if table_schema:
            return f"{table_schema}.{table_name}"
        return str(table_name)

    # -- catalog ------------------------------------------------------------------

    def list_tables(self, execute: ExecuteFn) -> List[str]:
        """Qualified user-table names in the catalog behind ``execute``
        (system schemas excluded), as :meth:`dump`'s ``table_filter``
        will see them."""
        _, rows, _ = execute(
            "SELECT table_name, table_schema FROM information_schema.tables", None
        )
        return [
            self._qualified(table_name, table_schema)
            for table_name, table_schema in rows
            if table_schema not in self._SYSTEM_SCHEMAS
        ]

    # -- taking a dump ------------------------------------------------------------

    def dump(
        self,
        execute: ExecuteFn,
        checkpoint_index: int = 0,
        checkpoint_name: Optional[str] = None,
        source: Optional[str] = None,
        table_filter: Optional[Callable[[str], bool]] = None,
    ) -> DatabaseDump:
        """Snapshot every user table reachable through ``execute``.

        ``table_filter`` restricts the snapshot to a table subset (called
        with each table's qualified name as the catalog spells it) — how
        a *partial* replica under RAIDb-0/2 placement is cold-started
        from just the tables it hosts instead of the whole database.

        The caller is responsible for consistency: take the dump while no
        write can land (the scheduler holds its write lock), and pass the
        recovery-log index the snapshot corresponds to."""
        _, column_rows, _ = execute(
            "SELECT table_name, table_schema, column_name, ordinal_position, data_type, "
            "is_nullable, is_primary_key, references_table, references_column "
            "FROM information_schema.columns",
            None,
        )
        tables: Dict[str, TableDump] = {}
        ordered: List[Tuple[str, int, ColumnDump]] = []
        for row in column_rows:
            (table_name, table_schema, column_name, ordinal, data_type,
             is_nullable, is_primary_key, ref_table, ref_column) = row
            if table_schema in self._SYSTEM_SCHEMAS:
                continue
            qualified = self._qualified(table_name, table_schema)
            if table_filter is not None and not table_filter(qualified):
                continue
            ordered.append(
                (
                    qualified,
                    int(ordinal),
                    ColumnDump(
                        name=str(column_name),
                        data_type=str(data_type),
                        not_null=not bool(is_nullable),
                        primary_key=bool(is_primary_key),
                        references_table=ref_table,
                        references_column=ref_column,
                    ),
                )
            )
        ordered.sort(key=lambda item: (item[0], item[1]))
        for table_name, _, column in ordered:
            tables.setdefault(table_name, TableDump(name=table_name)).columns.append(column)
        for table in tables.values():
            columns, rows, _ = execute(f"SELECT * FROM {quote_identifier(table.name)}", None)
            # Reorder result columns into schema order so restores are
            # deterministic regardless of the SELECT * projection order.
            schema_order = [column.name for column in table.columns]
            positions = {name.lower(): i for i, name in enumerate(columns)}
            try:
                mapping = [positions[name.lower()] for name in schema_order]
            except KeyError as exc:
                raise DumpError(
                    f"table {table.name!r} is missing column {exc} in its SELECT * result"
                ) from exc
            table.rows = [[row[i] for i in mapping] for row in rows]
        return DatabaseDump(
            tables=self._topological(tables),
            checkpoint_index=checkpoint_index,
            checkpoint_name=checkpoint_name,
            source=source,
        )

    def merge(
        self,
        pieces: List[DatabaseDump],
        checkpoint_index: int = 0,
        source: Optional[str] = None,
    ) -> DatabaseDump:
        """Combine several (disjoint) dumps into one, re-running the
        dependency ordering across the union — a table and its REFERENCES
        target may have come from different sources. This is how a
        partial replica's cold-start dump is assembled table by table
        from the backends hosting each of its tables."""
        tables = {table.name.lower(): table for piece in pieces for table in piece.tables}
        return DatabaseDump(
            tables=self._topological(tables),
            checkpoint_index=checkpoint_index,
            source=source
            or "+".join(sorted({piece.source for piece in pieces if piece.source}))
            or None,
        )

    def _topological(self, tables: Dict[str, TableDump]) -> List[TableDump]:
        """Order tables so REFERENCES targets restore before referrers."""
        remaining = dict(tables)
        ordered: List[TableDump] = []
        placed: set = set()
        while remaining:
            progressed = False
            for name in sorted(remaining):
                table = remaining[name]
                deps = {
                    column.references_table.lower()
                    for column in table.columns
                    if column.references_table
                    and column.references_table.lower() != name.lower()
                    and column.references_table.lower() in {k.lower() for k in tables}
                }
                if deps <= placed:
                    ordered.append(table)
                    placed.add(name.lower())
                    del remaining[name]
                    progressed = True
            if not progressed:
                # Reference cycle: fall back to name order for the rest.
                for name in sorted(remaining):
                    ordered.append(remaining[name])
                break
        return ordered

    # -- restoring a dump ----------------------------------------------------------

    def statements(self, dump: DatabaseDump) -> Iterator[Tuple[str, Optional[Dict[str, Any]]]]:
        """The (sql, params) sequence that recreates the dump's state."""
        for table in dump.tables:
            spelled = quote_identifier(table.name)
            ddl = ", ".join(column.ddl() for column in table.columns)
            yield (f"CREATE TABLE {spelled} ({ddl})", None)
            if not table.columns:
                continue
            column_list = ", ".join(quote_identifier(column.name) for column in table.columns)
            placeholders = ", ".join(f"$c{i}" for i in range(len(table.columns)))
            insert = f"INSERT INTO {spelled} ({column_list}) VALUES ({placeholders})"
            for row in table.rows:
                yield (insert, {f"c{i}": value for i, value in enumerate(row)})

    def restore(
        self,
        dump: DatabaseDump,
        execute: ExecuteFn,
        wipe: bool = True,
        wipe_filter: Optional[Callable[[str], bool]] = None,
    ) -> int:
        """Replay the dump through ``execute``; returns statements run.

        ``wipe`` first drops every user table the target currently has, so
        a stale backend converges to exactly the dump's state instead of
        failing on ``CREATE TABLE`` collisions. ``wipe_filter`` limits
        the wipe to the tables it returns True for — a partial replica
        keeps its local copy of tables no sibling can re-supply."""
        statements = 0
        if wipe:
            statements += self._wipe(execute, wipe_filter)
        for sql, params in self.statements(dump):
            execute(sql, params)
            statements += 1
        return statements

    def _wipe(self, execute: ExecuteFn, wipe_filter: Optional[Callable[[str], bool]] = None) -> int:
        dropped = 0
        for qualified in self.list_tables(execute):
            if wipe_filter is not None and not wipe_filter(qualified):
                continue
            execute(f"DROP TABLE {quote_identifier(qualified)}", None)
            dropped += 1
        return dropped
