"""The recovery log facade: ordered history + named checkpoints + compaction.

The controller appends every committed write it broadcasts. A backend
that was disabled records the log index of its last applied write — its
*checkpoint* — and is resynchronised on re-enable by replaying everything
after that index. Unlike the original in-memory list, this log:

- delegates persistence to a pluggable :class:`LogStore` (a restarted
  controller on a :class:`FileLogStore` resumes with its pre-crash
  ``last_index``),
- names checkpoints through a :class:`CheckpointRegistry` instead of a
  bare integer, so several consumers (disabled backends, dumps,
  operator snapshots) can pin positions independently,
- compacts: entries at or below the oldest live checkpoint are
  truncated from the store, bounding memory and disk under heavy write
  traffic. Asking for entries older than the compaction floor raises
  :class:`LogCompactedError` — the caller must cold-start from a dump
  instead of replaying history that no longer exists.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Optional

from repro.cluster.recovery.checkpoints import Checkpoint, CheckpointRegistry
from repro.cluster.recovery.logstore import LogEntry, LogStore, MemoryLogStore
from repro.errors import DriverError


class LogCompactedError(DriverError):
    """The requested replay range was truncated by compaction."""


class RecoveryLog:
    """Append-only log of write statements with monotonically growing indexes."""

    def __init__(
        self,
        store: Optional[LogStore] = None,
        checkpoints: Optional[CheckpointRegistry] = None,
        auto_compact_every: int = 0,
    ) -> None:
        self._store = store if store is not None else MemoryLogStore()
        # Explicit None check: an *empty* registry is falsy (len == 0) but
        # may still be the persisted one the caller wants used.
        self.checkpoints = checkpoints if checkpoints is not None else CheckpointRegistry()
        #: Compact automatically every N appends (0 disables).
        self.auto_compact_every = auto_compact_every
        self._appends_since_compact = 0
        self.compactions = 0
        self.entries_compacted = 0
        self._lock = threading.Lock()
        #: Per-table sequence counters (the per-table ordering model:
        #: conflict-aware locking makes cluster-wide index order
        #: meaningful only per table). Seeded from the store's retained
        #: entries, so a restarted durable log continues each table's
        #: sequence where it left off; a table whose every entry was
        #: compacted restarts at 1 — its replayable history is empty, so
        #: no replay can observe the reset.
        self._table_seqs: Dict[str, int] = {}
        for entry in self._store.entries_after(self._store.truncated_through):
            for table, seq in entry.table_seqs.items():
                if seq > self._table_seqs.get(table, 0):
                    self._table_seqs[table] = seq

    @property
    def store(self) -> LogStore:
        return self._store

    # -- appends -----------------------------------------------------------------

    def append(
        self,
        sql: str,
        params: Optional[Dict[str, Any]] = None,
        transaction_id: Optional[str] = None,
        write_tables: Optional[Iterable[str]] = None,
    ) -> LogEntry:
        """Append one write; returns the entry with its assigned index.

        ``write_tables`` (the classifier's canonicalised table set) gets
        each table its next per-table sequence number. The caller must
        hold the table locks (or the exclusive lock) covering these
        tables across execute+append, which is what makes index order
        equal execution order *per table*."""
        with self._lock:
            tables = tuple(sorted(write_tables or ()))
            seqs: Dict[str, int] = {}
            for table in tables:
                seqs[table] = self._table_seqs.get(table, 0) + 1
                self._table_seqs[table] = seqs[table]
            entry = LogEntry(
                index=self._store.last_index + 1,
                sql=sql,
                params=dict(params or {}),
                transaction_id=transaction_id,
                write_tables=tables,
                table_seqs=seqs,
            )
            self._store.append(entry)
            self._appends_since_compact += 1
            if self.auto_compact_every and self._appends_since_compact >= self.auto_compact_every:
                self._compact_locked()
            return entry

    # -- reads -------------------------------------------------------------------

    @property
    def last_index(self) -> int:
        with self._lock:
            return self._store.last_index

    @property
    def first_index(self) -> int:
        """Index of the oldest entry still replayable."""
        with self._lock:
            return self._store.truncated_through + 1

    def entries_after(self, index: int) -> List[LogEntry]:
        """Entries with index strictly greater than ``index`` (for resync).

        Raises :class:`LogCompactedError` when compaction already dropped
        part of the requested range — the caller needs a dump-based
        cold start, a replay would silently skip writes."""
        if index < 0:
            index = 0
        with self._lock:
            if index < self._store.truncated_through:
                raise LogCompactedError(
                    f"log entries after {index} were compacted away "
                    f"(oldest retained index is {self._store.truncated_through + 1}); "
                    "cold-start from a database dump instead"
                )
            return self._store.entries_after(index)

    def __len__(self) -> int:
        return self.last_index

    # -- checkpoints ----------------------------------------------------------------

    def checkpoint(
        self, name: str, index: Optional[int] = None, overwrite: bool = False
    ) -> Checkpoint:
        """Pin ``index`` (default: the current head) under ``name``."""
        if index is None:
            index = self.last_index
        return self.checkpoints.create(name, index, overwrite=overwrite)

    def release_checkpoint(self, name: str) -> bool:
        return self.checkpoints.release(name)

    # -- compaction -------------------------------------------------------------------

    def compact(self) -> int:
        """Truncate entries no live checkpoint (nor any future replay
        from one) can need: everything at or below the oldest live
        checkpoint, or the whole retained history when nothing is
        pinned. Returns how many entries the store dropped."""
        with self._lock:
            return self._compact_locked()

    def _compact_locked(self) -> int:
        floor = self.checkpoints.oldest_live_index()
        if floor is None:
            floor = self._store.last_index
        dropped = self._store.truncate_through(floor)
        self._appends_since_compact = 0
        if dropped:
            self.compactions += 1
            self.entries_compacted += dropped
        return dropped

    # -- lifecycle / observability ------------------------------------------------------

    def flush(self) -> None:
        with self._lock:
            self._store.flush()

    def close(self) -> None:
        with self._lock:
            self._store.close()

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            store_stats = self._store.stats()
        return {
            "last_index": store_stats["last_index"],
            "first_index": store_stats["truncated_through"] + 1,
            "retained_entries": store_stats["entry_count"],
            "tables_sequenced": len(self._table_seqs),
            "compactions": self.compactions,
            "entries_compacted": self.entries_compacted,
            "auto_compact_every": self.auto_compact_every,
            "store": store_stats,
            "checkpoints": self.checkpoints.stats(),
        }
